//! Umbrella crate for the HyperLoop reproduction workspace.
//!
//! Re-exports every subsystem so that root-level integration tests and
//! examples can reach the whole stack through one dependency. See the
//! individual crates for documentation:
//!
//! * [`hyperloop`] — the paper's contribution (group-based NIC offload
//!   primitives).
//! * [`baseline`] — the Naïve-RDMA comparator.
//! * [`testbed`] — multi-node cluster composition.
//! * [`rnicsim`], [`nvmsim`], [`netsim`], [`cpusched`], [`simcore`] —
//!   substrates.
//! * [`kvstore`], [`docstore`], [`walog`], [`ycsb`] — applications and
//!   workloads.

pub use baseline;
pub use cpusched;
pub use docstore;
pub use hyperloop;
pub use hyperloop_bench;
pub use kvstore;
pub use netsim;
pub use nvmsim;
pub use rnicsim;
pub use simcore;
pub use testbed;
pub use walog;
pub use ycsb;
