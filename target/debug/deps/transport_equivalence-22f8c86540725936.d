/root/repo/target/debug/deps/transport_equivalence-22f8c86540725936.d: tests/transport_equivalence.rs

/root/repo/target/debug/deps/transport_equivalence-22f8c86540725936: tests/transport_equivalence.rs

tests/transport_equivalence.rs:
