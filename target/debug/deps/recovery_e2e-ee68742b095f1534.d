/root/repo/target/debug/deps/recovery_e2e-ee68742b095f1534.d: tests/recovery_e2e.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_e2e-ee68742b095f1534.rmeta: tests/recovery_e2e.rs Cargo.toml

tests/recovery_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
