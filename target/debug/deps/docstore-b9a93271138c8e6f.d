/root/repo/target/debug/deps/docstore-b9a93271138c8e6f.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/debug/deps/libdocstore-b9a93271138c8e6f.rlib: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/debug/deps/libdocstore-b9a93271138c8e6f.rmeta: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
