/root/repo/target/debug/deps/kvstore-faea018601a1797f.d: crates/kvstore/src/lib.rs

/root/repo/target/debug/deps/libkvstore-faea018601a1797f.rlib: crates/kvstore/src/lib.rs

/root/repo/target/debug/deps/libkvstore-faea018601a1797f.rmeta: crates/kvstore/src/lib.rs

crates/kvstore/src/lib.rs:
