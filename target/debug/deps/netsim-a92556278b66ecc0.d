/root/repo/target/debug/deps/netsim-a92556278b66ecc0.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/netsim-a92556278b66ecc0: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
