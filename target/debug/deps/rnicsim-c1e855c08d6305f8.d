/root/repo/target/debug/deps/rnicsim-c1e855c08d6305f8.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/debug/deps/rnicsim-c1e855c08d6305f8: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
