/root/repo/target/debug/deps/figures-df7e57ad769f80f9.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-df7e57ad769f80f9.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
