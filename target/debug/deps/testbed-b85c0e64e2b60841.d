/root/repo/target/debug/deps/testbed-b85c0e64e2b60841.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/debug/deps/libtestbed-b85c0e64e2b60841.rlib: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/debug/deps/libtestbed-b85c0e64e2b60841.rmeta: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
