/root/repo/target/debug/deps/rnicsim-e145c91eb5c0044b.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs Cargo.toml

/root/repo/target/debug/deps/librnicsim-e145c91eb5c0044b.rmeta: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs Cargo.toml

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
