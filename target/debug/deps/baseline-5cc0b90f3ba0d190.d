/root/repo/target/debug/deps/baseline-5cc0b90f3ba0d190.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/debug/deps/baseline-5cc0b90f3ba0d190: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
