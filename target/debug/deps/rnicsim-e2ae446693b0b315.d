/root/repo/target/debug/deps/rnicsim-e2ae446693b0b315.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/debug/deps/rnicsim-e2ae446693b0b315: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
