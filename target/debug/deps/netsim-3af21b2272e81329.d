/root/repo/target/debug/deps/netsim-3af21b2272e81329.d: crates/netsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-3af21b2272e81329.rmeta: crates/netsim/src/lib.rs Cargo.toml

crates/netsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
