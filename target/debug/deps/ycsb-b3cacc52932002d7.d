/root/repo/target/debug/deps/ycsb-b3cacc52932002d7.d: crates/ycsb/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libycsb-b3cacc52932002d7.rmeta: crates/ycsb/src/lib.rs Cargo.toml

crates/ycsb/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
