/root/repo/target/debug/deps/baseline-09f9779079d85507.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/debug/deps/baseline-09f9779079d85507: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
