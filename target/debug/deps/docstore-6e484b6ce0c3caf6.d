/root/repo/target/debug/deps/docstore-6e484b6ce0c3caf6.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/debug/deps/docstore-6e484b6ce0c3caf6: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
