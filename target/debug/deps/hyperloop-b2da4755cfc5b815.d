/root/repo/target/debug/deps/hyperloop-b2da4755cfc5b815.d: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libhyperloop-b2da4755cfc5b815.rmeta: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/apps.rs:
crates/core/src/config.rs:
crates/core/src/fanout.rs:
crates/core/src/group.rs:
crates/core/src/harness.rs:
crates/core/src/lock.rs:
crates/core/src/membership.rs:
crates/core/src/meta.rs:
crates/core/src/ops.rs:
crates/core/src/reads.rs:
crates/core/src/transport.rs:
crates/core/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
