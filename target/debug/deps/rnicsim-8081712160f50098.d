/root/repo/target/debug/deps/rnicsim-8081712160f50098.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/debug/deps/librnicsim-8081712160f50098.rlib: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/debug/deps/librnicsim-8081712160f50098.rmeta: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
