/root/repo/target/debug/deps/recovery_e2e-327479dc39cd8401.d: tests/recovery_e2e.rs

/root/repo/target/debug/deps/recovery_e2e-327479dc39cd8401: tests/recovery_e2e.rs

tests/recovery_e2e.rs:
