/root/repo/target/debug/deps/nvmsim-324e7d27126df696.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs Cargo.toml

/root/repo/target/debug/deps/libnvmsim-324e7d27126df696.rmeta: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs Cargo.toml

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
