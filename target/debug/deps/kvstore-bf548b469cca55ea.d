/root/repo/target/debug/deps/kvstore-bf548b469cca55ea.d: crates/kvstore/src/lib.rs

/root/repo/target/debug/deps/libkvstore-bf548b469cca55ea.rlib: crates/kvstore/src/lib.rs

/root/repo/target/debug/deps/libkvstore-bf548b469cca55ea.rmeta: crates/kvstore/src/lib.rs

crates/kvstore/src/lib.rs:
