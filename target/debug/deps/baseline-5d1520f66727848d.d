/root/repo/target/debug/deps/baseline-5d1520f66727848d.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/debug/deps/libbaseline-5d1520f66727848d.rlib: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/debug/deps/libbaseline-5d1520f66727848d.rmeta: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
