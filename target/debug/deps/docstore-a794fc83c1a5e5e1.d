/root/repo/target/debug/deps/docstore-a794fc83c1a5e5e1.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/debug/deps/libdocstore-a794fc83c1a5e5e1.rlib: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/debug/deps/libdocstore-a794fc83c1a5e5e1.rmeta: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
