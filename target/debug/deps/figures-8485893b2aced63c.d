/root/repo/target/debug/deps/figures-8485893b2aced63c.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-8485893b2aced63c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
