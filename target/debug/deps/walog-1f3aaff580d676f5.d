/root/repo/target/debug/deps/walog-1f3aaff580d676f5.d: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libwalog-1f3aaff580d676f5.rmeta: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs Cargo.toml

crates/walog/src/lib.rs:
crates/walog/src/record.rs:
crates/walog/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
