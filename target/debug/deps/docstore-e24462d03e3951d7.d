/root/repo/target/debug/deps/docstore-e24462d03e3951d7.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdocstore-e24462d03e3951d7.rmeta: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs Cargo.toml

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
