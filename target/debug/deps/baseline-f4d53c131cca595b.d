/root/repo/target/debug/deps/baseline-f4d53c131cca595b.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline-f4d53c131cca595b.rmeta: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
