/root/repo/target/debug/deps/smoke-d1702faa31af7186.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-d1702faa31af7186: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
