/root/repo/target/debug/deps/cpusched-294b8ae2c37b5e05.d: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libcpusched-294b8ae2c37b5e05.rmeta: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs Cargo.toml

crates/cpusched/src/lib.rs:
crates/cpusched/src/scheduler.rs:
crates/cpusched/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
