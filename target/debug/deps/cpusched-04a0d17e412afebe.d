/root/repo/target/debug/deps/cpusched-04a0d17e412afebe.d: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

/root/repo/target/debug/deps/libcpusched-04a0d17e412afebe.rlib: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

/root/repo/target/debug/deps/libcpusched-04a0d17e412afebe.rmeta: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

crates/cpusched/src/lib.rs:
crates/cpusched/src/scheduler.rs:
crates/cpusched/src/types.rs:
