/root/repo/target/debug/deps/hyperloop_repro-47680f65bdad8aea.d: src/lib.rs

/root/repo/target/debug/deps/hyperloop_repro-47680f65bdad8aea: src/lib.rs

src/lib.rs:
