/root/repo/target/debug/deps/testbed-a69b7ac2e2d341b8.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/debug/deps/libtestbed-a69b7ac2e2d341b8.rlib: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/debug/deps/libtestbed-a69b7ac2e2d341b8.rmeta: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
