/root/repo/target/debug/deps/cpusched-1c77c757cf04f2d1.d: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

/root/repo/target/debug/deps/cpusched-1c77c757cf04f2d1: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

crates/cpusched/src/lib.rs:
crates/cpusched/src/scheduler.rs:
crates/cpusched/src/types.rs:
