/root/repo/target/debug/deps/fanout_vs_chain-9af4989e607e0c20.d: tests/fanout_vs_chain.rs

/root/repo/target/debug/deps/fanout_vs_chain-9af4989e607e0c20: tests/fanout_vs_chain.rs

tests/fanout_vs_chain.rs:
