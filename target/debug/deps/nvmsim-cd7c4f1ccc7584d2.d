/root/repo/target/debug/deps/nvmsim-cd7c4f1ccc7584d2.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs Cargo.toml

/root/repo/target/debug/deps/libnvmsim-cd7c4f1ccc7584d2.rmeta: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs Cargo.toml

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
