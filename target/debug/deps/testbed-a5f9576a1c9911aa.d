/root/repo/target/debug/deps/testbed-a5f9576a1c9911aa.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/debug/deps/testbed-a5f9576a1c9911aa: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
