/root/repo/target/debug/deps/kvstore-cbafc4774ea251f5.d: crates/kvstore/src/lib.rs

/root/repo/target/debug/deps/kvstore-cbafc4774ea251f5: crates/kvstore/src/lib.rs

crates/kvstore/src/lib.rs:
