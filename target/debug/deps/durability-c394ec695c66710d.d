/root/repo/target/debug/deps/durability-c394ec695c66710d.d: tests/durability.rs Cargo.toml

/root/repo/target/debug/deps/libdurability-c394ec695c66710d.rmeta: tests/durability.rs Cargo.toml

tests/durability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
