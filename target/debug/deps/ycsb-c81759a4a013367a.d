/root/repo/target/debug/deps/ycsb-c81759a4a013367a.d: crates/ycsb/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libycsb-c81759a4a013367a.rmeta: crates/ycsb/src/lib.rs Cargo.toml

crates/ycsb/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
