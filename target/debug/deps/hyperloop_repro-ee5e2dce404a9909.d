/root/repo/target/debug/deps/hyperloop_repro-ee5e2dce404a9909.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhyperloop_repro-ee5e2dce404a9909.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
