/root/repo/target/debug/deps/end_to_end_cluster-0e5b36c1c61bc410.d: tests/end_to_end_cluster.rs

/root/repo/target/debug/deps/end_to_end_cluster-0e5b36c1c61bc410: tests/end_to_end_cluster.rs

tests/end_to_end_cluster.rs:
