/root/repo/target/debug/deps/hyperloop_repro-87a77e76f871ec4e.d: src/lib.rs

/root/repo/target/debug/deps/hyperloop_repro-87a77e76f871ec4e: src/lib.rs

src/lib.rs:
