/root/repo/target/debug/deps/simcore-aae41c76e9f5b613.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/simcore-aae41c76e9f5b613: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/jsonw.rs:
crates/simcore/src/model.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/simtrace.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
