/root/repo/target/debug/deps/kvstore-e6c15e7519a7a633.d: crates/kvstore/src/lib.rs

/root/repo/target/debug/deps/kvstore-e6c15e7519a7a633: crates/kvstore/src/lib.rs

crates/kvstore/src/lib.rs:
