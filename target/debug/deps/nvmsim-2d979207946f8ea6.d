/root/repo/target/debug/deps/nvmsim-2d979207946f8ea6.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/debug/deps/libnvmsim-2d979207946f8ea6.rlib: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/debug/deps/libnvmsim-2d979207946f8ea6.rmeta: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
