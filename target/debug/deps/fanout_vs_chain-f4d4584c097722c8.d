/root/repo/target/debug/deps/fanout_vs_chain-f4d4584c097722c8.d: tests/fanout_vs_chain.rs Cargo.toml

/root/repo/target/debug/deps/libfanout_vs_chain-f4d4584c097722c8.rmeta: tests/fanout_vs_chain.rs Cargo.toml

tests/fanout_vs_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
