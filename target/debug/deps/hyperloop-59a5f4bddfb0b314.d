/root/repo/target/debug/deps/hyperloop-59a5f4bddfb0b314.d: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs

/root/repo/target/debug/deps/libhyperloop-59a5f4bddfb0b314.rlib: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs

/root/repo/target/debug/deps/libhyperloop-59a5f4bddfb0b314.rmeta: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs

crates/core/src/lib.rs:
crates/core/src/apps.rs:
crates/core/src/config.rs:
crates/core/src/fanout.rs:
crates/core/src/group.rs:
crates/core/src/harness.rs:
crates/core/src/lock.rs:
crates/core/src/membership.rs:
crates/core/src/meta.rs:
crates/core/src/ops.rs:
crates/core/src/reads.rs:
crates/core/src/transport.rs:
crates/core/src/wal.rs:
