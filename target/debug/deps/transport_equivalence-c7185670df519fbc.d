/root/repo/target/debug/deps/transport_equivalence-c7185670df519fbc.d: tests/transport_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_equivalence-c7185670df519fbc.rmeta: tests/transport_equivalence.rs Cargo.toml

tests/transport_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
