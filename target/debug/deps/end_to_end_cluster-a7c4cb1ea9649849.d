/root/repo/target/debug/deps/end_to_end_cluster-a7c4cb1ea9649849.d: tests/end_to_end_cluster.rs

/root/repo/target/debug/deps/end_to_end_cluster-a7c4cb1ea9649849: tests/end_to_end_cluster.rs

tests/end_to_end_cluster.rs:
