/root/repo/target/debug/deps/figures-9c7d6cfe179d9b8f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9c7d6cfe179d9b8f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
