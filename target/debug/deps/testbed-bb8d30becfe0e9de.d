/root/repo/target/debug/deps/testbed-bb8d30becfe0e9de.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/debug/deps/testbed-bb8d30becfe0e9de: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
