/root/repo/target/debug/deps/transport_equivalence-112527a66d8c25aa.d: tests/transport_equivalence.rs

/root/repo/target/debug/deps/transport_equivalence-112527a66d8c25aa: tests/transport_equivalence.rs

tests/transport_equivalence.rs:
