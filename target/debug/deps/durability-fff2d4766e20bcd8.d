/root/repo/target/debug/deps/durability-fff2d4766e20bcd8.d: tests/durability.rs

/root/repo/target/debug/deps/durability-fff2d4766e20bcd8: tests/durability.rs

tests/durability.rs:
