/root/repo/target/debug/deps/simtrace-ec7086ea39265474.d: crates/core/tests/simtrace.rs

/root/repo/target/debug/deps/simtrace-ec7086ea39265474: crates/core/tests/simtrace.rs

crates/core/tests/simtrace.rs:
