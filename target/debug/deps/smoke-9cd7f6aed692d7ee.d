/root/repo/target/debug/deps/smoke-9cd7f6aed692d7ee.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-9cd7f6aed692d7ee.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
