/root/repo/target/debug/deps/nvmsim-91b6314b508e2d59.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/debug/deps/nvmsim-91b6314b508e2d59: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
