/root/repo/target/debug/deps/walog-9d9a8f9dec41d612.d: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

/root/repo/target/debug/deps/walog-9d9a8f9dec41d612: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

crates/walog/src/lib.rs:
crates/walog/src/record.rs:
crates/walog/src/ring.rs:
