/root/repo/target/debug/deps/simcore-4881970ef120b6cc.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsimcore-4881970ef120b6cc.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/jsonw.rs:
crates/simcore/src/model.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/simtrace.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
