/root/repo/target/debug/deps/rnicsim-849b6f6754ecdc15.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/debug/deps/librnicsim-849b6f6754ecdc15.rlib: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/debug/deps/librnicsim-849b6f6754ecdc15.rmeta: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
