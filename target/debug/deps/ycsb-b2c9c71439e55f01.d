/root/repo/target/debug/deps/ycsb-b2c9c71439e55f01.d: crates/ycsb/src/lib.rs

/root/repo/target/debug/deps/libycsb-b2c9c71439e55f01.rlib: crates/ycsb/src/lib.rs

/root/repo/target/debug/deps/libycsb-b2c9c71439e55f01.rmeta: crates/ycsb/src/lib.rs

crates/ycsb/src/lib.rs:
