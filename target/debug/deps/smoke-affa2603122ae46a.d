/root/repo/target/debug/deps/smoke-affa2603122ae46a.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-affa2603122ae46a: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
