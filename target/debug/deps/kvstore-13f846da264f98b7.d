/root/repo/target/debug/deps/kvstore-13f846da264f98b7.d: crates/kvstore/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-13f846da264f98b7.rmeta: crates/kvstore/src/lib.rs Cargo.toml

crates/kvstore/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
