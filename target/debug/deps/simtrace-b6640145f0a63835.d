/root/repo/target/debug/deps/simtrace-b6640145f0a63835.d: crates/core/tests/simtrace.rs Cargo.toml

/root/repo/target/debug/deps/libsimtrace-b6640145f0a63835.rmeta: crates/core/tests/simtrace.rs Cargo.toml

crates/core/tests/simtrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
