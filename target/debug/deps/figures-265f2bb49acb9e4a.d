/root/repo/target/debug/deps/figures-265f2bb49acb9e4a.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-265f2bb49acb9e4a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
