/root/repo/target/debug/deps/docstore-06ec328815bce3df.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdocstore-06ec328815bce3df.rmeta: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs Cargo.toml

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
