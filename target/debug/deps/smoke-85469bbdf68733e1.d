/root/repo/target/debug/deps/smoke-85469bbdf68733e1.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-85469bbdf68733e1: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
