/root/repo/target/debug/deps/kvstore-a95a03fb413ac583.d: crates/kvstore/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-a95a03fb413ac583.rmeta: crates/kvstore/src/lib.rs Cargo.toml

crates/kvstore/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
