/root/repo/target/debug/deps/nvmsim-00956f58d20bb7c7.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/debug/deps/libnvmsim-00956f58d20bb7c7.rlib: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/debug/deps/libnvmsim-00956f58d20bb7c7.rmeta: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
