/root/repo/target/debug/deps/smoke-065838c5d256aaa0.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-065838c5d256aaa0.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
