/root/repo/target/debug/deps/baseline-e85af332a2d24a6c.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/debug/deps/libbaseline-e85af332a2d24a6c.rlib: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/debug/deps/libbaseline-e85af332a2d24a6c.rmeta: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
