/root/repo/target/debug/deps/hyperloop_bench-4b8e4d360648f076.d: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/hyperloop_bench-4b8e4d360648f076: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/appbench.rs:
crates/bench/src/driver.rs:
crates/bench/src/fanout_ablation.rs:
crates/bench/src/figures.rs:
crates/bench/src/micro.rs:
crates/bench/src/mongo2.rs:
crates/bench/src/report.rs:
