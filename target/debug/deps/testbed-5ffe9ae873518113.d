/root/repo/target/debug/deps/testbed-5ffe9ae873518113.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtestbed-5ffe9ae873518113.rmeta: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs Cargo.toml

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
