/root/repo/target/debug/deps/hyperloop_repro-b9f819a85be85e36.d: src/lib.rs

/root/repo/target/debug/deps/libhyperloop_repro-b9f819a85be85e36.rlib: src/lib.rs

/root/repo/target/debug/deps/libhyperloop_repro-b9f819a85be85e36.rmeta: src/lib.rs

src/lib.rs:
