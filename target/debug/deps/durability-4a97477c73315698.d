/root/repo/target/debug/deps/durability-4a97477c73315698.d: tests/durability.rs

/root/repo/target/debug/deps/durability-4a97477c73315698: tests/durability.rs

tests/durability.rs:
