/root/repo/target/debug/deps/walog-2cfcd3e4a19df156.d: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

/root/repo/target/debug/deps/libwalog-2cfcd3e4a19df156.rlib: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

/root/repo/target/debug/deps/libwalog-2cfcd3e4a19df156.rmeta: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

crates/walog/src/lib.rs:
crates/walog/src/record.rs:
crates/walog/src/ring.rs:
