/root/repo/target/debug/deps/netsim-b1e648a6f6c88da9.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/libnetsim-b1e648a6f6c88da9.rlib: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/libnetsim-b1e648a6f6c88da9.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
