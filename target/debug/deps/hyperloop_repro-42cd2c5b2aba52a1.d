/root/repo/target/debug/deps/hyperloop_repro-42cd2c5b2aba52a1.d: src/lib.rs

/root/repo/target/debug/deps/libhyperloop_repro-42cd2c5b2aba52a1.rlib: src/lib.rs

/root/repo/target/debug/deps/libhyperloop_repro-42cd2c5b2aba52a1.rmeta: src/lib.rs

src/lib.rs:
