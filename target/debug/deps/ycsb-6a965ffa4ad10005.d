/root/repo/target/debug/deps/ycsb-6a965ffa4ad10005.d: crates/ycsb/src/lib.rs

/root/repo/target/debug/deps/ycsb-6a965ffa4ad10005: crates/ycsb/src/lib.rs

crates/ycsb/src/lib.rs:
