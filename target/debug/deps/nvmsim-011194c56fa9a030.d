/root/repo/target/debug/deps/nvmsim-011194c56fa9a030.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/debug/deps/nvmsim-011194c56fa9a030: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
