/root/repo/target/debug/deps/testbed-6c57a95f13b01aba.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtestbed-6c57a95f13b01aba.rmeta: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs Cargo.toml

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
