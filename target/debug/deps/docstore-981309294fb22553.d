/root/repo/target/debug/deps/docstore-981309294fb22553.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/debug/deps/docstore-981309294fb22553: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
