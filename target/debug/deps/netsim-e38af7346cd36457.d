/root/repo/target/debug/deps/netsim-e38af7346cd36457.d: crates/netsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-e38af7346cd36457.rmeta: crates/netsim/src/lib.rs Cargo.toml

crates/netsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
