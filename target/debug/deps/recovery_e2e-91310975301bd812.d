/root/repo/target/debug/deps/recovery_e2e-91310975301bd812.d: tests/recovery_e2e.rs

/root/repo/target/debug/deps/recovery_e2e-91310975301bd812: tests/recovery_e2e.rs

tests/recovery_e2e.rs:
