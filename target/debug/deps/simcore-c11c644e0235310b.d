/root/repo/target/debug/deps/simcore-c11c644e0235310b.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libsimcore-c11c644e0235310b.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libsimcore-c11c644e0235310b.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/jsonw.rs:
crates/simcore/src/model.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/simtrace.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
