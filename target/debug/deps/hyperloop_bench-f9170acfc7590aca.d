/root/repo/target/debug/deps/hyperloop_bench-f9170acfc7590aca.d: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libhyperloop_bench-f9170acfc7590aca.rmeta: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/appbench.rs:
crates/bench/src/driver.rs:
crates/bench/src/fanout_ablation.rs:
crates/bench/src/figures.rs:
crates/bench/src/micro.rs:
crates/bench/src/mongo2.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
