/root/repo/target/debug/deps/fanout_vs_chain-68b6137f7a75f735.d: tests/fanout_vs_chain.rs

/root/repo/target/debug/deps/fanout_vs_chain-68b6137f7a75f735: tests/fanout_vs_chain.rs

tests/fanout_vs_chain.rs:
