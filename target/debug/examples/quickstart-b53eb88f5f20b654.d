/root/repo/target/debug/examples/quickstart-b53eb88f5f20b654.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b53eb88f5f20b654.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
