/root/repo/target/debug/examples/chain_recovery-b807c2c2bcd94724.d: examples/chain_recovery.rs

/root/repo/target/debug/examples/chain_recovery-b807c2c2bcd94724: examples/chain_recovery.rs

examples/chain_recovery.rs:
