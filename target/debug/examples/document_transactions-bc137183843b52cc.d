/root/repo/target/debug/examples/document_transactions-bc137183843b52cc.d: examples/document_transactions.rs

/root/repo/target/debug/examples/document_transactions-bc137183843b52cc: examples/document_transactions.rs

examples/document_transactions.rs:
