/root/repo/target/debug/examples/chain_recovery-3ed0d807bbc05c22.d: examples/chain_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libchain_recovery-3ed0d807bbc05c22.rmeta: examples/chain_recovery.rs Cargo.toml

examples/chain_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
