/root/repo/target/debug/examples/replicated_kvstore-fed7f01fce4471a5.d: examples/replicated_kvstore.rs

/root/repo/target/debug/examples/replicated_kvstore-fed7f01fce4471a5: examples/replicated_kvstore.rs

examples/replicated_kvstore.rs:
