/root/repo/target/debug/examples/document_transactions-aba86419ede69cbd.d: examples/document_transactions.rs

/root/repo/target/debug/examples/document_transactions-aba86419ede69cbd: examples/document_transactions.rs

examples/document_transactions.rs:
