/root/repo/target/debug/examples/replicated_kvstore-5a878f97515057a3.d: examples/replicated_kvstore.rs

/root/repo/target/debug/examples/replicated_kvstore-5a878f97515057a3: examples/replicated_kvstore.rs

examples/replicated_kvstore.rs:
