/root/repo/target/debug/examples/replicated_kvstore-d87e28b40eb8e646.d: examples/replicated_kvstore.rs Cargo.toml

/root/repo/target/debug/examples/libreplicated_kvstore-d87e28b40eb8e646.rmeta: examples/replicated_kvstore.rs Cargo.toml

examples/replicated_kvstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
