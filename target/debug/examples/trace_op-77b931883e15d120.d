/root/repo/target/debug/examples/trace_op-77b931883e15d120.d: examples/trace_op.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_op-77b931883e15d120.rmeta: examples/trace_op.rs Cargo.toml

examples/trace_op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
