/root/repo/target/debug/examples/quickstart-c6dcd07c7705f162.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c6dcd07c7705f162: examples/quickstart.rs

examples/quickstart.rs:
