/root/repo/target/debug/examples/multi_tenant_tail-b64e9b2977fd6e9e.d: examples/multi_tenant_tail.rs

/root/repo/target/debug/examples/multi_tenant_tail-b64e9b2977fd6e9e: examples/multi_tenant_tail.rs

examples/multi_tenant_tail.rs:
