/root/repo/target/debug/examples/chain_recovery-2d2ffe7b59b852d8.d: examples/chain_recovery.rs

/root/repo/target/debug/examples/chain_recovery-2d2ffe7b59b852d8: examples/chain_recovery.rs

examples/chain_recovery.rs:
