/root/repo/target/debug/examples/trace_op-456e04e7d3448f07.d: examples/trace_op.rs

/root/repo/target/debug/examples/trace_op-456e04e7d3448f07: examples/trace_op.rs

examples/trace_op.rs:
