/root/repo/target/debug/examples/multi_tenant_tail-4762b0b6567032aa.d: examples/multi_tenant_tail.rs

/root/repo/target/debug/examples/multi_tenant_tail-4762b0b6567032aa: examples/multi_tenant_tail.rs

examples/multi_tenant_tail.rs:
