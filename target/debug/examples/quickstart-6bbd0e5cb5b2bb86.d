/root/repo/target/debug/examples/quickstart-6bbd0e5cb5b2bb86.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6bbd0e5cb5b2bb86: examples/quickstart.rs

examples/quickstart.rs:
