/root/repo/target/debug/examples/document_transactions-36e695a1d04d6457.d: examples/document_transactions.rs Cargo.toml

/root/repo/target/debug/examples/libdocument_transactions-36e695a1d04d6457.rmeta: examples/document_transactions.rs Cargo.toml

examples/document_transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
