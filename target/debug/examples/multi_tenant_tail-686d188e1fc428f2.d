/root/repo/target/debug/examples/multi_tenant_tail-686d188e1fc428f2.d: examples/multi_tenant_tail.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_tenant_tail-686d188e1fc428f2.rmeta: examples/multi_tenant_tail.rs Cargo.toml

examples/multi_tenant_tail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
