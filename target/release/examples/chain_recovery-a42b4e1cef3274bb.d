/root/repo/target/release/examples/chain_recovery-a42b4e1cef3274bb.d: examples/chain_recovery.rs

/root/repo/target/release/examples/chain_recovery-a42b4e1cef3274bb: examples/chain_recovery.rs

examples/chain_recovery.rs:
