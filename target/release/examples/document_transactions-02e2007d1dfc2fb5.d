/root/repo/target/release/examples/document_transactions-02e2007d1dfc2fb5.d: examples/document_transactions.rs

/root/repo/target/release/examples/document_transactions-02e2007d1dfc2fb5: examples/document_transactions.rs

examples/document_transactions.rs:
