/root/repo/target/release/examples/replicated_kvstore-8bdd60329a563b85.d: examples/replicated_kvstore.rs

/root/repo/target/release/examples/replicated_kvstore-8bdd60329a563b85: examples/replicated_kvstore.rs

examples/replicated_kvstore.rs:
