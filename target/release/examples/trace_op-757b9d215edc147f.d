/root/repo/target/release/examples/trace_op-757b9d215edc147f.d: examples/trace_op.rs

/root/repo/target/release/examples/trace_op-757b9d215edc147f: examples/trace_op.rs

examples/trace_op.rs:
