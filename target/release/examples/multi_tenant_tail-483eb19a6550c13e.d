/root/repo/target/release/examples/multi_tenant_tail-483eb19a6550c13e.d: examples/multi_tenant_tail.rs

/root/repo/target/release/examples/multi_tenant_tail-483eb19a6550c13e: examples/multi_tenant_tail.rs

examples/multi_tenant_tail.rs:
