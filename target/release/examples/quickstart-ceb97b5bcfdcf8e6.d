/root/repo/target/release/examples/quickstart-ceb97b5bcfdcf8e6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ceb97b5bcfdcf8e6: examples/quickstart.rs

examples/quickstart.rs:
