/root/repo/target/release/deps/hyperloop_bench-05d5b74770fae928.d: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libhyperloop_bench-05d5b74770fae928.rlib: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libhyperloop_bench-05d5b74770fae928.rmeta: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/appbench.rs:
crates/bench/src/driver.rs:
crates/bench/src/fanout_ablation.rs:
crates/bench/src/figures.rs:
crates/bench/src/micro.rs:
crates/bench/src/mongo2.rs:
crates/bench/src/report.rs:
