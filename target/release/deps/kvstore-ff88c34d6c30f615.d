/root/repo/target/release/deps/kvstore-ff88c34d6c30f615.d: crates/kvstore/src/lib.rs

/root/repo/target/release/deps/libkvstore-ff88c34d6c30f615.rlib: crates/kvstore/src/lib.rs

/root/repo/target/release/deps/libkvstore-ff88c34d6c30f615.rmeta: crates/kvstore/src/lib.rs

crates/kvstore/src/lib.rs:
