/root/repo/target/release/deps/transport_equivalence-7ea630354a38f7fa.d: tests/transport_equivalence.rs

/root/repo/target/release/deps/transport_equivalence-7ea630354a38f7fa: tests/transport_equivalence.rs

tests/transport_equivalence.rs:
