/root/repo/target/release/deps/baseline-2dc61ff8302f56c1.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/release/deps/libbaseline-2dc61ff8302f56c1.rlib: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/release/deps/libbaseline-2dc61ff8302f56c1.rmeta: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
