/root/repo/target/release/deps/testbed-d7f9a5443d5ebd6b.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/release/deps/libtestbed-d7f9a5443d5ebd6b.rlib: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/release/deps/libtestbed-d7f9a5443d5ebd6b.rmeta: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
