/root/repo/target/release/deps/nvmsim-a0ca077327f62be1.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/release/deps/libnvmsim-a0ca077327f62be1.rlib: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/release/deps/libnvmsim-a0ca077327f62be1.rmeta: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
