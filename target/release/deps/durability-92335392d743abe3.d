/root/repo/target/release/deps/durability-92335392d743abe3.d: tests/durability.rs

/root/repo/target/release/deps/durability-92335392d743abe3: tests/durability.rs

tests/durability.rs:
