/root/repo/target/release/deps/baseline-74f9bcfef75b6103.d: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/release/deps/libbaseline-74f9bcfef75b6103.rlib: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

/root/repo/target/release/deps/libbaseline-74f9bcfef75b6103.rmeta: crates/baseline/src/lib.rs crates/baseline/src/client.rs crates/baseline/src/cmd.rs crates/baseline/src/replica.rs

crates/baseline/src/lib.rs:
crates/baseline/src/client.rs:
crates/baseline/src/cmd.rs:
crates/baseline/src/replica.rs:
