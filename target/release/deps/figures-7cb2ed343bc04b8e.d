/root/repo/target/release/deps/figures-7cb2ed343bc04b8e.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-7cb2ed343bc04b8e: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
