/root/repo/target/release/deps/rnicsim-72d7040509429848.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/release/deps/librnicsim-72d7040509429848.rlib: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/release/deps/librnicsim-72d7040509429848.rmeta: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
