/root/repo/target/release/deps/hyperloop_bench-87d2185be182e275.d: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libhyperloop_bench-87d2185be182e275.rlib: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libhyperloop_bench-87d2185be182e275.rmeta: crates/bench/src/lib.rs crates/bench/src/appbench.rs crates/bench/src/driver.rs crates/bench/src/fanout_ablation.rs crates/bench/src/figures.rs crates/bench/src/micro.rs crates/bench/src/mongo2.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/appbench.rs:
crates/bench/src/driver.rs:
crates/bench/src/fanout_ablation.rs:
crates/bench/src/figures.rs:
crates/bench/src/micro.rs:
crates/bench/src/mongo2.rs:
crates/bench/src/report.rs:
