/root/repo/target/release/deps/ycsb-36f72312bf098492.d: crates/ycsb/src/lib.rs

/root/repo/target/release/deps/libycsb-36f72312bf098492.rlib: crates/ycsb/src/lib.rs

/root/repo/target/release/deps/libycsb-36f72312bf098492.rmeta: crates/ycsb/src/lib.rs

crates/ycsb/src/lib.rs:
