/root/repo/target/release/deps/netsim-7682d629b00ca89f.d: crates/netsim/src/lib.rs

/root/repo/target/release/deps/libnetsim-7682d629b00ca89f.rlib: crates/netsim/src/lib.rs

/root/repo/target/release/deps/libnetsim-7682d629b00ca89f.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
