/root/repo/target/release/deps/smoke-f354c4d85fae8f85.d: crates/bench/src/bin/smoke.rs

/root/repo/target/release/deps/smoke-f354c4d85fae8f85: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
