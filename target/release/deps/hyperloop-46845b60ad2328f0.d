/root/repo/target/release/deps/hyperloop-46845b60ad2328f0.d: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs

/root/repo/target/release/deps/libhyperloop-46845b60ad2328f0.rlib: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs

/root/repo/target/release/deps/libhyperloop-46845b60ad2328f0.rmeta: crates/core/src/lib.rs crates/core/src/apps.rs crates/core/src/config.rs crates/core/src/fanout.rs crates/core/src/group.rs crates/core/src/harness.rs crates/core/src/lock.rs crates/core/src/membership.rs crates/core/src/meta.rs crates/core/src/ops.rs crates/core/src/reads.rs crates/core/src/transport.rs crates/core/src/wal.rs

crates/core/src/lib.rs:
crates/core/src/apps.rs:
crates/core/src/config.rs:
crates/core/src/fanout.rs:
crates/core/src/group.rs:
crates/core/src/harness.rs:
crates/core/src/lock.rs:
crates/core/src/membership.rs:
crates/core/src/meta.rs:
crates/core/src/ops.rs:
crates/core/src/reads.rs:
crates/core/src/transport.rs:
crates/core/src/wal.rs:
