/root/repo/target/release/deps/hyperloop_repro-b60658a10491da7a.d: src/lib.rs

/root/repo/target/release/deps/libhyperloop_repro-b60658a10491da7a.rlib: src/lib.rs

/root/repo/target/release/deps/libhyperloop_repro-b60658a10491da7a.rmeta: src/lib.rs

src/lib.rs:
