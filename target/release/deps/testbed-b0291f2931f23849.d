/root/repo/target/release/deps/testbed-b0291f2931f23849.d: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/release/deps/libtestbed-b0291f2931f23849.rlib: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

/root/repo/target/release/deps/libtestbed-b0291f2931f23849.rmeta: crates/testbed/src/lib.rs crates/testbed/src/cluster.rs crates/testbed/src/env.rs crates/testbed/src/types.rs

crates/testbed/src/lib.rs:
crates/testbed/src/cluster.rs:
crates/testbed/src/env.rs:
crates/testbed/src/types.rs:
