/root/repo/target/release/deps/hyperloop_repro-0b6be91179fe6686.d: src/lib.rs

/root/repo/target/release/deps/libhyperloop_repro-0b6be91179fe6686.rlib: src/lib.rs

/root/repo/target/release/deps/libhyperloop_repro-0b6be91179fe6686.rmeta: src/lib.rs

src/lib.rs:
