/root/repo/target/release/deps/docstore-8c539905f1eafaf9.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/release/deps/libdocstore-8c539905f1eafaf9.rlib: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/release/deps/libdocstore-8c539905f1eafaf9.rmeta: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
