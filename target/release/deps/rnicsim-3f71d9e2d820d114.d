/root/repo/target/release/deps/rnicsim-3f71d9e2d820d114.d: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/release/deps/librnicsim-3f71d9e2d820d114.rlib: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

/root/repo/target/release/deps/librnicsim-3f71d9e2d820d114.rmeta: crates/rnicsim/src/lib.rs crates/rnicsim/src/fabric.rs crates/rnicsim/src/types.rs

crates/rnicsim/src/lib.rs:
crates/rnicsim/src/fabric.rs:
crates/rnicsim/src/types.rs:
