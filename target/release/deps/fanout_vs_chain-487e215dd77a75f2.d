/root/repo/target/release/deps/fanout_vs_chain-487e215dd77a75f2.d: tests/fanout_vs_chain.rs

/root/repo/target/release/deps/fanout_vs_chain-487e215dd77a75f2: tests/fanout_vs_chain.rs

tests/fanout_vs_chain.rs:
