/root/repo/target/release/deps/walog-9ba044d11aac2c39.d: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

/root/repo/target/release/deps/libwalog-9ba044d11aac2c39.rlib: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

/root/repo/target/release/deps/libwalog-9ba044d11aac2c39.rmeta: crates/walog/src/lib.rs crates/walog/src/record.rs crates/walog/src/ring.rs

crates/walog/src/lib.rs:
crates/walog/src/record.rs:
crates/walog/src/ring.rs:
