/root/repo/target/release/deps/end_to_end_cluster-6157790091ae0054.d: tests/end_to_end_cluster.rs

/root/repo/target/release/deps/end_to_end_cluster-6157790091ae0054: tests/end_to_end_cluster.rs

tests/end_to_end_cluster.rs:
