/root/repo/target/release/deps/nvmsim-b719009531b1b596.d: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/release/deps/libnvmsim-b719009531b1b596.rlib: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

/root/repo/target/release/deps/libnvmsim-b719009531b1b596.rmeta: crates/nvmsim/src/lib.rs crates/nvmsim/src/device.rs crates/nvmsim/src/overlay.rs

crates/nvmsim/src/lib.rs:
crates/nvmsim/src/device.rs:
crates/nvmsim/src/overlay.rs:
