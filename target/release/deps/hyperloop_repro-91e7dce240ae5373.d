/root/repo/target/release/deps/hyperloop_repro-91e7dce240ae5373.d: src/lib.rs

/root/repo/target/release/deps/hyperloop_repro-91e7dce240ae5373: src/lib.rs

src/lib.rs:
