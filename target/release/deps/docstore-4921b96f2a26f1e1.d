/root/repo/target/release/deps/docstore-4921b96f2a26f1e1.d: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/release/deps/libdocstore-4921b96f2a26f1e1.rlib: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

/root/repo/target/release/deps/libdocstore-4921b96f2a26f1e1.rmeta: crates/docstore/src/lib.rs crates/docstore/src/doc.rs crates/docstore/src/store.rs

crates/docstore/src/lib.rs:
crates/docstore/src/doc.rs:
crates/docstore/src/store.rs:
