/root/repo/target/release/deps/simcore-3498eb952a9b3215.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-3498eb952a9b3215.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-3498eb952a9b3215.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/jsonw.rs crates/simcore/src/model.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/simtrace.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/jsonw.rs:
crates/simcore/src/model.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/simtrace.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
