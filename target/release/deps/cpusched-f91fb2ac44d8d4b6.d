/root/repo/target/release/deps/cpusched-f91fb2ac44d8d4b6.d: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

/root/repo/target/release/deps/libcpusched-f91fb2ac44d8d4b6.rlib: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

/root/repo/target/release/deps/libcpusched-f91fb2ac44d8d4b6.rmeta: crates/cpusched/src/lib.rs crates/cpusched/src/scheduler.rs crates/cpusched/src/types.rs

crates/cpusched/src/lib.rs:
crates/cpusched/src/scheduler.rs:
crates/cpusched/src/types.rs:
