/root/repo/target/release/deps/recovery_e2e-3eeaf3128e9241d6.d: tests/recovery_e2e.rs

/root/repo/target/release/deps/recovery_e2e-3eeaf3128e9241d6: tests/recovery_e2e.rs

tests/recovery_e2e.rs:
