/root/repo/target/release/deps/kvstore-90c0f1ed684b78f5.d: crates/kvstore/src/lib.rs

/root/repo/target/release/deps/libkvstore-90c0f1ed684b78f5.rlib: crates/kvstore/src/lib.rs

/root/repo/target/release/deps/libkvstore-90c0f1ed684b78f5.rmeta: crates/kvstore/src/lib.rs

crates/kvstore/src/lib.rs:
