//! # kvstore — a RocksDB-style replicated persistent key-value store
//!
//! The paper's first case study (§5.1): an embedded KV library that serves
//! reads from an in-memory table and persists writes through a durable,
//! *replicated* write-ahead log, periodically dumping state and truncating
//! the log. The modification the paper makes to RocksDB — swap the native
//! log append for HyperLoop's `Append` — is this crate's
//! [`ReplicatedKv::put`]; checkpointing ([`ReplicatedKv::checkpoint`]) uses
//! `ExecuteAndAdvance` off the critical path.
//!
//! The store is generic over [`GroupTransport`], so the identical code runs
//! on the HyperLoop data path (replica CPUs idle) and the Naïve-RDMA
//! baseline (replica CPUs on every hop) — the comparison of Figure 11.
//!
//! Keys are dense indexes `0..capacity` (the YCSB shape); each key owns a
//! fixed slot in the database region: `[len: u32 | bytes]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sharded;

pub use sharded::{KvTxn, ShardedKv, TXN_LOCKS};

use hyperloop::wal::{recover_unapplied, ReplicatedWal, WalError, WalLayout};
use hyperloop::{GroupAck, GroupTransport};
use rnicsim::{NicCtx, RdmaFabric};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use walog::LogEntry;

/// Store geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Maximum number of keys (dense `0..capacity`).
    pub capacity: u64,
    /// Maximum value size in bytes.
    pub max_value: u64,
    /// Bytes reserved for the log ring.
    pub log_size: u64,
    /// Bytes reserved for control words (head pointer, locks).
    pub control_size: u64,
    /// Durable mode interleaves a gFLUSH with every append (the default).
    /// `false` gives the paper's §7 RAMCloud-like semantics: replicated but
    /// volatile — faster, lost on power failure.
    pub durable: bool,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            capacity: 1024,
            max_value: 1024,
            log_size: 1 << 20,
            control_size: 4096,
            durable: true,
        }
    }
}

impl KvConfig {
    /// Bytes of one value slot (`len` prefix + payload).
    pub fn slot_size(&self) -> u64 {
        4 + self.max_value
    }

    /// Bytes of database area required.
    pub fn db_bytes(&self) -> u64 {
        self.capacity * self.slot_size()
    }
}

/// Store errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Key index beyond `capacity`.
    KeyOutOfRange,
    /// Value longer than `max_value`.
    ValueTooLarge,
    /// Underlying WAL/transport back-pressure; poll and retry.
    Busy,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::KeyOutOfRange => f.write_str("key out of range"),
            KvError::ValueTooLarge => f.write_str("value too large"),
            KvError::Busy => f.write_str("store busy; poll for completions"),
        }
    }
}

impl std::error::Error for KvError {}

/// A completed durable write, reported by [`ReplicatedKv::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedPut {
    /// The key whose write became durable on every replica.
    pub key: u64,
    /// Transaction id in the WAL.
    pub tx_id: u64,
}

/// The replicated KV store (client/primary side).
pub struct ReplicatedKv<T> {
    /// The replication transport (public: benches poll/issue through it).
    pub transport: T,
    config: KvConfig,
    wal: ReplicatedWal,
    memtable: BTreeMap<u64, Vec<u8>>,
    /// gen (of the append's last group op) → (key, tx).
    pending_puts: HashMap<u64, (u64, u64)>,
    /// gens of checkpoint ops still in flight (not latency-critical).
    pending_checkpoint: HashMap<u64, ()>,
}

impl<T: fmt::Debug> fmt::Debug for ReplicatedKv<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedKv")
            .field("keys", &self.memtable.len())
            .field("wal_backlog", &self.wal.backlog())
            .finish()
    }
}

impl<T: GroupTransport> ReplicatedKv<T> {
    /// Builds the store over an already-wired transport.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not fit the transport's shared region.
    pub fn new(transport: T, config: KvConfig) -> Self {
        let shared = transport.shared_size();
        let wal_layout = WalLayout::standard(shared, config.log_size, config.control_size);
        assert!(
            config.db_bytes() <= wal_layout.db_size,
            "database ({} B) exceeds the available region ({} B)",
            config.db_bytes(),
            wal_layout.db_size
        );
        ReplicatedKv {
            transport,
            config,
            wal: ReplicatedWal::new(wal_layout),
            memtable: BTreeMap::new(),
            pending_puts: HashMap::new(),
            pending_checkpoint: HashMap::new(),
        }
    }

    /// Store geometry.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// Reads from the in-memory table (primary-side read path).
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.memtable.get(&key).map(|v| v.as_slice())
    }

    /// Range scan over the memtable, up to `len` present keys from `start`.
    pub fn scan(&self, start: u64, len: u64) -> Vec<(u64, &[u8])> {
        self.memtable
            .range(start..)
            .take(len as usize)
            .map(|(k, v)| (*k, v.as_slice()))
            .collect()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.memtable.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.memtable.is_empty()
    }

    /// WAL records appended but not yet checkpointed.
    pub fn wal_backlog(&self) -> usize {
        self.wal.backlog()
    }

    /// The store's WAL driver (read-only: layout, ring cursors, copy
    /// sizing for migration).
    pub fn wal(&self) -> &ReplicatedWal {
        &self.wal
    }

    /// Durable replicated write: updates the memtable immediately and
    /// appends a redo record to every replica's log (the critical path —
    /// one gWRITE + gFLUSH). Completion arrives via [`ReplicatedKv::poll`].
    ///
    /// # Errors
    ///
    /// [`KvError`] on geometry violations or back-pressure.
    pub fn put(&mut self, ctx: &mut NicCtx<'_>, key: u64, value: Vec<u8>) -> Result<u64, KvError> {
        if key >= self.config.capacity {
            return Err(KvError::KeyOutOfRange);
        }
        if value.len() as u64 > self.config.max_value {
            return Err(KvError::ValueTooLarge);
        }
        let slot = key * self.config.slot_size();
        let mut slot_bytes = (value.len() as u32).to_le_bytes().to_vec();
        slot_bytes.extend_from_slice(&value);
        let entries = vec![LogEntry {
            offset: slot,
            data: slot_bytes,
        }];
        let receipt = self
            .wal
            .append_opts(&mut self.transport, ctx, entries, self.config.durable)
            .map_err(|e| match e {
                WalError::EntryOutOfDatabase => KvError::KeyOutOfRange,
                WalError::LogFull | WalError::WindowFull => KvError::Busy,
            })?;
        self.memtable.insert(key, value);
        let gen = *receipt.gens.last().expect("append issues one op");
        self.pending_puts.insert(gen, (key, receipt.tx_id));
        Ok(gen)
    }

    /// Off-critical-path maintenance: applies backlogged WAL records to the
    /// replicas' database regions (gMEMCPY) and truncates. Call when idle —
    /// RocksDB's periodic dump. Applies at most `max_records`.
    pub fn checkpoint(&mut self, ctx: &mut NicCtx<'_>, max_records: usize) -> usize {
        let mut applied = 0;
        while applied < max_records {
            match self.wal.execute_and_advance(&mut self.transport, ctx) {
                Ok(Some(receipt)) => {
                    for g in receipt.gens {
                        self.pending_checkpoint.insert(g, ());
                    }
                    applied += 1;
                }
                Ok(None) | Err(_) => break,
            }
        }
        applied
    }

    /// Collects transport completions; returns finished puts. Acks the
    /// store does not recognise (ops issued directly on the transport by a
    /// co-resident layer, e.g. the transaction manager) are dropped — use
    /// [`ReplicatedKv::poll_raw`] to receive them instead.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<CompletedPut> {
        self.poll_raw(ctx).0
    }

    /// Collects transport completions, splitting them into finished puts
    /// and *foreign* acks: completions of ops the store itself never issued
    /// (generation unknown to both the put and checkpoint maps). Layers
    /// that share the transport — the transaction manager issues lock and
    /// apply ops on the same replication chain — consume the foreign half;
    /// without this split those acks would be silently dropped and the
    /// sharing layer would wedge.
    pub fn poll_raw(&mut self, ctx: &mut NicCtx<'_>) -> (Vec<CompletedPut>, Vec<GroupAck>) {
        let acks = self.transport.poll(ctx);
        let mut done = Vec::new();
        let mut foreign = Vec::new();
        for ack in acks {
            if let Some((key, tx_id)) = self.pending_puts.remove(&ack.gen) {
                done.push(CompletedPut { key, tx_id });
            } else if self.pending_checkpoint.remove(&ack.gen).is_none() {
                foreign.push(ack);
            }
        }
        (done, foreign)
    }

    /// Installs a transactionally committed value into the memtable (the
    /// replica-side bytes were already applied by the commit protocol).
    pub(crate) fn install(&mut self, key: u64, value: Vec<u8>) {
        self.memtable.insert(key, value);
    }

    /// Reads a key from one replica's *database region* (checkpointed state
    /// only — the paper's eventually-consistent replica read).
    pub fn replica_get(
        &self,
        fab: &mut RdmaFabric,
        replica_node: netsim::NodeId,
        shared_base: u64,
        key: u64,
    ) -> Option<Vec<u8>> {
        let slot = self.wal.layout().db_offset + key * self.config.slot_size();
        let raw = fab
            .mem(replica_node)
            .read_vec(shared_base + slot, self.config.slot_size())
            .ok()?;
        let len = u32::from_le_bytes(raw[..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > self.config.max_value as usize {
            return None;
        }
        Some(raw[4..4 + len].to_vec())
    }

    /// Crash recovery: reconstructs the logical store state from one
    /// replica's *durable* bytes (database region + WAL replay), as a fresh
    /// process would after power failure. Uses only durable content.
    pub fn recover_state(
        &self,
        fab: &mut RdmaFabric,
        replica_node: netsim::NodeId,
        shared_base: u64,
    ) -> BTreeMap<u64, Vec<u8>> {
        let layout = *self.wal.layout();
        let slot_size = self.config.slot_size();
        // 1. Checkpointed state from the database region (durable view).
        let db = fab
            .mem(replica_node)
            .read_durable_vec(shared_base + layout.db_offset, self.config.db_bytes())
            .expect("db region in bounds");
        let mut state = BTreeMap::new();
        for key in 0..self.config.capacity {
            let base = (key * slot_size) as usize;
            let len = u32::from_le_bytes(db[base..base + 4].try_into().expect("4 bytes")) as usize;
            if len > 0 && len <= self.config.max_value as usize {
                state.insert(key, db[base + 4..base + 4 + len].to_vec());
            }
        }
        // 2. Replay unapplied WAL records (durable view): the 16-byte head
        //    pointer (ring head + next tx id) guards against stale records
        //    from previous ring laps.
        let head_raw = fab
            .mem(replica_node)
            .read_durable_vec(shared_base + layout.head_ptr_offset, 16)
            .expect("head ptr in bounds");
        let log = fab
            .mem(replica_node)
            .read_durable_vec(shared_base + layout.log_offset, layout.log_size)
            .expect("log region in bounds");
        for rec in recover_unapplied(&head_raw, &log) {
            for e in rec.entries {
                let key = e.offset / slot_size;
                let len = u32::from_le_bytes(e.data[..4].try_into().expect("4 bytes")) as usize;
                if len > 0 && len <= self.config.max_value as usize {
                    state.insert(key, e.data[4..4 + len].to_vec());
                }
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperloop::harness::{drive, fabric_sim, FabricSim};
    use hyperloop::{GroupConfig, HyperLoopGroup};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::{SimDuration, Simulation};

    const CLIENT: NodeId = NodeId(0);

    fn setup() -> (
        Simulation<FabricSim>,
        ReplicatedKv<hyperloop::GroupClient>,
        u64,
        Vec<hyperloop::ReplicaHandle>,
    ) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            13,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
        });
        sim.run();
        let shared_base = group.client.layout().shared_base;
        let kv = ReplicatedKv::new(group.client, KvConfig::default());
        (sim, kv, shared_base, group.replicas)
    }

    fn settle(
        sim: &mut Simulation<FabricSim>,
        kv: &mut ReplicatedKv<hyperloop::GroupClient>,
    ) -> Vec<CompletedPut> {
        sim.run();
        drive(sim, |ctx| kv.poll(ctx))
    }

    #[test]
    fn put_completes_and_reads_back() {
        let (mut sim, mut kv, _, _) = setup();
        drive(&mut sim, |ctx| kv.put(ctx, 7, b"seven".to_vec()).unwrap());
        let done = settle(&mut sim, &mut kv);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].key, 7);
        assert_eq!(kv.get(7), Some(&b"seven"[..]));
        assert_eq!(kv.get(8), None);
    }

    #[test]
    fn checkpoint_makes_replica_reads_possible() {
        let (mut sim, mut kv, shared_base, _) = setup();
        drive(&mut sim, |ctx| {
            kv.put(ctx, 3, b"snapshotted".to_vec()).unwrap()
        });
        settle(&mut sim, &mut kv);
        // Before checkpoint: replica DB region has nothing.
        let before = drive(&mut sim, |ctx| {
            kv.replica_get(ctx.fab, NodeId(2), shared_base, 3)
        });
        assert_eq!(before, None);
        drive(&mut sim, |ctx| {
            assert_eq!(kv.checkpoint(ctx, 16), 1);
        });
        settle(&mut sim, &mut kv);
        let after = drive(&mut sim, |ctx| {
            kv.replica_get(ctx.fab, NodeId(2), shared_base, 3)
        });
        assert_eq!(after.as_deref(), Some(&b"snapshotted"[..]));
        assert_eq!(kv.wal_backlog(), 0);
    }

    #[test]
    fn recovery_after_power_failure_replays_the_log() {
        let (mut sim, mut kv, shared_base, _) = setup();
        // Two checkpointed writes, one log-only write, one lost (unacked is
        // still durable in the log because append flushes).
        for (k, v) in [(1u64, "one"), (2, "two")] {
            drive(&mut sim, |ctx| {
                kv.put(ctx, k, v.as_bytes().to_vec()).unwrap()
            });
            settle(&mut sim, &mut kv);
        }
        drive(&mut sim, |ctx| {
            kv.checkpoint(ctx, 16);
        });
        settle(&mut sim, &mut kv);
        drive(&mut sim, |ctx| {
            kv.put(ctx, 5, b"log-only".to_vec()).unwrap()
        });
        settle(&mut sim, &mut kv);

        // Power-fail replica 3 and recover from its durable bytes alone.
        sim.model.fab.mem(NodeId(3)).power_failure();
        let state = drive(&mut sim, |ctx| {
            kv.recover_state(ctx.fab, NodeId(3), shared_base)
        });
        assert_eq!(state.get(&1).map(|v| v.as_slice()), Some(&b"one"[..]));
        assert_eq!(state.get(&2).map(|v| v.as_slice()), Some(&b"two"[..]));
        assert_eq!(state.get(&5).map(|v| v.as_slice()), Some(&b"log-only"[..]));
    }

    #[test]
    fn recovered_state_matches_memtable() {
        let (mut sim, mut kv, shared_base, mut replicas) = setup();
        // Off-critical-path maintenance: keep every replica's descriptor
        // ring topped up relative to completed work.
        fn maintain(
            sim: &mut Simulation<FabricSim>,
            kv: &mut ReplicatedKv<hyperloop::GroupClient>,
            replicas: &mut [hyperloop::ReplicaHandle],
        ) {
            let completed = kv.transport.completed();
            drive(sim, |ctx| {
                for r in replicas.iter_mut() {
                    let target = completed + 128;
                    if target > r.preposted() {
                        r.replenish(ctx, (target - r.preposted()) as u32);
                    }
                }
            });
        }
        for i in 0..200u64 {
            loop {
                let r = drive(&mut sim, |ctx| kv.put(ctx, i % 50, vec![i as u8; 64]));
                match r {
                    Ok(_) => break,
                    Err(KvError::Busy) => {
                        settle(&mut sim, &mut kv);
                        // Keep the log from filling: checkpoint.
                        drive(&mut sim, |ctx| {
                            kv.checkpoint(ctx, 4);
                        });
                        settle(&mut sim, &mut kv);
                        maintain(&mut sim, &mut kv, &mut replicas);
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            if i % 10 == 0 {
                settle(&mut sim, &mut kv);
                drive(&mut sim, |ctx| {
                    kv.checkpoint(ctx, 8);
                });
                settle(&mut sim, &mut kv);
                maintain(&mut sim, &mut kv, &mut replicas);
            }
        }
        settle(&mut sim, &mut kv);
        let state = drive(&mut sim, |ctx| {
            kv.recover_state(ctx.fab, NodeId(1), shared_base)
        });
        for (k, v) in state {
            assert_eq!(kv.get(k), Some(v.as_slice()), "key {k} diverged");
        }
    }

    #[test]
    fn volatile_mode_trades_durability_for_latency() {
        // RAMCloud-like semantics (paper §7): replication without the
        // interleaved gFLUSH. Acked writes are replicated but die with the
        // power.
        let mut sim = fabric_sim(
            3,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            23,
        );
        let nodes = [NodeId(1), NodeId(2)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
        });
        sim.run();
        let shared = group.client.layout().shared_base;
        let mut kv = ReplicatedKv::new(
            group.client,
            KvConfig {
                durable: false,
                ..KvConfig::default()
            },
        );
        let t0 = sim.now();
        drive(&mut sim, |ctx| {
            kv.put(ctx, 1, b"ephemeral".to_vec()).unwrap()
        });
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| kv.poll(ctx)).len(), 1);
        let volatile_latency = sim.now().since(t0);

        // The data IS on both replicas (coherent reads)...
        let layout = wal_probe(&kv);
        for &n in &nodes {
            let log = sim
                .model
                .fab
                .mem(n)
                .read_vec(shared + layout.0, 4096)
                .unwrap();
            assert!(
                log.windows(9).any(|w| w == b"ephemeral"),
                "replica {n} missing replicated bytes"
            );
        }
        // ...but a power failure erases it.
        sim.model.fab.mem(NodeId(2)).power_failure();
        let state = drive(&mut sim, |ctx| kv.recover_state(ctx.fab, NodeId(2), shared));
        assert!(state.is_empty(), "volatile write survived: {state:?}");

        // And it is faster than the durable path.
        assert!(
            volatile_latency < SimDuration::from_micros(15),
            "volatile put should skip the flush round-trips: {volatile_latency}"
        );
    }

    fn wal_probe<T>(kv: &ReplicatedKv<T>) -> (u64, u64) {
        (kv.wal.layout().log_offset, kv.wal.layout().log_size)
    }

    #[test]
    fn geometry_violations_rejected() {
        let (mut sim, mut kv, _, _) = setup();
        let cap = kv.config().capacity;
        let err = drive(&mut sim, |ctx| kv.put(ctx, cap, vec![1]).unwrap_err());
        assert_eq!(err, KvError::KeyOutOfRange);
        let err = drive(&mut sim, |ctx| kv.put(ctx, 0, vec![1; 2000]).unwrap_err());
        assert_eq!(err, KvError::ValueTooLarge);
    }

    #[test]
    fn scan_over_memtable() {
        let (mut sim, mut kv, _, _) = setup();
        for k in [5u64, 10, 15, 20] {
            drive(&mut sim, |ctx| kv.put(ctx, k, vec![k as u8]).unwrap());
            settle(&mut sim, &mut kv);
        }
        let hits = kv.scan(8, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 10);
        assert_eq!(hits[1].0, 15);
    }
}
