//! The sharded KV front end: many replicated stores behind one key router.
//!
//! Each shard is a full [`ReplicatedKv`] — its own replication chain, its
//! own WAL ring, its own memtable slice — and a [`ShardRouter`] decides
//! which shard owns each key. Appends therefore hit *per-shard* WALs: two
//! keys on different shards replicate down disjoint chains concurrently,
//! which is where the aggregate-throughput scaling of the shard-scaling
//! bench comes from.

use crate::{CompletedPut, KvError, ReplicatedKv};
use hyperloop::shard::{HashRouter, ShardAck, ShardId, ShardRouter};
use hyperloop::txn::{CommitMode, Txn, TxnLayout, TxnManager, TxnOutcome, TxnSite, TxnTransports};
use hyperloop::{GroupError, GroupOp, GroupTransport};
use rnicsim::{NicCtx, Payload};
use simcore::{Audit, Tracer};
use std::collections::HashMap;
use std::fmt;

/// Lock (and version) words per shard for the transaction layer. Keys are
/// striped onto lock ids (`key % TXN_LOCKS`), so unrelated keys may share a
/// lock — a false conflict, never a missed one.
pub const TXN_LOCKS: u32 = 64;

/// A multi-key transaction being assembled against a [`ShardedKv`]: the
/// protocol-level read/write sets plus the staged memtable values that are
/// installed only if the commit succeeds. Build with [`ShardedKv::txn`],
/// populate with [`ShardedKv::txn_get`] / [`ShardedKv::txn_put`], submit
/// with [`ShardedKv::txn_commit`].
#[derive(Debug)]
pub struct KvTxn {
    inner: Txn,
    staged: Vec<(u64, Vec<u8>)>,
}

impl KvTxn {
    /// The transaction's id.
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Number of staged writes.
    pub fn write_count(&self) -> usize {
        self.staged.len()
    }
}

/// Transaction machinery riding on a [`ShardedKv`]: the protocol state
/// machine plus the per-transaction staged values awaiting commit.
struct TxnState {
    mgr: TxnManager,
    staged: HashMap<u64, Vec<(u64, Vec<u8>)>>,
    acks: Vec<ShardAck>,
}

/// A sharded replicated KV store (client/primary side).
pub struct ShardedKv<T> {
    shards: Vec<ReplicatedKv<T>>,
    router: Box<dyn ShardRouter + Send>,
    txns: Option<TxnState>,
}

impl<T: fmt::Debug> fmt::Debug for ShardedKv<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedKv")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<T: GroupTransport> ShardedKv<T> {
    /// Builds the sharded store over already-wired per-shard stores (shard
    /// id = position) and a router.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<ReplicatedKv<T>>, router: Box<dyn ShardRouter + Send>) -> Self {
        assert!(!shards.is_empty(), "sharded store needs at least one shard");
        ShardedKv {
            shards,
            router,
            txns: None,
        }
    }

    /// Builds the sharded store with the default [`HashRouter`].
    pub fn with_hash_router(shards: Vec<ReplicatedKv<T>>) -> Self {
        ShardedKv::new(shards, Box::new(HashRouter))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard that owns `key`.
    pub fn route(&self, key: u64) -> ShardId {
        self.router.route(key, self.shard_count())
    }

    /// One shard's store.
    pub fn shard(&self, id: ShardId) -> &ReplicatedKv<T> {
        &self.shards[id.0 as usize]
    }

    /// One shard's store, mutably (maintenance, checkpoints, transport).
    pub fn shard_mut(&mut self, id: ShardId) -> &mut ReplicatedKv<T> {
        &mut self.shards[id.0 as usize]
    }

    /// Iterates `(id, store)` over all shards.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &ReplicatedKv<T>)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (ShardId(i as u32), s))
    }

    /// Total keys present across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Reads `key` from its shard's memtable.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.shards[self.route(key).0 as usize].get(key)
    }

    /// Durable replicated write: routes `key` to its shard and appends to
    /// that shard's WAL (the per-shard critical path). Returns the shard
    /// and the per-shard generation; completion arrives via
    /// [`ShardedKv::poll`].
    ///
    /// # Errors
    ///
    /// [`KvError`] on geometry violations or owning-shard back-pressure
    /// (other shards may still have room).
    pub fn put(
        &mut self,
        ctx: &mut NicCtx<'_>,
        key: u64,
        value: Vec<u8>,
    ) -> Result<(ShardId, u64), KvError> {
        let shard = self.route(key);
        let gen = self.shards[shard.0 as usize].put(ctx, key, value)?;
        Ok((shard, gen))
    }

    /// Collects completions from every shard, tagged with their shard.
    /// When transactions are enabled, acks belonging to the transaction
    /// layer are set aside for the next [`ShardedKv::pump_txns`] instead of
    /// being dropped.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<(ShardId, CompletedPut)> {
        let mut done = Vec::new();
        for (i, store) in self.shards.iter_mut().enumerate() {
            let shard = ShardId(i as u32);
            let (puts, foreign) = store.poll_raw(ctx);
            done.extend(puts.into_iter().map(|p| (shard, p)));
            if let Some(st) = self.txns.as_mut() {
                st.acks
                    .extend(foreign.into_iter().map(|ack| ShardAck { shard, ack }));
            }
        }
        done
    }

    /// Off-critical-path maintenance on every shard: applies up to
    /// `max_records_per_shard` backlogged WAL records each. Returns the
    /// total applied.
    pub fn checkpoint(&mut self, ctx: &mut NicCtx<'_>, max_records_per_shard: usize) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.checkpoint(ctx, max_records_per_shard))
            .sum()
    }

    /// Sum of WAL records appended but not yet checkpointed.
    pub fn wal_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.wal_backlog()).sum()
    }

    // --- Multi-key transactions -------------------------------------------

    /// Enables multi-key transactions with the given commit path and
    /// deterministic backoff seed. The lock and version words live in every
    /// shard's control area, right after the WAL head pointer — space the
    /// WAL never touches — so transactions and plain puts coexist on the
    /// same chains.
    ///
    /// # Panics
    ///
    /// Panics if transactions are already enabled, or if the control area
    /// is too small for [`TXN_LOCKS`] lock + version words.
    pub fn enable_txns(&mut self, mode: CommitMode, seed: u64) {
        assert!(self.txns.is_none(), "transactions already enabled");
        let layout = TxnLayout::standard(16, TXN_LOCKS);
        let control = self.shards[0].config().control_size;
        assert!(
            layout.version_offset(TXN_LOCKS - 1) + 8 <= control,
            "control area ({control} B) too small for {TXN_LOCKS} txn words"
        );
        self.txns = Some(TxnState {
            mgr: TxnManager::new(layout, mode, seed),
            staged: HashMap::new(),
            acks: Vec::new(),
        });
    }

    /// Attaches an auditor to the transaction manager (lifecycle probes:
    /// begin/lock/write/commit/abort).
    ///
    /// # Panics
    ///
    /// Panics if transactions are not enabled.
    pub fn set_txn_audit(&mut self, audit: Audit) {
        self.txn_state().mgr.set_audit(audit);
    }

    /// Attaches a tracer to the transaction manager: phase spans
    /// (acquire/validate/apply/release/…) per transaction plus parent-txn
    /// tags on every op the commit protocol issues. Observational only.
    ///
    /// # Panics
    ///
    /// Panics if transactions are not enabled.
    pub fn set_txn_tracer(&mut self, tracer: Tracer) {
        self.txn_state().mgr.set_tracer(tracer);
    }

    /// The transaction manager (counters, mode, cached versions).
    ///
    /// # Panics
    ///
    /// Panics if transactions are not enabled.
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txns.as_ref().expect("transactions not enabled").mgr
    }

    /// The transaction manager, mutably (tuning knobs such as
    /// [`TxnManager::set_max_lock_attempts`]).
    ///
    /// # Panics
    ///
    /// Panics if transactions are not enabled.
    pub fn txn_manager_mut(&mut self) -> &mut TxnManager {
        &mut self.txn_state().mgr
    }

    fn txn_state(&mut self) -> &mut TxnState {
        self.txns.as_mut().expect("transactions not enabled")
    }

    /// The lock site covering `key`: its owning shard and lock stripe.
    pub fn txn_site(&self, key: u64) -> TxnSite {
        TxnSite {
            shard: self.route(key),
            lock: (key % TXN_LOCKS as u64) as u32,
        }
    }

    /// Begins a new transaction.
    ///
    /// # Panics
    ///
    /// Panics if transactions are not enabled.
    pub fn txn(&mut self) -> KvTxn {
        KvTxn {
            inner: self.txn_state().mgr.begin(),
            staged: Vec::new(),
        }
    }

    /// Transactional read of `key`: returns the value as seen by `txn`
    /// (its own staged write if present, else the memtable) and records
    /// the key's current version in the transaction's conflict range.
    pub fn txn_get(&mut self, txn: &mut KvTxn, key: u64) -> Option<Vec<u8>> {
        let site = self.txn_site(key);
        let version = self.txn_state().mgr.version(site);
        txn.inner.read(site, version);
        txn.inner.tag_key(site, key);
        if let Some((_, v)) = txn.staged.iter().rev().find(|(k, _)| *k == key) {
            return Some(v.clone());
        }
        self.get(key).map(|v| v.to_vec())
    }

    /// Transactional write: buffers `value` for `key`. Nothing reaches the
    /// replicas or the memtable until the transaction commits. The durable
    /// bytes go straight to the key's database slot under the commit
    /// protocol's locks (not through the WAL — the slot write is itself
    /// flushed, so recovery sees committed transactional data).
    ///
    /// # Errors
    ///
    /// [`KvError`] on geometry violations.
    pub fn txn_put(&mut self, txn: &mut KvTxn, key: u64, value: Vec<u8>) -> Result<(), KvError> {
        let store = &self.shards[self.route(key).0 as usize];
        if key >= store.config().capacity {
            return Err(KvError::KeyOutOfRange);
        }
        if value.len() as u64 > store.config().max_value {
            return Err(KvError::ValueTooLarge);
        }
        let slot = store.wal().layout().db_offset + key * store.config().slot_size();
        let mut slot_bytes = (value.len() as u32).to_le_bytes().to_vec();
        slot_bytes.extend_from_slice(&value);
        let site = self.txn_site(key);
        txn.inner.write(site, slot, Payload::copy_from(&slot_bytes));
        txn.inner.tag_key(site, key);
        txn.staged.push((key, value));
        Ok(())
    }

    /// Submits `txn` for commit; the outcome arrives from
    /// [`ShardedKv::pump_txns`]. Staged values are installed into the
    /// memtables only if the commit protocol succeeds.
    pub fn txn_commit(&mut self, txn: KvTxn) -> u64 {
        let st = self.txn_state();
        let id = st.mgr.commit(txn.inner);
        st.staged.insert(id, txn.staged);
        id
    }

    /// Drives in-flight transactions one tick: consumes the foreign acks
    /// gathered by [`ShardedKv::poll`], steps the commit state machines,
    /// and installs committed staged values into the owning memtables.
    /// Call each driver tick after `poll`.
    ///
    /// # Panics
    ///
    /// Panics if transactions are not enabled.
    pub fn pump_txns(&mut self, ctx: &mut NicCtx<'_>) -> Vec<(u64, TxnOutcome)> {
        let mut st = self.txns.take().expect("transactions not enabled");
        let acks = std::mem::take(&mut st.acks);
        let done = st.mgr.pump(ctx, self, &acks);
        for (id, outcome) in &done {
            let staged = st.staged.remove(id).unwrap_or_default();
            if *outcome == TxnOutcome::Committed {
                for (key, value) in staged {
                    let shard = self.route(key);
                    self.shards[shard.0 as usize].install(key, value);
                }
            }
        }
        self.txns = Some(st);
        done
    }
}

impl<T: GroupTransport> TxnTransports for ShardedKv<T> {
    fn txn_shard_count(&self) -> u32 {
        self.shard_count()
    }

    fn txn_group_size(&self, shard: ShardId) -> u32 {
        self.shards[shard.0 as usize].transport.group_size()
    }

    fn txn_can_issue(&self, shard: ShardId) -> bool {
        self.shards[shard.0 as usize].transport.can_issue()
    }

    fn txn_issue(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError> {
        self.shards[shard.0 as usize].transport.issue(ctx, op)
    }
}

impl ShardedKv<hyperloop::GroupClient> {
    /// Moves `shard`'s replication chain to `new_chain`, keeping the
    /// store's logical state (memtable, WAL cursors, pending maps): aligns
    /// the new chain's allocators, wires a fresh [`HyperLoopGroup`], seeds
    /// every new member with the shard's WAL-sized region image read from
    /// `source` (a live member of the old chain), and swaps the transport.
    /// Returns the retired client and the new chain's replica handles —
    /// stop replenishing the old chain's handles.
    ///
    /// This is the *quiesced* app-level move (host-driven catch-up copy,
    /// the chain-repair recipe): the migrating shard must have nothing in
    /// flight. Other shards may keep ops in flight throughout — the move
    /// never touches them. For the live pause/copy/replay state machine,
    /// see `hyperloop::migrate::migrate_shard`. Run the simulation to
    /// quiescence after this call before issuing on the new chain, exactly
    /// as after setup.
    ///
    /// # Panics
    ///
    /// Panics if the shard still has ops in flight (settle it first: acked
    /// writes may never be dropped), or on the same layout violations as
    /// [`HyperLoopGroup::setup`].
    ///
    /// [`HyperLoopGroup`]: hyperloop::HyperLoopGroup
    /// [`HyperLoopGroup::setup`]: hyperloop::HyperLoopGroup::setup
    pub fn rebalance(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        source: netsim::NodeId,
        new_chain: &[netsim::NodeId],
    ) -> (hyperloop::GroupClient, Vec<hyperloop::ReplicaHandle>) {
        let store = &mut self.shards[shard.0 as usize];
        assert_eq!(
            store.transport.in_flight(),
            0,
            "rebalance of {shard} with ops in flight"
        );
        let cfg = store.transport.config();
        let old_base = store.transport.layout().shared_base;
        let client_node = store.transport.node();
        let span = store.wal().copy_span();

        let cursor = new_chain
            .iter()
            .map(|&n| ctx.fab.alloc_cursor(n))
            .max()
            .expect("non-empty chain");
        for &n in new_chain {
            ctx.fab.align_allocator(n, cursor);
        }
        let mut group = hyperloop::HyperLoopGroup::setup(ctx, client_node, new_chain, cfg);
        group.client.set_tracer(store.transport.tracer());
        let new_base = group.client.layout().shared_base;

        let image = ctx
            .fab
            .mem(source)
            .read_vec(old_base, span)
            .expect("source region in bounds");
        for &n in new_chain {
            ctx.fab
                .mem(n)
                .write_durable(new_base, &image)
                .expect("seed copy in bounds");
        }
        let old = std::mem::replace(&mut store.transport, group.client);
        (old, group.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvConfig;
    use hyperloop::harness::{drive, fabric_sim, FabricSim};
    use hyperloop::{GroupConfig, HyperLoopGroup};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    const CLIENT: NodeId = NodeId(0);

    /// One client node plus `n_shards` disjoint 2-replica chains, each
    /// carrying its own `ReplicatedKv`.
    fn setup(n_shards: u32) -> (Simulation<FabricSim>, ShardedKv<hyperloop::GroupClient>) {
        let mut sim = fabric_sim(
            1 + 2 * n_shards,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            29,
        );
        let mut stores = Vec::new();
        for s in 0..n_shards {
            let nodes = [NodeId(1 + 2 * s), NodeId(2 + 2 * s)];
            let group = drive(&mut sim, |ctx| {
                HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
            });
            sim.run();
            stores.push(ReplicatedKv::new(group.client, KvConfig::default()));
        }
        (sim, ShardedKv::with_hash_router(stores))
    }

    #[test]
    fn puts_spread_over_shards_and_complete() {
        let (mut sim, mut kv) = setup(4);
        let n_keys = 32u64;
        let mut issued_on = vec![0u64; 4];
        for key in 0..n_keys {
            let (shard, _) = drive(&mut sim, |ctx| {
                kv.put(ctx, key, vec![key as u8; 32]).unwrap()
            });
            issued_on[shard.0 as usize] += 1;
        }
        sim.run();
        let done = drive(&mut sim, |ctx| kv.poll(ctx));
        assert_eq!(done.len(), n_keys as usize, "every put acks");
        // Per-shard ack counts equal per-shard issue counts.
        let mut acked_on = vec![0u64; 4];
        for (shard, put) in &done {
            assert_eq!(kv.route(put.key), *shard, "ack came from the wrong shard");
            acked_on[shard.0 as usize] += 1;
        }
        assert_eq!(acked_on, issued_on);
        assert!(
            issued_on.iter().all(|&c| c > 0),
            "32 hashed keys should hit all 4 shards: {issued_on:?}"
        );
        // Reads route to the same shard the write went to.
        for key in 0..n_keys {
            assert_eq!(kv.get(key), Some(&vec![key as u8; 32][..]), "key {key}");
        }
        assert_eq!(kv.len(), n_keys as usize);
    }

    #[test]
    fn shard_backpressure_is_per_shard() {
        let (mut sim, mut kv) = setup(2);
        // Fill one shard's window (16) with keys that all route to it.
        let victim = kv.route(0);
        let mut stuffed = 0;
        let mut key = 0u64;
        while stuffed < 16 {
            if kv.route(key) == victim {
                drive(&mut sim, |ctx| kv.put(ctx, key, vec![1; 16]).unwrap());
                stuffed += 1;
            }
            key += 1;
        }
        // The victim shard refuses; the other shard still accepts.
        let mut k_victim = key;
        while kv.route(k_victim) != victim {
            k_victim += 1;
        }
        let mut k_other = key;
        while kv.route(k_other) == victim {
            k_other += 1;
        }
        drive(&mut sim, |ctx| {
            assert_eq!(
                kv.put(ctx, k_victim, vec![2; 16]).unwrap_err(),
                KvError::Busy
            );
            kv.put(ctx, k_other, vec![3; 16]).unwrap();
        });
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| kv.poll(ctx)).len(), 17);
    }

    /// Pumps until every submitted transaction reaches an outcome.
    fn drive_txn(
        sim: &mut Simulation<FabricSim>,
        kv: &mut ShardedKv<hyperloop::GroupClient>,
    ) -> Vec<(u64, TxnOutcome)> {
        let mut out = Vec::new();
        for _ in 0..400 {
            sim.run();
            let fin = drive(sim, |ctx| {
                kv.poll(ctx);
                kv.pump_txns(ctx)
            });
            out.extend(fin);
            if kv.txn_manager().in_flight() == 0 {
                break;
            }
        }
        assert_eq!(kv.txn_manager().in_flight(), 0, "transactions wedged");
        out
    }

    #[test]
    fn txn_commit_spans_shards_atomically() {
        let (mut sim, mut kv) = setup(2);
        kv.enable_txns(CommitMode::Locking, 17);
        let audit = simcore::Audit::standard();
        kv.set_txn_audit(audit.clone());

        // Two keys on different shards.
        let (mut a, mut b) = (0u64, 1u64);
        while kv.route(a) == kv.route(b) {
            b += 1;
        }
        if kv.route(a) > kv.route(b) {
            std::mem::swap(&mut a, &mut b);
        }

        let mut t = kv.txn();
        assert_eq!(kv.txn_get(&mut t, a), None);
        kv.txn_put(&mut t, a, b"left".to_vec()).unwrap();
        kv.txn_put(&mut t, b, b"right".to_vec()).unwrap();
        // Read-your-writes inside the transaction; memtable untouched.
        assert_eq!(kv.txn_get(&mut t, a).as_deref(), Some(&b"left"[..]));
        assert_eq!(kv.get(a), None);
        let id = kv.txn_commit(t);

        let done = drive_txn(&mut sim, &mut kv);
        assert_eq!(done, vec![(id, TxnOutcome::Committed)]);
        assert_eq!(kv.get(a), Some(&b"left"[..]));
        assert_eq!(kv.get(b), Some(&b"right"[..]));
        // Committed bytes are already durable in every replica's database
        // region (txn applies write slots directly, no checkpoint needed).
        for (key, val) in [(a, &b"left"[..]), (b, &b"right"[..])] {
            let shard = kv.route(key);
            let node = NodeId(1 + 2 * shard.0);
            let base = kv.shard(shard).transport.layout().shared_base;
            let got = drive(&mut sim, |ctx| {
                kv.shard(shard).replica_get(ctx.fab, node, base, key)
            });
            assert_eq!(got.as_deref(), Some(val), "key {key} not durable");
        }
        assert_eq!(audit.violation_count(), 0, "{}", audit.report());
    }

    #[test]
    fn stripe_collisions_are_metered_as_false_conflicts() {
        let (mut sim, mut kv) = setup(2);
        kv.enable_txns(CommitMode::Locking, 23);
        kv.txn_manager_mut().set_max_lock_attempts(16);

        // Same-key contention: a true conflict, never a false one.
        let k = 0u64;
        let mut t1 = kv.txn();
        kv.txn_put(&mut t1, k, b"one".to_vec()).unwrap();
        let mut t2 = kv.txn();
        kv.txn_put(&mut t2, k, b"two".to_vec()).unwrap();
        kv.txn_commit(t1);
        kv.txn_commit(t2);
        let done = drive_txn(&mut sim, &mut kv);
        assert!(done.iter().all(|(_, o)| *o == TxnOutcome::Committed));
        let site = kv.txn_site(k);
        let c = *kv.txn_manager().contention().get(&site).expect("metered");
        assert!(c.conflicts >= 1, "{c:?}");
        assert_eq!(c.false_conflicts, 0, "same key is a true conflict: {c:?}");

        // Distinct keys engineered onto one stripe: adding multiples of
        // TXN_LOCKS keeps the lock id; walk until the route matches too.
        let k1 = 1u64;
        let mut k2 = k1 + TXN_LOCKS as u64;
        while kv.route(k2) != kv.route(k1) {
            k2 += TXN_LOCKS as u64;
        }
        assert_ne!(k1, k2);
        assert_eq!(kv.txn_site(k1), kv.txn_site(k2), "engineered collision");
        let mut t1 = kv.txn();
        kv.txn_put(&mut t1, k1, b"aaa".to_vec()).unwrap();
        let mut t2 = kv.txn();
        kv.txn_put(&mut t2, k2, b"bbb".to_vec()).unwrap();
        kv.txn_commit(t1);
        kv.txn_commit(t2);
        let done = drive_txn(&mut sim, &mut kv);
        assert!(done.iter().all(|(_, o)| *o == TxnOutcome::Committed));
        let site = kv.txn_site(k1);
        let c = *kv.txn_manager().contention().get(&site).expect("metered");
        assert!(c.conflicts >= 1, "{c:?}");
        assert!(
            c.false_conflicts >= 1 && c.false_conflicts <= c.conflicts,
            "distinct keys on one stripe must meter false conflicts: {c:?}"
        );
    }

    #[test]
    fn txn_geometry_violations_rejected_before_commit() {
        let (mut sim, mut kv) = setup(1);
        kv.enable_txns(CommitMode::Locking, 1);
        let mut t = kv.txn();
        let cap = kv.shard(ShardId(0)).config().capacity;
        assert_eq!(
            kv.txn_put(&mut t, cap, vec![1]).unwrap_err(),
            KvError::KeyOutOfRange
        );
        assert_eq!(
            kv.txn_put(&mut t, 0, vec![1; 2000]).unwrap_err(),
            KvError::ValueTooLarge
        );
        // Nothing staged: the empty txn still commits cleanly.
        let id = kv.txn_commit(t);
        assert_eq!(
            drive_txn(&mut sim, &mut kv),
            vec![(id, TxnOutcome::Committed)]
        );
    }

    /// The lost-update anomaly: two read-modify-write clients interleaved
    /// on the plain put path lose one increment; the same interleaving
    /// through the transaction API keeps both.
    #[test]
    fn interleaved_rmw_loses_update_without_txns_and_keeps_it_with() {
        let counter = |v: Option<&[u8]>| -> u64 {
            v.map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0)
        };

        // Plain path: both clients read before either writes.
        let (mut sim, mut kv) = setup(2);
        let key = 9u64;
        let c1 = counter(kv.get(key));
        let c2 = counter(kv.get(key));
        drive(&mut sim, |ctx| {
            kv.put(ctx, key, (c1 + 1).to_le_bytes().to_vec()).unwrap();
            kv.put(ctx, key, (c2 + 1).to_le_bytes().to_vec()).unwrap();
        });
        sim.run();
        drive(&mut sim, |ctx| kv.poll(ctx));
        assert_eq!(
            counter(kv.get(key)),
            1,
            "plain puts lose one of the two increments"
        );

        // Transactional path, same interleaving: one commit validates-fails
        // and retries with a fresh read; no increment is lost.
        let (mut sim, mut kv) = setup(2);
        kv.enable_txns(CommitMode::Optimistic, 23);
        let audit = simcore::Audit::standard();
        kv.set_txn_audit(audit.clone());

        let mut t1 = kv.txn();
        let v1 = counter(kv.txn_get(&mut t1, key).as_deref());
        let mut t2 = kv.txn();
        let v2 = counter(kv.txn_get(&mut t2, key).as_deref());
        kv.txn_put(&mut t1, key, (v1 + 1).to_le_bytes().to_vec())
            .unwrap();
        kv.txn_put(&mut t2, key, (v2 + 1).to_le_bytes().to_vec())
            .unwrap();
        let id1 = kv.txn_commit(t1);
        let id2 = kv.txn_commit(t2);
        let mut done = drive_txn(&mut sim, &mut kv);
        done.sort();
        // Exactly one of the two conflicting commits aborts.
        let aborted: Vec<u64> = done
            .iter()
            .filter(|(_, o)| *o == TxnOutcome::Aborted)
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(aborted.len(), 1, "one RMW must lose validation: {done:?}");
        assert!(aborted[0] == id1 || aborted[0] == id2);

        // The loser retries FDB-style: fresh read, fresh commit.
        let mut retry = kv.txn();
        let v = counter(kv.txn_get(&mut retry, key).as_deref());
        kv.txn_put(&mut retry, key, (v + 1).to_le_bytes().to_vec())
            .unwrap();
        let rid = kv.txn_commit(retry);
        assert_eq!(
            drive_txn(&mut sim, &mut kv),
            vec![(rid, TxnOutcome::Committed)]
        );

        assert_eq!(
            counter(kv.get(key)),
            2,
            "txn path must keep both increments"
        );
        assert_eq!(kv.txn_manager().committed, 2);
        assert_eq!(kv.txn_manager().aborted, 1);
        assert_eq!(audit.violation_count(), 0, "{}", audit.report());
    }

    #[test]
    fn single_shard_degenerates_to_plain_store() {
        let (mut sim, mut kv) = setup(1);
        for key in [0u64, 7, 99] {
            let (shard, _) = drive(&mut sim, |ctx| kv.put(ctx, key, b"x".to_vec()).unwrap());
            assert_eq!(shard, ShardId(0));
        }
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| kv.poll(ctx)).len(), 3);
    }
}
