//! The sharded KV front end: many replicated stores behind one key router.
//!
//! Each shard is a full [`ReplicatedKv`] — its own replication chain, its
//! own WAL ring, its own memtable slice — and a [`ShardRouter`] decides
//! which shard owns each key. Appends therefore hit *per-shard* WALs: two
//! keys on different shards replicate down disjoint chains concurrently,
//! which is where the aggregate-throughput scaling of the shard-scaling
//! bench comes from.

use crate::{CompletedPut, KvError, ReplicatedKv};
use hyperloop::shard::{HashRouter, ShardId, ShardRouter};
use hyperloop::GroupTransport;
use rnicsim::NicCtx;
use std::fmt;

/// A sharded replicated KV store (client/primary side).
pub struct ShardedKv<T> {
    shards: Vec<ReplicatedKv<T>>,
    router: Box<dyn ShardRouter + Send>,
}

impl<T: fmt::Debug> fmt::Debug for ShardedKv<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedKv")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<T: GroupTransport> ShardedKv<T> {
    /// Builds the sharded store over already-wired per-shard stores (shard
    /// id = position) and a router.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<ReplicatedKv<T>>, router: Box<dyn ShardRouter + Send>) -> Self {
        assert!(!shards.is_empty(), "sharded store needs at least one shard");
        ShardedKv { shards, router }
    }

    /// Builds the sharded store with the default [`HashRouter`].
    pub fn with_hash_router(shards: Vec<ReplicatedKv<T>>) -> Self {
        ShardedKv::new(shards, Box::new(HashRouter))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard that owns `key`.
    pub fn route(&self, key: u64) -> ShardId {
        self.router.route(key, self.shard_count())
    }

    /// One shard's store.
    pub fn shard(&self, id: ShardId) -> &ReplicatedKv<T> {
        &self.shards[id.0 as usize]
    }

    /// One shard's store, mutably (maintenance, checkpoints, transport).
    pub fn shard_mut(&mut self, id: ShardId) -> &mut ReplicatedKv<T> {
        &mut self.shards[id.0 as usize]
    }

    /// Iterates `(id, store)` over all shards.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &ReplicatedKv<T>)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (ShardId(i as u32), s))
    }

    /// Total keys present across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Reads `key` from its shard's memtable.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.shards[self.route(key).0 as usize].get(key)
    }

    /// Durable replicated write: routes `key` to its shard and appends to
    /// that shard's WAL (the per-shard critical path). Returns the shard
    /// and the per-shard generation; completion arrives via
    /// [`ShardedKv::poll`].
    ///
    /// # Errors
    ///
    /// [`KvError`] on geometry violations or owning-shard back-pressure
    /// (other shards may still have room).
    pub fn put(
        &mut self,
        ctx: &mut NicCtx<'_>,
        key: u64,
        value: Vec<u8>,
    ) -> Result<(ShardId, u64), KvError> {
        let shard = self.route(key);
        let gen = self.shards[shard.0 as usize].put(ctx, key, value)?;
        Ok((shard, gen))
    }

    /// Collects completions from every shard, tagged with their shard.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<(ShardId, CompletedPut)> {
        let mut done = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            done.extend(shard.poll(ctx).into_iter().map(|p| (ShardId(i as u32), p)));
        }
        done
    }

    /// Off-critical-path maintenance on every shard: applies up to
    /// `max_records_per_shard` backlogged WAL records each. Returns the
    /// total applied.
    pub fn checkpoint(&mut self, ctx: &mut NicCtx<'_>, max_records_per_shard: usize) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.checkpoint(ctx, max_records_per_shard))
            .sum()
    }

    /// Sum of WAL records appended but not yet checkpointed.
    pub fn wal_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.wal_backlog()).sum()
    }
}

impl ShardedKv<hyperloop::GroupClient> {
    /// Moves `shard`'s replication chain to `new_chain`, keeping the
    /// store's logical state (memtable, WAL cursors, pending maps): aligns
    /// the new chain's allocators, wires a fresh [`HyperLoopGroup`], seeds
    /// every new member with the shard's WAL-sized region image read from
    /// `source` (a live member of the old chain), and swaps the transport.
    /// Returns the retired client and the new chain's replica handles —
    /// stop replenishing the old chain's handles.
    ///
    /// This is the *quiesced* app-level move (host-driven catch-up copy,
    /// the chain-repair recipe): the migrating shard must have nothing in
    /// flight. Other shards may keep ops in flight throughout — the move
    /// never touches them. For the live pause/copy/replay state machine,
    /// see `hyperloop::migrate::migrate_shard`. Run the simulation to
    /// quiescence after this call before issuing on the new chain, exactly
    /// as after setup.
    ///
    /// # Panics
    ///
    /// Panics if the shard still has ops in flight (settle it first: acked
    /// writes may never be dropped), or on the same layout violations as
    /// [`HyperLoopGroup::setup`].
    ///
    /// [`HyperLoopGroup`]: hyperloop::HyperLoopGroup
    /// [`HyperLoopGroup::setup`]: hyperloop::HyperLoopGroup::setup
    pub fn rebalance(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        source: netsim::NodeId,
        new_chain: &[netsim::NodeId],
    ) -> (hyperloop::GroupClient, Vec<hyperloop::ReplicaHandle>) {
        let store = &mut self.shards[shard.0 as usize];
        assert_eq!(
            store.transport.in_flight(),
            0,
            "rebalance of {shard} with ops in flight"
        );
        let cfg = store.transport.config();
        let old_base = store.transport.layout().shared_base;
        let client_node = store.transport.node();
        let span = store.wal().copy_span();

        let cursor = new_chain
            .iter()
            .map(|&n| ctx.fab.alloc_cursor(n))
            .max()
            .expect("non-empty chain");
        for &n in new_chain {
            ctx.fab.align_allocator(n, cursor);
        }
        let mut group = hyperloop::HyperLoopGroup::setup(ctx, client_node, new_chain, cfg);
        group.client.set_tracer(store.transport.tracer());
        let new_base = group.client.layout().shared_base;

        let image = ctx
            .fab
            .mem(source)
            .read_vec(old_base, span)
            .expect("source region in bounds");
        for &n in new_chain {
            ctx.fab
                .mem(n)
                .write_durable(new_base, &image)
                .expect("seed copy in bounds");
        }
        let old = std::mem::replace(&mut store.transport, group.client);
        (old, group.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvConfig;
    use hyperloop::harness::{drive, fabric_sim, FabricSim};
    use hyperloop::{GroupConfig, HyperLoopGroup};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    const CLIENT: NodeId = NodeId(0);

    /// One client node plus `n_shards` disjoint 2-replica chains, each
    /// carrying its own `ReplicatedKv`.
    fn setup(n_shards: u32) -> (Simulation<FabricSim>, ShardedKv<hyperloop::GroupClient>) {
        let mut sim = fabric_sim(
            1 + 2 * n_shards,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            29,
        );
        let mut stores = Vec::new();
        for s in 0..n_shards {
            let nodes = [NodeId(1 + 2 * s), NodeId(2 + 2 * s)];
            let group = drive(&mut sim, |ctx| {
                HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
            });
            sim.run();
            stores.push(ReplicatedKv::new(group.client, KvConfig::default()));
        }
        (sim, ShardedKv::with_hash_router(stores))
    }

    #[test]
    fn puts_spread_over_shards_and_complete() {
        let (mut sim, mut kv) = setup(4);
        let n_keys = 32u64;
        let mut issued_on = vec![0u64; 4];
        for key in 0..n_keys {
            let (shard, _) = drive(&mut sim, |ctx| {
                kv.put(ctx, key, vec![key as u8; 32]).unwrap()
            });
            issued_on[shard.0 as usize] += 1;
        }
        sim.run();
        let done = drive(&mut sim, |ctx| kv.poll(ctx));
        assert_eq!(done.len(), n_keys as usize, "every put acks");
        // Per-shard ack counts equal per-shard issue counts.
        let mut acked_on = vec![0u64; 4];
        for (shard, put) in &done {
            assert_eq!(kv.route(put.key), *shard, "ack came from the wrong shard");
            acked_on[shard.0 as usize] += 1;
        }
        assert_eq!(acked_on, issued_on);
        assert!(
            issued_on.iter().all(|&c| c > 0),
            "32 hashed keys should hit all 4 shards: {issued_on:?}"
        );
        // Reads route to the same shard the write went to.
        for key in 0..n_keys {
            assert_eq!(kv.get(key), Some(&vec![key as u8; 32][..]), "key {key}");
        }
        assert_eq!(kv.len(), n_keys as usize);
    }

    #[test]
    fn shard_backpressure_is_per_shard() {
        let (mut sim, mut kv) = setup(2);
        // Fill one shard's window (16) with keys that all route to it.
        let victim = kv.route(0);
        let mut stuffed = 0;
        let mut key = 0u64;
        while stuffed < 16 {
            if kv.route(key) == victim {
                drive(&mut sim, |ctx| kv.put(ctx, key, vec![1; 16]).unwrap());
                stuffed += 1;
            }
            key += 1;
        }
        // The victim shard refuses; the other shard still accepts.
        let mut k_victim = key;
        while kv.route(k_victim) != victim {
            k_victim += 1;
        }
        let mut k_other = key;
        while kv.route(k_other) == victim {
            k_other += 1;
        }
        drive(&mut sim, |ctx| {
            assert_eq!(
                kv.put(ctx, k_victim, vec![2; 16]).unwrap_err(),
                KvError::Busy
            );
            kv.put(ctx, k_other, vec![3; 16]).unwrap();
        });
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| kv.poll(ctx)).len(), 17);
    }

    #[test]
    fn single_shard_degenerates_to_plain_store() {
        let (mut sim, mut kv) = setup(1);
        for key in [0u64, 7, 99] {
            let (shard, _) = drive(&mut sim, |ctx| kv.put(ctx, key, b"x".to_vec()).unwrap());
            assert_eq!(shard, ShardId(0));
        }
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| kv.poll(ctx)).len(), 3);
    }
}
