//! Criterion benches over the group-primitive data paths (simulator
//! wall-clock per simulated operation). One group per evaluation artifact:
//! Fig. 8 (gWRITE / gMEMCPY), Table 2 (gCAS), Fig. 9 (pipelined gWRITE
//! throughput), plus the fan-out ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperloop::fanout::FanoutGroup;
use hyperloop::harness::{drive, fabric_sim};
use hyperloop::{ExecuteMap, GroupConfig, GroupOp, HyperLoopGroup};
use netsim::{FabricConfig, NodeId};
use rnicsim::NicConfig;

fn hl_chain_ops(op_of: impl Fn(u64) -> GroupOp, n_ops: u64) {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        1,
    );
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let mut group = drive(&mut sim, |fab, now, out| {
        HyperLoopGroup::setup(
            fab,
            NodeId(0),
            &nodes,
            GroupConfig {
                prepost_depth: 1024,
                ..GroupConfig::default()
            },
            now,
            out,
        )
    });
    sim.run();
    let mut done = 0u64;
    let mut next = 0u64;
    while done < n_ops {
        drive(&mut sim, |fab, now, out| {
            while group.client.can_issue() && next < n_ops {
                group
                    .client
                    .issue(fab, now, out, op_of(next))
                    .expect("window checked");
                next += 1;
            }
        });
        sim.run();
        done += drive(&mut sim, |fab, now, out| group.client.poll(fab, now, out)).len() as u64;
    }
    assert_eq!(sim.model.fab.stats().errors, 0);
}

fn bench_fig8_gwrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8a_gwrite_chain");
    g.sample_size(10);
    for size in [128u64, 1024, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                hl_chain_ops(
                    |i| GroupOp::Write {
                        offset: (i % 16) * 8192,
                        data: vec![7; size as usize],
                        flush: true,
                    },
                    200,
                )
            });
        });
    }
    g.finish();
}

fn bench_fig8_gmemcpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8b_gmemcpy_chain");
    g.sample_size(10);
    for size in [128u64, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                hl_chain_ops(
                    |i| GroupOp::Memcpy {
                        src: (i % 16) * 8192,
                        dst: (2 << 20) + (i % 16) * 8192,
                        len: size,
                        flush: true,
                    },
                    200,
                )
            });
        });
    }
    g.finish();
}

fn bench_table2_gcas(c: &mut Criterion) {
    c.bench_function("table2_gcas_chain", |b| {
        b.iter(|| {
            hl_chain_ops(
                |i| GroupOp::Cas {
                    offset: 0,
                    compare: i,
                    swap: i + 1,
                    execute: ExecuteMap::all(3),
                },
                200,
            )
        });
    });
}

fn bench_fig9_pipeline(c: &mut Criterion) {
    c.bench_function("fig9_gwrite_pipelined_64k", |b| {
        b.iter(|| {
            hl_chain_ops(
                |i| GroupOp::Write {
                    offset: (i % 16) * 65536,
                    data: vec![1; 65536],
                    flush: false,
                },
                100,
            )
        });
    });
}

fn bench_fanout_ablation(c: &mut Criterion) {
    c.bench_function("ablation_fanout_writes", |b| {
        b.iter(|| {
            let mut sim = fabric_sim(
                5,
                64 << 20,
                NicConfig::default(),
                FabricConfig::default(),
                2,
            );
            let backups = [NodeId(2), NodeId(3), NodeId(4)];
            let mut group = drive(&mut sim, |fab, now, out| {
                FanoutGroup::setup(
                    fab,
                    NodeId(0),
                    NodeId(1),
                    &backups,
                    GroupConfig::default(),
                    now,
                    out,
                )
            });
            sim.run();
            let mut done = 0;
            while done < 100 {
                drive(&mut sim, |fab, now, out| {
                    while group.client.can_issue() {
                        group.client.write(fab, now, out, 0, &[5; 1024], true);
                    }
                });
                sim.run();
                done += drive(&mut sim, |fab, now, out| group.client.poll(fab, now, out)).len();
                drive(&mut sim, |fab, now, out| {
                    group.primary.replenish(fab, 16, now, out);
                });
            }
        });
    });
}

criterion_group!(
    benches,
    bench_fig8_gwrite,
    bench_fig8_gmemcpy,
    bench_table2_gcas,
    bench_fig9_pipeline,
    bench_fanout_ablation
);
criterion_main!(benches);
