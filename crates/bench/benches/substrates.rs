//! Criterion benches over the substrate building blocks: event queue,
//! histogram, PRNG/zipfian, WQE codec, WAL record codec, CPU scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use cpusched::{CpuEffect, CpuScheduler, ProcKind, SchedConfig, TaskId};
use rnicsim::{Opcode, Wqe};
use simcore::dist::{KeyChooser, ScrambledZipfian};
use simcore::{EventQueue, Histogram, Outbox, SimDuration, SimRng, SimTime};
use walog::LogRecord;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos(i * 37 % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record_10k", |b| {
        let mut rng = SimRng::new(5);
        b.iter(|| {
            let mut h = Histogram::new();
            for _ in 0..10_000 {
                h.record(SimDuration::from_nanos(rng.gen_range(100..10_000_000)));
            }
            h.p99()
        });
    });
}

fn bench_zipfian(c: &mut Criterion) {
    c.bench_function("scrambled_zipfian_10k", |b| {
        let mut z = ScrambledZipfian::new(1_000_000);
        let mut rng = SimRng::new(9);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(z.next_key(&mut rng));
            }
            acc
        });
    });
}

fn bench_wqe_codec(c: &mut Criterion) {
    let w = Wqe {
        opcode: Opcode::Write,
        local_addr: 0xAAAA,
        len: 4096,
        remote_addr: 0xBBBB,
        ..Wqe::default()
    };
    c.bench_function("wqe_encode_decode", |b| {
        b.iter(|| {
            let bytes = w.encode();
            Wqe::decode(&bytes).unwrap()
        });
    });
}

fn bench_wal_codec(c: &mut Criterion) {
    let rec = LogRecord::single(7, 4096, vec![3; 1024]);
    c.bench_function("wal_record_encode_decode_1k", |b| {
        b.iter(|| {
            let bytes = rec.encode();
            LogRecord::decode(&bytes).unwrap()
        });
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("cpusched_1k_tasks", |b| {
        b.iter(|| {
            let mut sched = CpuScheduler::new(4, SchedConfig::default(), SimRng::new(1));
            let mut out = Outbox::new();
            let p = sched.spawn(ProcKind::EventDriven, SimTime::ZERO, &mut out);
            let mut q: EventQueue<cpusched::CpuEvent> = EventQueue::new();
            for i in 0..1000 {
                sched.submit(p, TaskId(i), SimDuration::from_micros(2), q.now(), &mut out);
                for (d, eff) in out.drain() {
                    if let CpuEffect::Internal(ev) = eff {
                        q.push_after(d, ev);
                    }
                }
                while let Some((now, ev)) = q.pop() {
                    sched.handle(now, ev, &mut out);
                    for (d, eff) in out.drain() {
                        if let CpuEffect::Internal(ev) = eff {
                            q.push(now + d, ev);
                        }
                    }
                }
            }
            sched.stats().tasks_completed
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_histogram,
    bench_zipfian,
    bench_wqe_codec,
    bench_wal_codec,
    bench_scheduler
);
criterion_main!(benches);
