//! The transaction-mix benchmark: multi-key transactions vs contention.
//!
//! One client machine drives a 4-shard [`ShardedKv`] with a mix of YCSB
//! workload-F read-modify-write transactions and two-key [`Transfer`]
//! transactions (distinct zipfian accounts, often on different shards),
//! through both commit paths of the transaction layer: **locking**
//! (paper-§5 gCAS write locks in global key order) and **optimistic**
//! (FDB-style validate-then-commit over version words). The zipfian skew
//! `theta` is the contention knob — higher theta concentrates traffic on
//! fewer hot keys, driving lock retries on the locking path and validation
//! aborts on the optimistic one.
//!
//! Auditing is always on for measured arms: the standard auditor set plus
//! the transaction auditor (atomicity, isolation, lock hygiene) watch
//! every arm, and every arm additionally checks *conservation* — transfers
//! move value between accounts, so the sum of all balances must end at
//! zero. A lost update, partial commit or leaked lock shows up as either
//! an audit violation or a conservation failure.
//!
//! [`Transfer`]: ycsb::Operation::Transfer

use crate::report::{us, Report, Scenario};
use hyperloop::txn::{CommitMode, TxnOutcome};
use hyperloop::{GroupConfig, HyperLoopGroup, ReplicaHandle, ShardId};
use kvstore::{KvConfig, KvTxn, ReplicatedKv, ShardedKv};
use netsim::NodeId;
use simcore::simaudit::{op_id_base, HealthSummary, SeriesSummary};
use simcore::simprof::{txn_chrome_trace_with_counters, txn_folded_stacks, CounterSample};
use simcore::tailprof::TailProfile;
use simcore::{
    Audit, CounterSampler, HealthMonitor, Histogram, HostMeter, HostStats, LatencySummary,
    MetricsRegistry, SimTime, SloConfig, TraceEvent, Tracer, TxnAttribution,
};
use std::collections::HashMap;
use testbed::cluster::drive;
use testbed::{Cluster, ClusterConfig, ShardPlacement};
use ycsb::{Generator, Operation, Workload};

/// Transaction-mix benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct TxnMixOpts {
    /// Number of shards (each a full replication chain).
    pub shards: u32,
    /// Replicas per shard chain.
    pub replicas_per_shard: u32,
    /// Logical transactions to complete (each retried until it commits).
    pub txns: u64,
    /// Transactions kept in flight concurrently.
    pub concurrency: usize,
    /// Zipfian skew `theta ∈ (0, 1)` — the contention knob.
    pub theta: f64,
    /// Accounts in the transfer keyspace (workload F uses a disjoint
    /// keyspace of the same size, offset above it).
    pub records: u64,
    /// Root seed.
    pub seed: u64,
    /// Capture causal traces on the observed arm: txn phase spans, op
    /// parent tags and sampled `txn.*` counter tracks. Observational only
    /// — the simulated timeline is byte-identical either way.
    pub trace: bool,
}

impl Default for TxnMixOpts {
    fn default() -> Self {
        TxnMixOpts {
            shards: 4,
            replicas_per_shard: 3,
            txns: 512,
            concurrency: 8,
            theta: 0.9,
            records: 256,
            seed: 0x7A317,
            trace: false,
        }
    }
}

/// Result of one (mode, theta) arm.
#[derive(Debug, Clone)]
pub struct TxnMixResult {
    /// The commit path measured.
    pub mode: CommitMode,
    /// Commit latency distribution (submission to committed outcome).
    pub latency: LatencySummary,
    /// Wall time from first submission to last commit.
    pub elapsed: simcore::SimDuration,
    /// Logical transactions committed (= the offered load).
    pub committed: u64,
    /// Commit attempts that aborted and were retried.
    pub aborted: u64,
    /// Lock acquisitions that backed off and retried (locking path).
    pub lock_retries: u64,
    /// Mean number of distinct shards per committed transaction.
    pub mean_span: f64,
    /// Cluster + transaction metrics snapshot.
    pub registry: MetricsRegistry,
    /// The audit's structured violation report (deterministic JSON).
    pub audit_json: String,
    /// Audit violations observed (expected zero).
    pub violations: u64,
    /// Host-side (wall-clock) statistics with the observability tax.
    pub host: HostStats,
    /// Captured trace events (txn phase spans, op tags, transport events);
    /// empty unless [`TxnMixOpts::trace`] was set.
    pub events: Vec<TraceEvent>,
    /// Sampled `txn.*` counter-track points; empty unless traced.
    pub samples: Vec<CounterSample>,
    /// Abort root-cause tally, `(label, count)` in the normative cause
    /// order; counts sum to `aborted`.
    pub abort_causes: Vec<(String, u64)>,
    /// Per-shard SLO health over logical-transaction latency, each txn
    /// tracked against its primary key's shard.
    pub health: HealthSummary,
    /// Windowed telemetry series sampled at every health tick (always on,
    /// so traced and untraced arms carry identical points).
    pub series: SeriesSummary,
    /// Tail-latency exemplars and root-cause attribution, folded from the
    /// trace ring (traced arms only).
    pub tail: Option<TailProfile>,
}

impl TxnMixResult {
    /// Committed transactions per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Aborts per commit (the contention signature).
    pub fn abort_ratio(&self) -> f64 {
        self.aborted as f64 / self.committed.max(1) as f64
    }
}

/// One logical transaction drawn from the workload mix, retried across
/// aborts until it commits.
#[derive(Debug, Clone)]
enum MixOp {
    /// Read-only txn (the F read half).
    Read(u64),
    /// Workload-F RMW: read the key, write back a derived value.
    Rmw(u64, Vec<u8>),
    /// Two-account transfer (conserves the balance sum).
    Transfer(u64, u64, u64),
}

fn balance(v: Option<Vec<u8>>) -> i64 {
    v.map(|b| i64::from_le_bytes(b[..8].try_into().expect("8-byte balance")))
        .unwrap_or(0)
}

/// Builds and submits one transaction for `op`; returns the txn id.
fn submit(kv: &mut ShardedKv<hyperloop::GroupClient>, op: &MixOp, f_base: u64) -> u64 {
    let mut t: KvTxn = kv.txn();
    match op {
        MixOp::Read(key) => {
            kv.txn_get(&mut t, f_base + key);
        }
        MixOp::Rmw(key, value) => {
            kv.txn_get(&mut t, f_base + key);
            kv.txn_put(&mut t, f_base + key, value.clone())
                .expect("geometry");
        }
        MixOp::Transfer(from, to, amount) => {
            let bf = balance(kv.txn_get(&mut t, *from));
            let bt = balance(kv.txn_get(&mut t, *to));
            kv.txn_put(&mut t, *from, (bf - *amount as i64).to_le_bytes().to_vec())
                .expect("geometry");
            kv.txn_put(&mut t, *to, (bt + *amount as i64).to_le_bytes().to_vec())
                .expect("geometry");
        }
    }
    kv.txn_commit(t)
}

/// The shard a logical transaction is tracked against for SLO health:
/// the routed shard of its primary (first-read) key.
fn primary_shard(kv: &ShardedKv<hyperloop::GroupClient>, op: &MixOp, f_base: u64) -> u32 {
    match op {
        MixOp::Read(k) | MixOp::Rmw(k, _) => kv.route(f_base + k).0,
        MixOp::Transfer(from, _, _) => kv.route(*from).0,
    }
}

/// Distinct shards `op` touches.
fn span_of(kv: &ShardedKv<hyperloop::GroupClient>, op: &MixOp, f_base: u64) -> u64 {
    match op {
        MixOp::Read(k) | MixOp::Rmw(k, _) => {
            let _ = kv.route(f_base + k);
            1
        }
        MixOp::Transfer(from, to, _) => {
            if kv.route(*from) == kv.route(*to) {
                1
            } else {
                2
            }
        }
    }
}

/// Runs one arm with audit + trace taps on, then re-runs the identical
/// timeline bare to measure the observability tax.
///
/// # Panics
///
/// Panics on data-path errors, a stalled run, a livelocked transaction, or
/// a conservation failure.
pub fn run_txnmix(mode: CommitMode, opts: TxnMixOpts) -> TxnMixResult {
    let mut res = run_txnmix_once(mode, opts, true);
    let bare = run_txnmix_once(mode, opts, false);
    res.host = res.host.with_bare_wall_ns(bare.host.wall_ns);
    res
}

fn run_txnmix_once(mode: CommitMode, opts: TxnMixOpts, observed: bool) -> TxnMixResult {
    let meter = HostMeter::start();
    let client = NodeId(0);
    let nodes = 1 + opts.shards * opts.replicas_per_shard;
    let mut cluster = Cluster::new(
        nodes,
        4,
        256 << 20,
        ClusterConfig {
            seed: opts.seed,
            ..ClusterConfig::default()
        },
    );
    let placement = ShardPlacement::RoundRobin {
        replicas_per_shard: opts.replicas_per_shard,
    };
    let chains = cluster.place_shards(&placement, opts.shards, client);
    let audit = if observed {
        Audit::standard()
    } else {
        Audit::disabled()
    };
    let traced = opts.trace && observed;
    let tracer = if traced {
        Tracer::enabled(1 << 18)
    } else {
        Tracer::disabled()
    }
    .with_audit(audit.clone());
    cluster.set_tracer(tracer.clone());
    // Per-shard SLO health is always on (observer-only): logical
    // transactions count against their primary key's shard, so the txnmix
    // scenarios carry the same health + series blocks as the other figure
    // runners, identical whether or not the trace buffer is kept.
    let health = HealthMonitor::new(SloConfig::default());
    health.set_tracer(tracer.clone());

    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .enumerate()
            .map(|(i, chain)| {
                let cfg = GroupConfig {
                    shared_size: 4 << 20,
                    meta_slots: 64,
                    prepost_depth: 128,
                    window: 16,
                    first_gen: op_id_base(i as u32, 0),
                };
                HyperLoopGroup::setup(ctx, client, chain, cfg)
            })
            .collect()
    });
    let (clients, mut replicas): (Vec<_>, Vec<Vec<ReplicaHandle>>) =
        groups.into_iter().map(|g| (g.client, g.replicas)).unzip();
    let stores: Vec<ReplicatedKv<hyperloop::GroupClient>> = clients
        .into_iter()
        .map(|mut c| {
            c.set_tracer(tracer.clone());
            ReplicatedKv::new(c, KvConfig::default())
        })
        .collect();
    let mut kv = ShardedKv::with_hash_router(stores);
    kv.enable_txns(mode, opts.seed ^ 0x7);
    kv.set_txn_audit(audit.clone());
    // The txn manager shares the cluster tracer: phase spans and op tags
    // land in the same buffer as the transport events (and feed the
    // phase-pairing auditor even when the buffer itself is disabled).
    kv.set_txn_tracer(tracer.clone());
    let mut sampler = CounterSampler::with_prefixes(&["txn."]);

    let mut sim = cluster.into_sim();
    sim.run(); // drain group wiring
    for s in 0..opts.shards {
        audit.probe(
            sim.now(),
            simcore::simaudit::Probe::Window {
                shard: s,
                window: 16,
            },
        );
    }

    // The offered load: alternate workload-F ops (reads + RMWs on a
    // keyspace above the accounts) and two-key transfers (on the account
    // keyspace, where conservation is checked).
    let f_base = opts.records;
    let mut fgen = Generator::with_theta(Workload::F, opts.records, opts.seed ^ 0xF0, opts.theta);
    let mut tgen = Generator::with_theta(
        Workload::Transfer,
        opts.records,
        opts.seed ^ 0x71,
        opts.theta,
    );
    let mut drawn = 0u64;
    let mut next_op = |fgen: &mut Generator, tgen: &mut Generator| -> MixOp {
        drawn += 1;
        if drawn.is_multiple_of(2) {
            match fgen.next_op() {
                Operation::Read { key } => MixOp::Read(key),
                Operation::ReadModifyWrite { key, value } => MixOp::Rmw(key, value),
                other => MixOp::Read(other.key()),
            }
        } else {
            loop {
                if let Operation::Transfer { from, to, amount } = tgen.next_op() {
                    return MixOp::Transfer(from, to, amount);
                }
            }
        }
    };

    let mut outstanding: HashMap<u64, (MixOp, SimTime, u32)> = HashMap::new();
    let mut hist = Histogram::new();
    let mut committed = 0u64;
    let mut span_sum = 0u64;
    let mut submitted = 0u64;
    let mut last_completed = vec![0u64; opts.shards as usize];
    let started = sim.now();
    let mut idle_ticks = 0u32;
    while committed < opts.txns {
        // Fill the concurrency window with fresh logical transactions.
        while outstanding.len() < opts.concurrency && submitted < opts.txns {
            let op = next_op(&mut fgen, &mut tgen);
            let shard = primary_shard(&kv, &op, f_base);
            let id = submit(&mut kv, &op, f_base);
            outstanding.insert(id, (op, sim.now(), 0));
            health.record_issue(sim.now(), shard);
            submitted += 1;
        }
        sim.run();
        let done = drive(&mut sim, |ctx| {
            kv.poll(ctx);
            kv.pump_txns(ctx)
        });
        if traced {
            // Host-side sampling of the txn counters into Perfetto
            // counter tracks — never touches the simulated timeline.
            let mut scratch = MetricsRegistry::new();
            kv.txn_manager().export_into(&mut scratch, "txn");
            sampler.sample(sim.now(), &scratch);
        }
        if done.is_empty() {
            idle_ticks += 1;
            assert!(
                idle_ticks < 10_000,
                "txnmix stalled at {committed}/{} with {} outstanding",
                opts.txns,
                outstanding.len()
            );
        } else {
            idle_ticks = 0;
        }
        for (id, outcome) in done {
            let (op, t0, attempts) = outstanding.remove(&id).expect("unknown txn completed");
            match outcome {
                TxnOutcome::Committed => {
                    let lat = sim.now().since(t0);
                    hist.record(lat);
                    health.record_ack(sim.now(), primary_shard(&kv, &op, f_base), lat);
                    span_sum += span_of(&kv, &op, f_base);
                    committed += 1;
                }
                TxnOutcome::Aborted => {
                    assert!(
                        attempts < 256,
                        "logical op livelocked after {attempts} aborts: {op:?}"
                    );
                    // Retry with fresh reads (and fresh versions).
                    let id = submit(&mut kv, &op, f_base);
                    outstanding.insert(id, (op, t0, attempts + 1));
                }
            }
        }
        health.tick(sim.now());
        // Keep every chain's pre-posted descriptor runway topped up.
        drive(&mut sim, |ctx| {
            for s in 0..opts.shards as usize {
                let now_done = kv.shard(ShardId(s as u32)).transport.completed();
                let delta = now_done - last_completed[s];
                if delta > 0 {
                    last_completed[s] = now_done;
                    for r in replicas[s].iter_mut() {
                        r.replenish(ctx, delta as u32);
                    }
                }
            }
        });
    }
    let elapsed = sim.now().since(started);
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");

    // Conservation: transfers move value between accounts; the account
    // keyspace must sum to zero or a transaction lost (or forged) money.
    let total: i64 = (0..opts.records)
        .map(|k| balance(kv.get(k).map(|v| v.to_vec())))
        .sum();
    assert_eq!(total, 0, "transfers did not conserve value: sum {total}");

    let mgr = kv.txn_manager();
    let mut registry = MetricsRegistry::new();
    sim.model.export_into(&mut registry, "cluster");
    mgr.export_into(&mut registry, "txn");
    registry.merge_histogram("bench.txn_latency", &hist);
    registry.set_gauge("bench.elapsed_secs", elapsed.as_secs_f64());
    audit.export_into(&mut registry, "audit");
    health.export_into(&mut registry, "health");
    let mut health_summary = health.summary();
    health_summary.violations = audit.violation_count();
    let series = health.series();

    // Stop the host meter before folding trace artifacts: attribution and
    // tail folds are post-run analysis, not simulation work, and must not be
    // charged to the measured arm's wall clock.
    let host = meter.finish(committed, sim.now().since(SimTime::ZERO), sim.queue.stats());

    let events = tracer.events();
    let tail = traced.then(|| TailProfile::from_events(&events));
    let mut samples = sampler.samples().to_vec();
    if traced {
        // Series counter tracks ride along in the Perfetto export.
        samples.extend(series.counter_samples());
    }

    TxnMixResult {
        mode,
        latency: hist.summary(),
        elapsed,
        committed,
        aborted: mgr.aborted,
        lock_retries: mgr.lock_retries,
        mean_span: span_sum as f64 / committed.max(1) as f64,
        registry,
        audit_json: audit.to_json(),
        violations: audit.violation_count(),
        host,
        events,
        samples,
        abort_causes: mgr
            .abort_cause_counts()
            .iter()
            .map(|&(label, n)| (label.to_string(), n))
            .collect(),
        health: health_summary,
        series,
        tail,
    }
}

/// The contention skews of the sweep.
pub const THETAS: [f64; 3] = [0.5, 0.9, 0.99];

/// Transaction-mix sweep: both commit paths across contention levels.
pub fn txnmix(rep: &mut Report, quick: bool) {
    rep.banner(
        "Transaction mix: multi-key commit/abort throughput vs contention (4 shards, audit on)",
    );
    rep.line(format!(
        "{:<12} {:<7} {:>10} {:>9} {:>9} {:>12} {:>10} {:>10} {:>6}",
        "mode", "theta", "Ktxn/s", "commits", "aborts", "lock_retry", "mean", "p99", "span"
    ));
    for mode in [CommitMode::Locking, CommitMode::Optimistic] {
        for theta in THETAS {
            let opts = TxnMixOpts {
                txns: if quick { 192 } else { 512 },
                theta,
                trace: rep.profile_enabled(),
                ..TxnMixOpts::default()
            };
            let r = run_txnmix(mode, opts);
            assert_eq!(r.violations, 0, "txn audit violations:\n{}", r.audit_json);
            let label = match mode {
                CommitMode::Locking => "locking",
                CommitMode::Optimistic => "optimistic",
            };
            rep.line(format!(
                "{:<12} {:<7} {:>10.1} {:>9} {:>9} {:>12} {:>10} {:>10} {:>6.2}",
                label,
                theta,
                r.ops_per_sec() / 1e3,
                r.committed,
                r.aborted,
                r.lock_retries,
                us(r.latency.mean),
                us(r.latency.p99),
                r.mean_span,
            ));
            let name = format!("txnmix/{label}/theta{theta}");
            let mut sc = Scenario::new(name.clone())
                .system("HyperLoop")
                .seed(opts.seed)
                .config("mode", label)
                .config("shards", opts.shards)
                .config("replicas_per_shard", opts.replicas_per_shard)
                .config("theta", theta)
                .config("txns", opts.txns)
                .config("concurrency", opts.concurrency)
                .config("records", opts.records)
                .latency(&r.latency)
                .gauge("ops_per_sec", r.ops_per_sec())
                .gauge("abort_ratio", r.abort_ratio())
                .gauge("lock_retries", r.lock_retries as f64)
                .gauge("mean_span", r.mean_span)
                .health(r.health.clone())
                .series(r.series.clone())
                .host(r.host.clone())
                .metrics(r.registry.clone())
                .abort_causes(r.abort_causes.clone());
            if opts.trace {
                sc = sc.txn_breakdown(TxnAttribution::from_events(&r.events));
            }
            if let Some(tail) = &r.tail {
                rep.write_trace(
                    &format!("TAIL_txnmix_{label}_theta{theta}.json"),
                    &tail.to_artifact_json(&name),
                )
                .expect("trace sink writable");
                sc = sc.tail(tail.clone());
            }
            rep.scenario(sc);
            rep.write_trace(
                &format!("AUDIT_txnmix_{label}_theta{theta}.json"),
                &r.audit_json,
            )
            .expect("trace sink writable");
            if opts.trace {
                rep.write_trace(
                    &format!("TXNTRACE_txnmix_{label}_theta{theta}.json"),
                    &txn_chrome_trace_with_counters(&r.events, &r.samples),
                )
                .expect("trace sink writable");
                rep.write_trace(
                    &format!("FOLDED_txn_txnmix_{label}_theta{theta}.txt"),
                    &txn_folded_stacks(&r.events),
                )
                .expect("trace sink writable");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(theta: f64) -> TxnMixOpts {
        TxnMixOpts {
            txns: 96,
            theta,
            ..TxnMixOpts::default()
        }
    }

    #[test]
    fn both_commit_paths_run_clean_on_four_shards() {
        for mode in [CommitMode::Locking, CommitMode::Optimistic] {
            let r = run_txnmix(mode, quick_opts(0.9));
            assert_eq!(r.committed, 96);
            assert_eq!(r.violations, 0, "{mode:?} violations:\n{}", r.audit_json);
            // Counter sanity: aborts and commits are both bounded by
            // commit attempts.
            let started = r.registry.counter("txn.started").unwrap();
            assert!(r.committed <= started);
            assert!(r.aborted <= started);
            assert!((1.0..=2.0).contains(&r.mean_span), "span {}", r.mean_span);
        }
    }

    #[test]
    fn contention_drives_retries_or_aborts() {
        // High skew must produce more conflict work than low skew on at
        // least one of the two conflict channels.
        let lo = run_txnmix(CommitMode::Locking, quick_opts(0.5));
        let hi = run_txnmix(CommitMode::Locking, quick_opts(0.99));
        assert!(
            hi.lock_retries + hi.aborted >= lo.lock_retries + lo.aborted,
            "contention knob inert: hi {}+{} vs lo {}+{}",
            hi.lock_retries,
            hi.aborted,
            lo.lock_retries,
            lo.aborted
        );
    }

    /// Regression: the optimistic path once corrected the client version
    /// cache from in-flight validation acks, so a transaction submitted
    /// while a conflicting commit was between its version bump and its
    /// client-side install paired a *fresh* version with a *stale* read —
    /// and the torn pair validated cleanly, committing a lost update.
    /// Only high contention at full scale opens the window; conservation
    /// (checked inside the run) catches the lost debit.
    #[test]
    fn optimistic_high_contention_conserves_value() {
        let opts = TxnMixOpts {
            txns: 512,
            theta: 0.99,
            ..TxnMixOpts::default()
        };
        let r = run_txnmix_once(CommitMode::Optimistic, opts, true);
        assert_eq!(r.committed, 512);
        assert_eq!(r.violations, 0, "{}", r.audit_json);
    }

    #[test]
    fn txn_breakdown_tiles_commit_latency_in_both_modes() {
        for mode in [CommitMode::Locking, CommitMode::Optimistic] {
            let opts = TxnMixOpts {
                trace: true,
                ..quick_opts(0.9)
            };
            let r = run_txnmix_once(mode, opts, true);
            let att = TxnAttribution::from_events(&r.events);
            assert!(att.txns > 0, "{mode:?}: no complete txns folded");
            assert_eq!(att.truncated, 0, "{mode:?}: unpaired phase spans");
            assert!(att.linked_ops > 0, "{mode:?}: no parent-tagged ops");
            let diff = (att.mean_e2e_ns() - att.phase_mean_sum_ns()).abs();
            assert!(
                diff <= 1.0,
                "{mode:?}: phase means must tile mean commit latency (off {diff} ns)"
            );
        }
    }

    #[test]
    fn tracing_is_observer_only() {
        let base = run_txnmix_once(CommitMode::Locking, quick_opts(0.9), true);
        let traced = run_txnmix_once(
            CommitMode::Locking,
            TxnMixOpts {
                trace: true,
                ..quick_opts(0.9)
            },
            true,
        );
        assert_eq!(base.latency.p99, traced.latency.p99);
        assert_eq!(base.committed, traced.committed);
        assert_eq!(base.aborted, traced.aborted);
        assert_eq!(base.abort_causes, traced.abort_causes);
        assert_eq!(
            base.audit_json, traced.audit_json,
            "tracing must not perturb the timeline"
        );
        // Health and the windowed series are trace-independent.
        assert_eq!(base.health, traced.health);
        assert_eq!(base.series, traced.series);
        assert_eq!(base.series.to_json(), traced.series.to_json());
    }

    #[test]
    fn traced_artifacts_are_byte_identical_for_same_seed() {
        let opts = TxnMixOpts {
            trace: true,
            ..quick_opts(0.9)
        };
        let a = run_txnmix_once(CommitMode::Locking, opts, true);
        let b = run_txnmix_once(CommitMode::Locking, opts, true);
        assert_eq!(
            txn_chrome_trace_with_counters(&a.events, &a.samples),
            txn_chrome_trace_with_counters(&b.events, &b.samples),
            "txn chrome trace must be deterministic"
        );
        assert_eq!(
            txn_folded_stacks(&a.events),
            txn_folded_stacks(&b.events),
            "folded txn stacks must be deterministic"
        );
        assert!(!a.samples.is_empty(), "counter tracks must be sampled");
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn abort_causes_sum_to_aborted_in_both_modes() {
        for mode in [CommitMode::Locking, CommitMode::Optimistic] {
            let r = run_txnmix(mode, quick_opts(0.99));
            let total: u64 = r.abort_causes.iter().map(|(_, n)| n).sum();
            assert_eq!(
                total, r.aborted,
                "{mode:?}: causes {:?} must sum to aborted {}",
                r.abort_causes, r.aborted
            );
        }
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let a = run_txnmix(CommitMode::Optimistic, quick_opts(0.9));
        let b = run_txnmix(CommitMode::Optimistic, quick_opts(0.9));
        assert_eq!(
            a.audit_json, b.audit_json,
            "audit JSON must be deterministic"
        );
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.latency.p99, b.latency.p99);
    }
}
