//! # hyperloop-bench — the paper's evaluation, regenerated
//!
//! Every table and figure of HyperLoop's §6 has a runner here; the
//! `figures` binary prints them:
//!
//! ```text
//! cargo run --release -p hyperloop-bench --bin figures -- all [--quick]
//! ```
//!
//! | id | paper content | module |
//! |---|---|---|
//! | fig2a / fig2b | MongoDB latency & context switches vs tenancy / cores | [`mongo2`] |
//! | fig8a / fig8b | gWRITE / gMEMCPY latency vs message size | [`micro`] |
//! | table2 | gCAS latency statistics | [`micro`] |
//! | fig9 | gWRITE throughput + replica CPU | [`micro`] |
//! | fig10 | tail latency vs group size | [`micro`] |
//! | fig11 | replicated RocksDB (kvstore) under YCSB-A | [`appbench`] |
//! | fig12 | replicated MongoDB (docstore) under YCSB A/B/D/E/F | [`appbench`] |
//!
//! Plus ablations (`ablation_*`): polling crossover, flush cost, fan-out vs
//! chain — and three beyond-the-paper sweeps: `shardscale` ([`shardscale`]),
//! aggregate throughput vs shard count over the [`hyperloop::ShardSet`]
//! layer, `migrate` ([`migrate`]), the pause window and throughput dip of a
//! live shard migration, `hostperf` ([`hostperf`]), the *host*
//! throughput of the simulator itself (ops/sec of wall clock, allocation
//! volume and the observability tax), and `txnmix` ([`txnmix`]), multi-key
//! transaction commit/abort throughput vs contention over both commit
//! paths of the `hyperloop::txn` layer.
//!
//! The only unsafe code in the crate is the counting global allocator in
//! [`hostalloc`]; everything else stays `deny(unsafe_code)`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod appbench;
pub mod driver;
pub mod exp;
pub mod fanout_ablation;
pub mod figures;
#[allow(unsafe_code)]
pub mod hostalloc;
pub mod hostperf;
pub mod micro;
pub mod migrate;
pub mod mongo2;
pub mod report;
pub mod shardscale;
pub mod txnmix;

pub use driver::{OpPlan, PrimitiveDriver};
pub use micro::{MicroOpts, MicroResult, SystemKind};
