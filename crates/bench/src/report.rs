//! Benchmark reporting: plain-text tables in the shape of the paper's
//! figures, plus a machine-readable `BENCH_*.json` sink.
//!
//! Every benchmark entry point renders through a [`Report`]: human-readable
//! lines go to stdout exactly as before, and each measured configuration is
//! additionally recorded as a [`Scenario`] (name, system, seed, config
//! key/values, latency summary and an optional [`MetricsRegistry`]
//! snapshot). When the binary was given `--json <path>`, [`Report::finish`]
//! serializes all scenarios with [`simcore::jsonw::JsonWriter`].

use simcore::jsonw::JsonWriter;
use simcore::simaudit::{HealthSummary, SeriesSummary};
use simcore::simprof::{StageAttribution, TxnAttribution};
use simcore::tailprof::TailProfile;
use simcore::{HostStats, LatencySummary, MetricsRegistry, SimDuration};
use std::path::{Path, PathBuf};

/// Formats a duration in microseconds with sensible precision.
pub fn us(d: SimDuration) -> String {
    let v = d.as_micros_f64();
    if v >= 100.0 {
        format!("{v:.0}us")
    } else {
        format!("{v:.1}us")
    }
}

/// One row of a latency table.
pub fn latency_row(label: &str, s: &LatencySummary) -> String {
    format!(
        "{label:<28} {:>10} {:>10} {:>10} {:>10}  (n={})",
        us(s.mean),
        us(s.p50),
        us(s.p95),
        us(s.p99),
        s.count
    )
}

/// Header matching [`latency_row`].
pub fn latency_header(first_col: &str) -> String {
    format!(
        "{first_col:<28} {:>10} {:>10} {:>10} {:>10}",
        "mean", "p50", "p95", "p99"
    )
}

/// A ratio annotation like "801.8x".
pub fn ratio(a: SimDuration, b: SimDuration) -> String {
    if b.is_zero() {
        return "inf".into();
    }
    format!("{:.1}x", a.as_micros_f64() / b.as_micros_f64())
}

/// One machine-readable benchmark record: a single measured configuration
/// (one table row, one figure point). Built with a fluent API:
///
/// ```ignore
/// rep.scenario(
///     Scenario::new("fig8a/1KB")
///         .system("HyperLoop")
///         .seed(0xBEEF)
///         .config("payload_bytes", 1024)
///         .latency(&result.latency)
///         .metrics(result.registry.clone()),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    name: String,
    system: Option<String>,
    seed: Option<u64>,
    config: Vec<(String, String)>,
    latency: Option<LatencySummary>,
    gauges: Vec<(String, f64)>,
    health: Option<HealthSummary>,
    series: Option<SeriesSummary>,
    host: Option<HostStats>,
    metrics: Option<MetricsRegistry>,
    attribution: Option<StageAttribution>,
    txn_breakdown: Option<TxnAttribution>,
    abort_causes: Option<Vec<(String, u64)>>,
    tail: Option<TailProfile>,
}

impl Scenario {
    /// Starts a record named like `"fig8a/1KB"` (figure/point).
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            ..Scenario::default()
        }
    }

    /// The system under test (a [`SystemKind`](crate::SystemKind) label).
    pub fn system(mut self, s: &str) -> Self {
        self.system = Some(s.to_string());
        self
    }

    /// The root RNG seed the run used.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Adds one configuration key/value (payload size, group size, ...).
    pub fn config(mut self, key: &str, value: impl ToString) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// The end-to-end latency summary of the run.
    pub fn latency(mut self, s: &LatencySummary) -> Self {
        self.latency = Some(*s);
        self
    }

    /// Adds one derived measurement (throughput, CPU fraction, ...).
    pub fn gauge(mut self, key: &str, v: f64) -> Self {
        self.gauges.push((key.to_string(), v));
        self
    }

    /// Attaches the run's audit/health summary (violation total, SLO
    /// breach count, per-shard states). Serialized as a `health` block in
    /// the scenario JSON.
    pub fn health(mut self, h: HealthSummary) -> Self {
        self.health = Some(h);
        self
    }

    /// Attaches the run's windowed telemetry series (per-shard
    /// throughput, p50/p99, occupancy and pen depth sampled at
    /// [`simcore::HealthMonitor::tick`] boundaries). Serialized as a
    /// `series` block in the scenario JSON.
    pub fn series(mut self, s: SeriesSummary) -> Self {
        self.series = Some(s);
        self
    }

    /// Attaches the run's host-side (wall-clock) statistics: simulator
    /// ops/sec, events/sec, allocation volume and the observability tax.
    /// Serialized as a `host` block in the scenario JSON. Unlike every
    /// other block, `host` is *volatile* — it changes run to run — so the
    /// report canonicalizer
    /// ([`simcore::jsonw::canonicalize_report`]) strips it before
    /// byte-identity comparisons.
    pub fn host(mut self, h: HostStats) -> Self {
        self.host = Some(h);
        self
    }

    /// Attaches a full metrics-registry snapshot of the simulated cluster.
    pub fn metrics(mut self, reg: MetricsRegistry) -> Self {
        self.metrics = Some(reg);
        self
    }

    /// Attaches the run's critical-path stage attribution (per-stage
    /// latency aggregates folded from the trace stream). Serialized as a
    /// `stage_attribution` block in the scenario JSON.
    pub fn stage_attribution(mut self, att: StageAttribution) -> Self {
        self.attribution = Some(att);
        self
    }

    /// Attaches the run's transaction-phase attribution (per-phase latency
    /// aggregates folded from the txn trace spans; phase means tile the
    /// mean commit latency). Serialized as a `txn_breakdown` block.
    pub fn txn_breakdown(mut self, att: TxnAttribution) -> Self {
        self.txn_breakdown = Some(att);
        self
    }

    /// Attaches the run's abort root-cause tally (`(label, count)` pairs
    /// in the normative cause order; counts sum to the run's aborted
    /// total). Serialized as an `abort_causes` block with a trailing
    /// `total`.
    pub fn abort_causes(mut self, causes: Vec<(String, u64)>) -> Self {
        self.abort_causes = Some(causes);
        self
    }

    /// Attaches the run's tail-latency profile (exact population
    /// quantiles, closed-sum cause counters, slowest exemplars with
    /// their excess breakdowns). Serialized as a `tail` block in the
    /// scenario JSON; span-tree detail goes to the `TAIL_*.json`
    /// artifact instead.
    pub fn tail(mut self, t: TailProfile) -> Self {
        self.tail = Some(t);
        self
    }
}

/// Writes a [`LatencySummary`] as a JSON object under `key`.
fn write_latency(w: &mut JsonWriter, key: &str, s: &LatencySummary) {
    w.begin_obj_field(key);
    w.field_u64("count", s.count);
    w.field_u64("mean_ns", s.mean.as_nanos());
    w.field_u64("p50_ns", s.p50.as_nanos());
    w.field_u64("p95_ns", s.p95.as_nanos());
    w.field_u64("p99_ns", s.p99.as_nanos());
    w.field_u64("p999_ns", s.p999.as_nanos());
    w.field_u64("min_ns", s.min.as_nanos());
    w.field_u64("max_ns", s.max.as_nanos());
    w.end_obj();
}

/// Collects everything a benchmark binary reports: human-readable text
/// (printed immediately) and machine-readable [`Scenario`] records
/// (serialized by [`Report::finish`] when a JSON sink was requested).
#[derive(Debug, Default)]
pub struct Report {
    tool: String,
    quick: bool,
    json_path: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    scenarios: Vec<Scenario>,
}

impl Report {
    /// Creates a report for the named tool (`"figures"`, `"smoke"`, ...).
    pub fn new(tool: &str) -> Self {
        Report {
            tool: tool.to_string(),
            ..Report::default()
        }
    }

    /// Marks the run as `--quick` (recorded in the JSON header).
    pub fn set_quick(&mut self, quick: bool) {
        self.quick = quick;
    }

    /// Requests a JSON sink. If `path` is a directory (existing, or spelled
    /// with a trailing separator) the file is named `BENCH_<tool>.json`
    /// inside it; otherwise `path` is the file.
    pub fn set_json_path(&mut self, path: &Path) {
        let is_dir = path.is_dir() || path.to_string_lossy().ends_with(std::path::MAIN_SEPARATOR);
        self.json_path = Some(if is_dir {
            path.join(format!("BENCH_{}.json", self.tool))
        } else {
            path.to_path_buf()
        });
    }

    /// Requests per-scenario trace artifacts (Chrome traces with counter
    /// tracks, folded flamegraph stacks) under the given directory.
    pub fn set_trace_dir(&mut self, dir: &Path) {
        self.trace_dir = Some(dir.to_path_buf());
    }

    /// True when a trace directory was requested.
    pub fn trace_enabled(&self) -> bool {
        self.trace_dir.is_some()
    }

    /// True when a JSON sink was requested.
    pub fn json_enabled(&self) -> bool {
        self.json_path.is_some()
    }

    /// True when runs should capture causal traces: either trace artifacts
    /// were requested outright, or a JSON sink was (every `BENCH_*.json`
    /// scenario carries a `stage_attribution` block when its runner can
    /// trace).
    pub fn profile_enabled(&self) -> bool {
        self.trace_enabled() || self.json_enabled()
    }

    /// Writes one trace artifact (`file_name` with `/` mapped to `_`) into
    /// the trace directory, if one was requested. Returns the path written.
    pub fn write_trace(&self, file_name: &str, contents: &str) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.trace_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file_name.replace('/', "_"));
        std::fs::write(&path, contents)?;
        println!("wrote {}", path.display());
        Ok(Some(path))
    }

    /// Prints a section banner.
    pub fn banner(&self, title: &str) {
        println!("\n==== {title} ====");
    }

    /// Prints one line of human-readable output.
    pub fn line(&self, text: impl AsRef<str>) {
        println!("{}", text.as_ref());
    }

    /// Records one machine-readable scenario.
    pub fn scenario(&mut self, s: Scenario) {
        self.scenarios.push(s);
    }

    /// Number of scenarios recorded so far.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenario has been recorded.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Serializes the report (header plus all scenarios) to a JSON string.
    pub fn to_json(&self) -> String {
        let _t = simcore::hostprof::scope("jsonw.export");
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("schema", "hyperloop-bench/v1");
        w.field_str("tool", &self.tool);
        w.field_bool("quick", self.quick);
        w.begin_arr_field("scenarios");
        for s in &self.scenarios {
            w.begin_obj();
            w.field_str("name", &s.name);
            if let Some(sys) = &s.system {
                w.field_str("system", sys);
            }
            if let Some(seed) = s.seed {
                w.field_u64("seed", seed);
            }
            w.begin_obj_field("config");
            for (k, v) in &s.config {
                w.field_str(k, v);
            }
            w.end_obj();
            if let Some(sum) = &s.latency {
                write_latency(&mut w, "latency", sum);
            }
            w.begin_obj_field("gauges");
            for (k, v) in &s.gauges {
                w.field_f64(k, *v);
            }
            w.end_obj();
            if let Some(h) = &s.health {
                w.begin_obj_field("health");
                h.write_fields(&mut w);
                w.end_obj();
            }
            if let Some(series) = &s.series {
                w.begin_obj_field("series");
                series.write_fields(&mut w);
                w.end_obj();
            }
            if let Some(h) = &s.host {
                w.begin_obj_field("host");
                h.write_fields(&mut w);
                w.end_obj();
            }
            if let Some(reg) = &s.metrics {
                w.begin_obj_field("metrics");
                w.begin_obj_field("counters");
                for (k, v) in reg.counters() {
                    w.field_u64(k, v);
                }
                w.end_obj();
                w.begin_obj_field("gauges");
                for (k, v) in reg.gauges() {
                    w.field_f64(k, v);
                }
                w.end_obj();
                w.begin_obj_field("histograms");
                for (k, h) in reg.histograms() {
                    write_latency(&mut w, k, &h.summary());
                }
                w.end_obj();
                w.end_obj();
            }
            if let Some(att) = &s.attribution {
                w.begin_obj_field("stage_attribution");
                att.write_fields(&mut w);
                w.end_obj();
            }
            if let Some(att) = &s.txn_breakdown {
                w.begin_obj_field("txn_breakdown");
                att.write_fields(&mut w);
                w.end_obj();
            }
            if let Some(causes) = &s.abort_causes {
                w.begin_obj_field("abort_causes");
                let mut total = 0u64;
                for (label, n) in causes {
                    w.field_u64(label, *n);
                    total += n;
                }
                w.field_u64("total", total);
                w.end_obj();
            }
            if let Some(tail) = &s.tail {
                w.begin_obj_field("tail");
                tail.write_fields(&mut w);
                w.end_obj();
            }
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Writes the JSON sink, if one was requested. Returns the path written.
    pub fn finish(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = &self.json_path else {
            return Ok(None);
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())?;
        println!("\nwrote {}", path.display());
        Ok(Some(path.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn summary() -> LatencySummary {
        let mut h = simcore::Histogram::new();
        h.record(SimDuration::from_micros(5));
        h.record(SimDuration::from_micros(7));
        h.summary()
    }

    #[test]
    fn report_json_contains_scenarios() {
        let mut rep = Report::new("unit");
        rep.set_quick(true);
        let mut reg = MetricsRegistry::new();
        reg.counter_add("fabric.wqes_executed", 3);
        rep.scenario(
            Scenario::new("fig8a/1KB")
                .system("HyperLoop")
                .seed(0xBEEF)
                .config("payload_bytes", 1024u64)
                .latency(&summary())
                .gauge("ops_per_sec", 1000.0)
                .health(HealthSummary {
                    violations: 0,
                    breaches: 1,
                    shards: vec![simcore::simaudit::ShardHealth {
                        shard: 0,
                        state: simcore::HealthState::Degraded,
                        acks: 2,
                        p50: SimDuration::from_micros(5),
                        p99: SimDuration::from_micros(7),
                        breaches: 1,
                    }],
                })
                .metrics(reg),
        );
        let json = rep.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":\"hyperloop-bench/v1\""));
        assert!(json.contains("\"tool\":\"unit\""));
        assert!(json.contains("\"quick\":true"));
        assert!(json.contains("\"name\":\"fig8a/1KB\""));
        assert!(json.contains("\"system\":\"HyperLoop\""));
        assert!(json.contains("\"seed\":48879"));
        assert!(json.contains("\"payload_bytes\":\"1024\""));
        assert!(json.contains("\"mean_ns\":6000"));
        assert!(json.contains("\"ops_per_sec\":1000"));
        assert!(json.contains("\"fabric.wqes_executed\":3"));
        assert!(json.contains("\"health\":{\"violations\":0,\"breaches\":1"));
        assert!(json.contains("\"state\":\"degraded\""));
    }

    #[test]
    fn report_serializes_host_block_and_canonicalizer_strips_it() {
        let mut rep = Report::new("unit");
        let meter = simcore::HostMeter::start();
        let host = meter.finish(
            10,
            SimDuration::from_micros(50),
            simcore::QueueStats::default(),
        );
        rep.scenario(Scenario::new("hostperf/10").latency(&summary()).host(host));
        let json = rep.to_json();
        assert!(json.contains("\"host\":{\"wall_ms\":"));
        assert!(json.contains("\"obs_tax\":{"));
        // The canonical form of the report must not depend on wall clock.
        let canon = simcore::jsonw::canonicalize_report(&json).expect("valid json");
        assert!(!canon.contains("\"host\""));
        assert!(canon.contains("\"name\":\"hostperf/10\""));
    }

    #[test]
    fn json_path_directory_gets_bench_name() {
        let dir = std::env::temp_dir();
        let mut rep = Report::new("unitdir");
        rep.set_json_path(&dir);
        let written = rep.finish().expect("write").expect("path");
        assert!(written.ends_with("BENCH_unitdir.json"));
        let body = std::fs::read_to_string(&written).expect("read back");
        assert!(body.contains("\"tool\":\"unitdir\""));
        std::fs::remove_file(written).ok();
    }
}
