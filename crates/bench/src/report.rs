//! Plain-text tables in the shape of the paper's figures.

use simcore::{LatencySummary, SimDuration};

/// Formats a duration in microseconds with sensible precision.
pub fn us(d: SimDuration) -> String {
    let v = d.as_micros_f64();
    if v >= 100.0 {
        format!("{v:.0}us")
    } else {
        format!("{v:.1}us")
    }
}

/// One row of a latency table.
pub fn latency_row(label: &str, s: &LatencySummary) -> String {
    format!(
        "{label:<28} {:>10} {:>10} {:>10} {:>10}  (n={})",
        us(s.mean),
        us(s.p50),
        us(s.p95),
        us(s.p99),
        s.count
    )
}

/// Header matching [`latency_row`].
pub fn latency_header(first_col: &str) -> String {
    format!(
        "{first_col:<28} {:>10} {:>10} {:>10} {:>10}",
        "mean", "p50", "p95", "p99"
    )
}

/// A section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

/// A ratio annotation like "801.8x".
pub fn ratio(a: SimDuration, b: SimDuration) -> String {
    if b.is_zero() {
        return "inf".into();
    }
    format!("{:.1}x", a.as_micros_f64() / b.as_micros_f64())
}
