//! Validates machine-readable `BENCH_*.json` reports.
//!
//! ```text
//! cargo run --release -p hyperloop-bench --bin benchcheck -- \
//!     [--baseline BENCH_BASELINE.json] out/BENCH_figures.json ...
//! ```
//!
//! A report that parses but carries garbage is worse than no report: a
//! `null` where a gauge should be means a NaN/Inf leaked out of a bench,
//! a negative or fractional counter means the registry was corrupted, and
//! a shard that acked more than it issued means the accounting
//! double-counted (the failure mode the `export_into` snapshot fix
//! guards). This checker walks every scenario with
//! [`simcore::jsonw::parse`] and fails loudly on any of those, so CI can
//! gate on the reports the figures binary writes. Scenarios carrying a
//! `health` block (the simaudit summary) must also pass the audit gate:
//! states drawn from the closed `healthy`/`degraded`/`stalled` enum,
//! every number finite, and an invariant-violation count of exactly zero.
//!
//! Scenarios carrying `txn.*` counters (the txnmix sweep) get the
//! transaction-lifecycle gate: `txn.committed` and `txn.aborted` must each
//! stay at or below `txn.started`, and so must their sum — a commit
//! attempt resolves exactly once.
//!
//! The same scenarios get the txnscope observability gate. The
//! `txn.abort_causes.*` counters form a closed three-key set that must sum
//! to `txn.aborted` exactly — every abort carries exactly one root cause.
//! The `txn.contention.*` roll-up is a closed eight-key set, and any
//! scenario that started at least one transaction **must** carry it: a
//! txnmix run whose contention block went missing is a report that can
//! silently hide a pathological lock fight. Per-site detail keys must
//! match the `txn.contention.site.s<shard>.l<lock>.<field>` grammar with
//! fields drawn from the same closed set, and false conflicts (distinct
//! keys colliding in one stripe) can never exceed conflicts, globally or
//! per site. Scenarios carrying a `txn_breakdown` block must tile like
//! stage attribution does: per-phase mean contributions sum to the mean
//! end-to-end commit latency within 1 ns. An `abort_causes` block must
//! use the same closed cause set, sum to its own `total`, and agree with
//! the `txn.aborted` counter.
//!
//! Every scenario must also carry a `host` block — the wall-clock
//! self-profile of the simulator ([`simcore::hostprof`]) — with a *closed*
//! key set (unknown keys fail, so schema drift is caught on both sides),
//! finite positive rates, and a queue invariant (`pushed >= popped`).
//!
//! Scenarios produced by the quick-figures sweeps (`shardscale/*`,
//! `migrate/*`, `hostperf/*`, `txnmix/*`) must carry the tailscope blocks
//! — `tail` (tail-latency exemplars + root-cause attribution) and `series`
//! (windowed telemetry) — and any scenario carrying them is validated:
//! both blocks use closed key sets; the seven `tail.causes.*` counters sum
//! exactly to `tail.tail_ops` (exactly one cause per tail op); every
//! exemplar's `e2e_ns` is at or beyond the population `tail.p99_ns` and
//! strictly above `tail.median_e2e_ns` (ties at the quantile are tail ops
//! — see the `simcore::tailprof` module docs for the rationale), its
//! `excess_ns` equals `e2e_ns − median_e2e_ns`, and its per-stage excess
//! rows plus `residual_ns` tile `excess_ns` to within 1 ns; exemplars are
//! ordered slowest first; and every series shard's sample timestamps are
//! strictly monotonic.
//!
//! With `--baseline`, every checked scenario that shares a name with a
//! baseline scenario must keep its `ops_per_sec` gauge within 25% of the
//! baseline value (the simulator is deterministic, so a real regression —
//! not machine noise — is the only way to lose throughput). Scenarios
//! carrying a `stage_attribution` block must also tile: the sum of
//! per-stage mean contributions has to equal the mean end-to-end latency
//! to within 1 ns.
//!
//! `--baseline` also soft-gates tail latency per scenario: a scenario
//! whose `latency.p99_ns` reaches 1.5× the same-name baseline p99 **warns**
//! to stderr, and one that reaches 3× **fails**. The simulator is
//! deterministic, so a p99 excursion is a real regression, but tail
//! percentiles of short quick-mode runs move more under legitimate code
//! changes than means do — hence the wider band than the throughput gate.
//! This paragraph is the single normative statement of those thresholds;
//! DESIGN.md and README.md defer to it.
//!
//! With `--host-baseline`, `host.ops_per_sec` is gated too. Host
//! throughput (unlike sim throughput) moves with machine load, so the gate
//! has two levels: below 50% of the committed baseline the check **fails**
//! (a machine-load excursion that deep on every scenario at once is not
//! plausible; a simulator regression is), and below 90% it **warns** to
//! stderr without failing — the early signal that the fastpath is eroding.
//! This paragraph is the single normative statement of those thresholds;
//! DESIGN.md and README.md defer to it.

use simcore::jsonw::{parse, JsonValue};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One validation failure, located well enough to grep the report.
fn fail(path: &str, scenario: &str, msg: &str) -> ExitCode {
    eprintln!("benchcheck: {path}: scenario {scenario:?}: {msg}");
    ExitCode::FAILURE
}

/// Checks one `{key: number}` object: every value a finite number, and —
/// when `counters` — a non-negative integer. Returns the offending message.
fn check_numbers(obj: &JsonValue, what: &str, counters: bool) -> Result<(), String> {
    let Some(fields) = obj.as_obj() else {
        return Err(format!("{what} is not an object"));
    };
    for (k, v) in fields {
        match v {
            JsonValue::U64(_) => {}
            JsonValue::F64(f) if !counters && f.is_finite() => {}
            JsonValue::Null => {
                // The writer emits null for NaN/Inf — a bench leaked a
                // non-finite float.
                return Err(format!("{what}.{k} is null (non-finite value)"));
            }
            _ => {
                return Err(format!(
                    "{what}.{k} is not a {}",
                    if counters {
                        "non-negative integer"
                    } else {
                        "finite number"
                    }
                ));
            }
        }
    }
    Ok(())
}

/// Every `*.shardN.acked` counter must have a sibling `*.shardN.issued`
/// that is at least as large: acks can lag issues, never lead them.
fn check_shard_monotonicity(counters: &JsonValue) -> Result<(), String> {
    let Some(fields) = counters.as_obj() else {
        return Ok(());
    };
    for (k, v) in fields {
        let Some(base) = k.strip_suffix(".acked") else {
            continue;
        };
        let Some(acked) = v.as_u64() else { continue };
        let issued_key = format!("{base}.issued");
        let Some(issued) = counters.get(&issued_key).and_then(|x| x.as_u64()) else {
            return Err(format!("{k} has no sibling {issued_key}"));
        };
        if acked > issued {
            return Err(format!("{k}={acked} exceeds {issued_key}={issued}"));
        }
    }
    Ok(())
}

/// Scenarios carrying transaction counters (`txn.*`, the txnmix sweep)
/// must keep the lifecycle accounting consistent: every commit attempt
/// either committed or aborted, never both, so `committed <= started`,
/// `aborted <= started`, and `committed + aborted <= started` (in-flight
/// transactions make it strict). `txn.lock_retries` only needs to be a
/// non-negative integer, which `check_numbers` already enforces.
fn check_txn_counters(counters: &JsonValue) -> Result<(), String> {
    let Some(started) = counters.get("txn.started").and_then(|v| v.as_u64()) else {
        return Ok(());
    };
    let committed = counters
        .get("txn.committed")
        .and_then(|v| v.as_u64())
        .ok_or("txn.started present but txn.committed missing")?;
    let aborted = counters
        .get("txn.aborted")
        .and_then(|v| v.as_u64())
        .ok_or("txn.started present but txn.aborted missing")?;
    counters
        .get("txn.lock_retries")
        .and_then(|v| v.as_u64())
        .ok_or("txn.started present but txn.lock_retries missing")?;
    if committed > started {
        return Err(format!(
            "txn.committed={committed} exceeds txn.started={started}"
        ));
    }
    if aborted > started {
        return Err(format!(
            "txn.aborted={aborted} exceeds txn.started={started}"
        ));
    }
    if committed + aborted > started {
        return Err(format!(
            "txn.committed={committed} + txn.aborted={aborted} exceeds txn.started={started}"
        ));
    }
    Ok(())
}

/// The three abort root causes — the closed set mirrored from
/// `hyperloop::txn::AbortCause::label`.
const ABORT_CAUSES: [&str; 3] = ["lock_conflict", "validation_failed", "backoff_exhausted"];

/// The per-site contention fields; the global roll-up adds
/// `contended_sites` on top of these.
const CONTENTION_FIELDS: [&str; 7] = [
    "attempts",
    "cas_failures",
    "conflicts",
    "false_conflicts",
    "wait_ns",
    "backoff_retries",
    "queue_depth_hwm",
];

/// `txn.contention.site.` suffix grammar: `s<digits>.l<digits>.<field>`
/// with the field drawn from [`CONTENTION_FIELDS`].
fn valid_site_key(rest: &str) -> bool {
    let Some(rest) = rest.strip_prefix('s') else {
        return false;
    };
    let Some(dot) = rest.find('.') else {
        return false;
    };
    let (shard, rest) = rest.split_at(dot);
    if shard.is_empty() || !shard.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let Some(rest) = rest[1..].strip_prefix('l') else {
        return false;
    };
    let Some(dot) = rest.find('.') else {
        return false;
    };
    let (lock, field) = rest.split_at(dot);
    if lock.is_empty() || !lock.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    CONTENTION_FIELDS.contains(&&field[1..])
}

/// The txnscope gate over registry counters: abort-cause counters form a
/// closed set summing to `txn.aborted`; a scenario that started at least
/// one transaction must carry the whole `txn.contention.*` roll-up (a
/// missing contention block can hide a lock fight); site keys follow the
/// `s<shard>.l<lock>.<field>` grammar; and false conflicts never exceed
/// conflicts, globally or per site.
fn check_txn_observability(counters: &JsonValue) -> Result<(), String> {
    let Some(started) = counters.get("txn.started").and_then(|v| v.as_u64()) else {
        return Ok(());
    };
    let aborted = counters
        .get("txn.aborted")
        .and_then(|v| v.as_u64())
        .ok_or("txn.started present but txn.aborted missing")?;
    let mut cause_sum = 0u64;
    for cause in ABORT_CAUSES {
        let key = format!("txn.abort_causes.{cause}");
        let n = counters
            .get(&key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("txn.started present but {key} missing"))?;
        cause_sum += n;
    }
    if cause_sum != aborted {
        return Err(format!(
            "txn.abort_causes.* sum to {cause_sum} but txn.aborted={aborted} — \
             an abort escaped root-cause attribution"
        ));
    }
    for k in ["parks", "delay_ns"] {
        counters
            .get(&format!("txn.backoff.{k}"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("txn.started present but txn.backoff.{k} missing"))?;
    }
    if started > 0 {
        for f in CONTENTION_FIELDS.iter().chain(&["contended_sites"]) {
            counters
                .get(&format!("txn.contention.{f}"))
                .and_then(|v| v.as_u64())
                .ok_or_else(|| {
                    format!("txn.started={started} > 0 but txn.contention.{f} is absent")
                })?;
        }
    }
    let Some(fields) = counters.as_obj() else {
        return Ok(());
    };
    for (k, _) in fields {
        if let Some(rest) = k.strip_prefix("txn.abort_causes.") {
            if !ABORT_CAUSES.contains(&rest) {
                return Err(format!("{k} is outside the closed abort-cause set"));
            }
        } else if let Some(rest) = k.strip_prefix("txn.backoff.") {
            if !matches!(rest, "parks" | "delay_ns") {
                return Err(format!("{k} is outside the closed backoff key set"));
            }
        } else if let Some(rest) = k.strip_prefix("txn.contention.site.") {
            if !valid_site_key(rest) {
                return Err(format!(
                    "{k} does not match txn.contention.site.s<shard>.l<lock>.<field>"
                ));
            }
        } else if let Some(rest) = k.strip_prefix("txn.contention.") {
            if !CONTENTION_FIELDS.contains(&rest) && rest != "contended_sites" {
                return Err(format!("{k} is outside the closed contention key set"));
            }
        }
    }
    // False conflicts are a subset of conflicts by construction; a report
    // claiming otherwise mislabeled a real collision.
    for (k, v) in fields {
        let Some(base) = k.strip_suffix(".false_conflicts") else {
            continue;
        };
        if !base.starts_with("txn.contention") {
            continue;
        }
        let Some(fc) = v.as_u64() else { continue };
        let conflicts_key = format!("{base}.conflicts");
        let conflicts = counters
            .get(&conflicts_key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("{k} has no sibling {conflicts_key}"))?;
        if fc > conflicts {
            return Err(format!("{k}={fc} exceeds {conflicts_key}={conflicts}"));
        }
    }
    Ok(())
}

/// A `txn_breakdown` block must tile like stage attribution: the sum of
/// per-phase mean contributions equals the mean end-to-end commit
/// latency, within 1 ns.
fn check_txn_breakdown(att: &JsonValue) -> Result<(), String> {
    let mean = att.get("mean_e2e_ns").and_then(|v| v.as_f64());
    let sum = att.get("phase_mean_sum_ns").and_then(|v| v.as_f64());
    let (Some(mean), Some(sum)) = (mean, sum) else {
        return Err("txn_breakdown lacks mean_e2e_ns/phase_mean_sum_ns".into());
    };
    if !mean.is_finite() || !sum.is_finite() {
        return Err("txn_breakdown means are non-finite".into());
    }
    if (mean - sum).abs() > 1.0 {
        return Err(format!(
            "txn phase means do not tile e2e: mean_e2e_ns={mean} vs phase_mean_sum_ns={sum}"
        ));
    }
    Ok(())
}

/// An `abort_causes` block: closed cause set plus `total`, causes sum to
/// `total`, and `total` agrees with the `txn.aborted` registry counter
/// when the scenario carries one.
fn check_abort_causes(ac: &JsonValue, counters: Option<&JsonValue>) -> Result<(), String> {
    let fields = ac.as_obj().ok_or("abort_causes is not an object")?;
    let mut sum = 0u64;
    let mut total = None;
    for (k, v) in fields {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("abort_causes.{k} is not a non-negative integer"))?;
        if k == "total" {
            total = Some(n);
        } else if ABORT_CAUSES.contains(&k.as_str()) {
            sum += n;
        } else {
            return Err(format!("abort_causes.{k} is outside the closed key set"));
        }
    }
    for cause in ABORT_CAUSES {
        if ac.get(cause).is_none() {
            return Err(format!("abort_causes.{cause} is missing"));
        }
    }
    let total = total.ok_or("abort_causes.total is missing")?;
    if sum != total {
        return Err(format!(
            "abort_causes sum to {sum} but abort_causes.total={total}"
        ));
    }
    if let Some(aborted) = counters
        .and_then(|c| c.get("txn.aborted"))
        .and_then(|v| v.as_u64())
    {
        if total != aborted {
            return Err(format!(
                "abort_causes.total={total} disagrees with txn.aborted={aborted}"
            ));
        }
    }
    Ok(())
}

/// A `health` block must be well-formed — violation/breach totals as
/// non-negative integers, per-shard states drawn from the closed enum,
/// finite latency numbers — and must report zero invariant violations: a
/// violation means an auditor watched the run break one of the paper's
/// guarantees, and that fails the gate outright.
fn check_health(h: &JsonValue) -> Result<(), String> {
    let violations = h
        .get("violations")
        .and_then(|v| v.as_u64())
        .ok_or("health.violations is not a non-negative integer")?;
    h.get("breaches")
        .and_then(|v| v.as_u64())
        .ok_or("health.breaches is not a non-negative integer")?;
    let shards = h
        .get("shards")
        .and_then(|v| v.as_arr())
        .ok_or("health.shards is not an array")?;
    for s in shards {
        let shard = s
            .get("shard")
            .and_then(|v| v.as_u64())
            .ok_or("health.shards[].shard is not a non-negative integer")?;
        let state = s
            .get("state")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("health shard {shard} has no state string"))?;
        if !matches!(state, "healthy" | "degraded" | "stalled") {
            return Err(format!(
                "health shard {shard} state {state:?} is outside the closed enum"
            ));
        }
        for key in ["acks", "p50_ns", "p99_ns", "breaches"] {
            s.get(key).and_then(|v| v.as_u64()).ok_or_else(|| {
                format!("health shard {shard} field {key} is not a non-negative integer")
            })?;
        }
    }
    if violations > 0 {
        return Err(format!(
            "{violations} invariant violation(s) — an auditor caught the run misbehaving"
        ));
    }
    Ok(())
}

/// The seven tail root causes in precedence order — the closed set
/// mirrored from `simcore::tailprof::CAUSE_LABELS`.
const TAIL_CAUSES: [&str; 7] = [
    "migration_pause",
    "txn_backoff",
    "lock_wait",
    "replica_straggler",
    "queue_wait",
    "flow_control_stall",
    "residual",
];

/// Reads a signed nanosecond field. The writer emits negative excesses as
/// JSON integers, which the reader parses back as F64 — accept both.
fn signed_ns(obj: &JsonValue, key: &str) -> Option<f64> {
    match obj.get(key)? {
        JsonValue::U64(u) => Some(*u as f64),
        JsonValue::F64(f) if f.is_finite() => Some(*f),
        _ => None,
    }
}

/// The tailscope `tail` block: closed key sets at every level, causes
/// summing exactly to the tail-op count, exemplars at-or-beyond the p99
/// (and above the median) ordered slowest first, and the excess-tiling
/// contract (stage excess rows plus the residual tile `e2e − median_e2e`
/// within 1 ns).
fn check_tail(t: &JsonValue) -> Result<(), String> {
    const KEYS: [&str; 6] = [
        "ops",
        "tail_ops",
        "p99_ns",
        "median_e2e_ns",
        "causes",
        "exemplars",
    ];
    let fields = t.as_obj().ok_or("tail is not an object")?;
    for (k, _) in fields {
        if !KEYS.contains(&k.as_str()) {
            return Err(format!("tail.{k} is outside the closed key set"));
        }
    }
    let mut nums = [0u64; 4];
    for (i, k) in ["ops", "tail_ops", "p99_ns", "median_e2e_ns"]
        .into_iter()
        .enumerate()
    {
        nums[i] = t
            .get(k)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("tail.{k} is not a non-negative integer"))?;
    }
    let [ops, tail_ops, p99_ns, median_e2e_ns] = nums;
    if tail_ops > ops {
        return Err(format!("tail.tail_ops={tail_ops} exceeds tail.ops={ops}"));
    }
    let causes = t.get("causes").ok_or("tail.causes is missing")?;
    let cause_fields = causes.as_obj().ok_or("tail.causes is not an object")?;
    let mut cause_sum = 0u64;
    for (k, v) in cause_fields {
        if !TAIL_CAUSES.contains(&k.as_str()) {
            return Err(format!("tail.causes.{k} is outside the closed cause set"));
        }
        cause_sum += v
            .as_u64()
            .ok_or_else(|| format!("tail.causes.{k} is not a non-negative integer"))?;
    }
    for c in TAIL_CAUSES {
        if causes.get(c).is_none() {
            return Err(format!("tail.causes.{c} is missing"));
        }
    }
    if cause_sum != tail_ops {
        return Err(format!(
            "tail.causes.* sum to {cause_sum} but tail.tail_ops={tail_ops} — \
             a tail op escaped root-cause attribution"
        ));
    }
    let exemplars = t
        .get("exemplars")
        .and_then(|v| v.as_arr())
        .ok_or("tail.exemplars is not an array")?;
    if exemplars.len() as u64 > tail_ops {
        return Err(format!(
            "tail carries {} exemplars for {tail_ops} tail ops",
            exemplars.len()
        ));
    }
    const EX_KEYS: [&str; 9] = [
        "op",
        "shard",
        "start_ns",
        "e2e_ns",
        "excess_ns",
        "cause",
        "cause_arg",
        "stages",
        "residual_ns",
    ];
    let mut prev_e2e = u64::MAX;
    for (i, ex) in exemplars.iter().enumerate() {
        let what = format!("tail.exemplars[{i}]");
        let ex_fields = ex
            .as_obj()
            .ok_or_else(|| format!("{what} is not an object"))?;
        for (k, _) in ex_fields {
            if !EX_KEYS.contains(&k.as_str()) {
                return Err(format!("{what}.{k} is outside the closed key set"));
            }
        }
        for k in ["op", "shard", "start_ns", "e2e_ns", "cause_arg"] {
            ex.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("{what}.{k} is not a non-negative integer"))?;
        }
        let e2e = ex.get("e2e_ns").and_then(|v| v.as_u64()).unwrap();
        if e2e < p99_ns {
            return Err(format!("{what}.e2e_ns={e2e} is below tail.p99_ns={p99_ns}"));
        }
        if e2e <= median_e2e_ns {
            return Err(format!(
                "{what}.e2e_ns={e2e} does not exceed tail.median_e2e_ns={median_e2e_ns}"
            ));
        }
        if e2e > prev_e2e {
            return Err(format!("{what} is out of slowest-first order"));
        }
        prev_e2e = e2e;
        let cause = ex
            .get("cause")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{what}.cause is not a string"))?;
        if !TAIL_CAUSES.contains(&cause) {
            return Err(format!(
                "{what}.cause {cause:?} is outside the closed cause set"
            ));
        }
        let excess = signed_ns(ex, "excess_ns")
            .ok_or_else(|| format!("{what}.excess_ns is not a finite number"))?;
        let residual = signed_ns(ex, "residual_ns")
            .ok_or_else(|| format!("{what}.residual_ns is not a finite number"))?;
        let expect_excess = e2e as f64 - median_e2e_ns as f64;
        if (excess - expect_excess).abs() > 1.0 {
            return Err(format!(
                "{what}.excess_ns={excess} but e2e_ns − median_e2e_ns = {expect_excess}"
            ));
        }
        let stages = ex
            .get("stages")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("{what}.stages is not an array"))?;
        let mut explained = 0.0f64;
        for (j, st) in stages.iter().enumerate() {
            let swhat = format!("{what}.stages[{j}]");
            let st_fields = st
                .as_obj()
                .ok_or_else(|| format!("{swhat} is not an object"))?;
            for (k, _) in st_fields {
                if !matches!(
                    k.as_str(),
                    "label" | "actual_ns" | "median_ns" | "excess_ns"
                ) {
                    return Err(format!("{swhat}.{k} is outside the closed key set"));
                }
            }
            st.get("label")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{swhat}.label is not a string"))?;
            for k in ["actual_ns", "median_ns"] {
                st.get(k)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("{swhat}.{k} is not a non-negative integer"))?;
            }
            explained += signed_ns(st, "excess_ns")
                .ok_or_else(|| format!("{swhat}.excess_ns is not a finite number"))?;
        }
        if (explained + residual - excess).abs() > 1.0 {
            return Err(format!(
                "{what} stage excesses ({explained}) + residual ({residual}) \
                 do not tile excess_ns ({excess})"
            ));
        }
    }
    Ok(())
}

/// The tailscope `series` block: closed key sets, strictly monotonic
/// per-shard sample timestamps, and finite sample values.
fn check_series(se: &JsonValue) -> Result<(), String> {
    let fields = se.as_obj().ok_or("series is not an object")?;
    for (k, _) in fields {
        if !matches!(k.as_str(), "bucket_ns" | "shards") {
            return Err(format!("series.{k} is outside the closed key set"));
        }
    }
    se.get("bucket_ns")
        .and_then(|v| v.as_u64())
        .ok_or("series.bucket_ns is not a non-negative integer")?;
    let shards = se
        .get("shards")
        .and_then(|v| v.as_arr())
        .ok_or("series.shards is not an array")?;
    for sh in shards {
        let sh_fields = sh.as_obj().ok_or("series.shards[] is not an object")?;
        for (k, _) in sh_fields {
            if !matches!(k.as_str(), "shard" | "points") {
                return Err(format!("series.shards[].{k} is outside the closed key set"));
            }
        }
        let shard = sh
            .get("shard")
            .and_then(|v| v.as_u64())
            .ok_or("series.shards[].shard is not a non-negative integer")?;
        let points = sh
            .get("points")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("series shard {shard} points is not an array"))?;
        let mut prev_t: Option<u64> = None;
        for (i, p) in points.iter().enumerate() {
            let what = format!("series shard {shard} point {i}");
            let p_fields = p
                .as_obj()
                .ok_or_else(|| format!("{what} is not an object"))?;
            for (k, _) in p_fields {
                if !matches!(
                    k.as_str(),
                    "t_ns" | "ops_per_sec" | "p50_ns" | "p99_ns" | "inflight" | "pen"
                ) {
                    return Err(format!("{what}.{k} is outside the closed key set"));
                }
            }
            let t = p
                .get("t_ns")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("{what}.t_ns is not a non-negative integer"))?;
            if let Some(prev) = prev_t {
                if t <= prev {
                    return Err(format!(
                        "{what}.t_ns={t} is not strictly after the previous sample at {prev}"
                    ));
                }
            }
            prev_t = Some(t);
            let ops = p
                .get("ops_per_sec")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{what}.ops_per_sec is not a finite number"))?;
            if !ops.is_finite() || ops < 0.0 {
                return Err(format!("{what}.ops_per_sec = {ops} is not finite and >= 0"));
            }
            for k in ["p50_ns", "p99_ns", "inflight", "pen"] {
                p.get(k)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("{what}.{k} is not a non-negative integer"))?;
            }
        }
    }
    Ok(())
}

/// Requires `key` to be a finite, strictly positive number (U64 or F64).
fn positive_number(obj: &JsonValue, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("host.{key} is missing"))?;
    let n = match v {
        JsonValue::U64(u) => *u as f64,
        JsonValue::F64(f) => *f,
        JsonValue::Null => return Err(format!("host.{key} is null (non-finite value)")),
        _ => return Err(format!("host.{key} is not a number")),
    };
    if !n.is_finite() || n <= 0.0 {
        return Err(format!("host.{key} = {n} is not finite and positive"));
    }
    Ok(n)
}

/// The `host` block: closed key set, finite positive rates, balanced
/// queue counters. Every scenario must carry one — a report without host
/// statistics cannot be gated on simulator speed.
fn check_host(h: &JsonValue) -> Result<(), String> {
    const KEYS: [&str; 10] = [
        "wall_ms",
        "ops_per_sec",
        "events_per_sec",
        "sim_ns_per_wall_ms",
        "ops",
        "sim_ns",
        "alloc_bytes",
        "queue",
        "alloc",
        "obs_tax",
    ];
    let fields = h.as_obj().ok_or("host is not an object")?;
    for (k, _) in fields {
        if !KEYS.contains(&k.as_str()) {
            return Err(format!("host.{k} is outside the closed key set"));
        }
    }
    for k in KEYS {
        if h.get(k).is_none() {
            return Err(format!("host.{k} is missing"));
        }
    }
    for k in [
        "wall_ms",
        "ops_per_sec",
        "events_per_sec",
        "sim_ns_per_wall_ms",
    ] {
        positive_number(h, k)?;
    }
    for k in ["ops", "sim_ns", "alloc_bytes"] {
        h.get(k)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("host.{k} is not a non-negative integer"))?;
    }
    let queue = h.get("queue").unwrap();
    check_numbers(queue, "host.queue", true)?;
    let pushed = queue
        .get("pushed")
        .and_then(|v| v.as_u64())
        .ok_or("host.queue.pushed is missing")?;
    let popped = queue
        .get("popped")
        .and_then(|v| v.as_u64())
        .ok_or("host.queue.popped is missing")?;
    queue
        .get("max_depth")
        .and_then(|v| v.as_u64())
        .ok_or("host.queue.max_depth is missing")?;
    if popped > pushed {
        return Err(format!(
            "host.queue.popped={popped} exceeds host.queue.pushed={pushed}"
        ));
    }
    let alloc = h.get("alloc").unwrap();
    check_numbers(alloc, "host.alloc", true)?;
    for k in ["allocs", "frees", "reallocs", "alloc_bytes", "freed_bytes"] {
        alloc
            .get(k)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("host.alloc.{k} is missing"))?;
    }
    let tax = h.get("obs_tax").unwrap();
    let obj = tax.as_obj().ok_or("host.obs_tax is not an object")?;
    for (k, _) in obj {
        if !matches!(
            k.as_str(),
            "observed_wall_ms" | "bare_wall_ms" | "overhead_pct"
        ) {
            return Err(format!("host.obs_tax.{k} is outside the closed key set"));
        }
    }
    for k in ["observed_wall_ms", "bare_wall_ms"] {
        let v = tax
            .get(k)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("host.obs_tax.{k} is missing"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("host.obs_tax.{k} = {v} is not finite and positive"));
        }
    }
    let pct = tax
        .get("overhead_pct")
        .and_then(|v| v.as_f64())
        .ok_or("host.obs_tax.overhead_pct is missing")?;
    // Negative tax is machine noise; non-finite tax is a bug.
    if !pct.is_finite() {
        return Err(format!("host.obs_tax.overhead_pct = {pct} is not finite"));
    }
    Ok(())
}

/// A scenario with stage attribution must tile: sum of per-stage mean
/// contributions == mean end-to-end latency, within 1 ns.
fn check_attribution(att: &JsonValue) -> Result<(), String> {
    let mean = att.get("mean_e2e_ns").and_then(|v| v.as_f64());
    let sum = att.get("stage_mean_sum_ns").and_then(|v| v.as_f64());
    let (Some(mean), Some(sum)) = (mean, sum) else {
        return Err("stage_attribution lacks mean_e2e_ns/stage_mean_sum_ns".into());
    };
    if !mean.is_finite() || !sum.is_finite() {
        return Err("stage_attribution means are non-finite".into());
    }
    if (mean - sum).abs() > 1.0 {
        return Err(format!(
            "stage means do not tile e2e: mean_e2e_ns={mean} vs stage_mean_sum_ns={sum}"
        ));
    }
    Ok(())
}

/// Loads `name -> <block>.<key>` from a baseline report.
fn load_metric(path: &str, block: &str, key: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let root = parse(&text).map_err(|e| format!("malformed JSON: {e}"))?;
    let scenarios = root
        .get("scenarios")
        .and_then(|v| v.as_arr())
        .ok_or("no scenarios array")?;
    let mut out = BTreeMap::new();
    for s in scenarios {
        if let (Some(name), Some(v)) = (
            s.get("name").and_then(|v| v.as_str()),
            s.get(block)
                .and_then(|g| g.get(key))
                .and_then(|v| v.as_f64()),
        ) {
            out.insert(name.to_string(), v);
        }
    }
    Ok(out)
}

/// Loads `name -> ops_per_sec` from a baseline report. `host` reads the
/// gauge from the `host` block instead of `gauges`.
fn load_baseline(path: &str, host: bool) -> Result<BTreeMap<String, f64>, String> {
    load_metric(path, if host { "host" } else { "gauges" }, "ops_per_sec")
}

fn check_file(
    path: &str,
    baseline: Option<&BTreeMap<String, f64>>,
    p99_baseline: Option<&BTreeMap<String, f64>>,
    host_baseline: Option<&BTreeMap<String, f64>>,
) -> Result<usize, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("benchcheck: {path}: {e}");
        ExitCode::FAILURE
    })?;
    let root = parse(&text).map_err(|e| {
        eprintln!("benchcheck: {path}: malformed JSON: {e}");
        ExitCode::FAILURE
    })?;
    let schema = root.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "hyperloop-bench/v1" {
        eprintln!("benchcheck: {path}: unknown schema {schema:?}");
        return Err(ExitCode::FAILURE);
    }
    let Some(scenarios) = root.get("scenarios").and_then(|v| v.as_arr()) else {
        eprintln!("benchcheck: {path}: no scenarios array");
        return Err(ExitCode::FAILURE);
    };
    if scenarios.is_empty() {
        eprintln!("benchcheck: {path}: report carries zero scenarios");
        return Err(ExitCode::FAILURE);
    }
    for s in scenarios {
        let name = s
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or("<unnamed>");
        if name == "<unnamed>" {
            return Err(fail(path, name, "scenario has no name"));
        }
        if let Some(lat) = s.get("latency") {
            check_numbers(lat, "latency", true).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(g) = s.get("gauges") {
            check_numbers(g, "gauges", false).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(h) = s.get("health") {
            check_health(h).map_err(|m| fail(path, name, &m))?;
        }
        match s.get("host") {
            Some(h) => check_host(h).map_err(|m| fail(path, name, &m))?,
            None => {
                return Err(fail(
                    path,
                    name,
                    "scenario has no host block (wall-clock self-profile)",
                ))
            }
        }
        if let Some(metrics) = s.get("metrics") {
            if let Some(c) = metrics.get("counters") {
                check_numbers(c, "metrics.counters", true).map_err(|m| fail(path, name, &m))?;
                check_shard_monotonicity(c).map_err(|m| fail(path, name, &m))?;
                check_txn_counters(c).map_err(|m| fail(path, name, &m))?;
                check_txn_observability(c).map_err(|m| fail(path, name, &m))?;
                // The audit total rides in the registry snapshot too — a
                // report without a health block still cannot hide one.
                if let Some(v) = c.get("audit.violations").and_then(|v| v.as_u64()) {
                    if v > 0 {
                        return Err(fail(
                            path,
                            name,
                            &format!("audit.violations counter is {v}, expected 0"),
                        ));
                    }
                }
            }
            if let Some(g) = metrics.get("gauges") {
                check_numbers(g, "metrics.gauges", false).map_err(|m| fail(path, name, &m))?;
            }
            if let Some(h) = metrics.get("histograms") {
                for (k, v) in h.as_obj().unwrap_or(&[]) {
                    check_numbers(v, &format!("metrics.histograms.{k}"), true)
                        .map_err(|m| fail(path, name, &m))?;
                }
            }
        }
        // The tailscope blocks: mandatory on every quick-figures scenario,
        // validated wherever they appear.
        let needs_tailscope = ["shardscale/", "migrate/", "hostperf/", "txnmix/"]
            .iter()
            .any(|p| name.starts_with(p));
        if needs_tailscope && s.get("tail").is_none() {
            return Err(fail(path, name, "scenario has no tail block"));
        }
        if needs_tailscope && s.get("series").is_none() {
            return Err(fail(path, name, "scenario has no series block"));
        }
        if let Some(t) = s.get("tail") {
            check_tail(t).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(se) = s.get("series") {
            check_series(se).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(att) = s.get("stage_attribution") {
            check_attribution(att).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(att) = s.get("txn_breakdown") {
            check_txn_breakdown(att).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(ac) = s.get("abort_causes") {
            let counters = s.get("metrics").and_then(|m| m.get("counters"));
            check_abort_causes(ac, counters).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(base) = baseline {
            if let (Some(expected), Some(got)) = (
                base.get(name),
                s.get("gauges")
                    .and_then(|g| g.get("ops_per_sec"))
                    .and_then(|v| v.as_f64()),
            ) {
                let threshold = expected * 0.75;
                if got < threshold {
                    return Err(fail(
                        path,
                        name,
                        &format!(
                            "throughput regression in scenario {name:?}, metric gauges.ops_per_sec: \
                             measured {got:.0} ops/s is below the threshold {threshold:.0} ops/s \
                             (75% of baseline {expected:.0} ops/s)"
                        ),
                    ));
                }
            }
        }
        if let Some(base) = p99_baseline {
            if let (Some(&expected), Some(got)) = (
                base.get(name),
                s.get("latency")
                    .and_then(|l| l.get("p99_ns"))
                    .and_then(|v| v.as_f64()),
            ) {
                if expected > 0.0 {
                    let fail_at = expected * 3.0;
                    let warn_at = expected * 1.5;
                    if got >= fail_at {
                        return Err(fail(
                            path,
                            name,
                            &format!(
                                "tail-latency regression in scenario {name:?}, metric \
                                 latency.p99_ns: measured {got:.0} ns is at or above \
                                 {fail_at:.0} ns (3x baseline {expected:.0} ns)"
                            ),
                        ));
                    } else if got >= warn_at {
                        eprintln!(
                            "benchcheck: {path}: scenario {name:?}: warning: latency.p99_ns \
                             {got:.0} is at or above 1.5x the baseline {expected:.0} ns \
                             (soft ceiling {warn_at:.0}); not failing, but the tail is growing"
                        );
                    }
                }
            }
        }
        if let Some(base) = host_baseline {
            if let (Some(expected), Some(got)) = (
                base.get(name),
                s.get("host")
                    .and_then(|h| h.get("ops_per_sec"))
                    .and_then(|v| v.as_f64()),
            ) {
                let fail_below = expected * 0.5;
                let warn_below = expected * 0.9;
                if got < fail_below {
                    return Err(fail(
                        path,
                        name,
                        &format!(
                            "host throughput regression in scenario {name:?}, metric host.ops_per_sec: \
                             measured {got:.0} ops/s is below the threshold {fail_below:.0} ops/s \
                             (50% of host baseline {expected:.0} ops/s)"
                        ),
                    ));
                } else if got < warn_below {
                    eprintln!(
                        "benchcheck: {path}: scenario {name:?}: warning: host.ops_per_sec \
                         {got:.0} is below 90% of the host baseline {expected:.0} ops/s \
                         (soft floor {warn_below:.0}); not failing, but the fastpath is eroding"
                    );
                }
            }
        }
    }
    Ok(scenarios.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut host_baseline_path: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--baseline" {
            baseline_path = it.next();
        } else if a == "--host-baseline" {
            host_baseline_path = it.next();
        } else {
            paths.push(a);
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: benchcheck [--baseline BENCH_BASELINE.json] \
             [--host-baseline BENCH_BASELINE.json] <BENCH_*.json> ..."
        );
        return ExitCode::FAILURE;
    }
    let baseline = match baseline_path.as_deref().map(|p| load_baseline(p, false)) {
        None => None,
        Some(Ok(b)) => {
            println!("benchcheck: baseline covers {} scenarios", b.len());
            Some(b)
        }
        Some(Err(e)) => {
            eprintln!("benchcheck: baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let p99_baseline = match baseline_path
        .as_deref()
        .map(|p| load_metric(p, "latency", "p99_ns"))
    {
        None => None,
        Some(Ok(b)) => {
            println!("benchcheck: p99 baseline covers {} scenarios", b.len());
            Some(b)
        }
        Some(Err(e)) => {
            eprintln!("benchcheck: p99 baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let host_baseline = match host_baseline_path
        .as_deref()
        .map(|p| load_baseline(p, true))
    {
        None => None,
        Some(Ok(b)) => {
            println!("benchcheck: host baseline covers {} scenarios", b.len());
            Some(b)
        }
        Some(Err(e)) => {
            eprintln!("benchcheck: host baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    for path in &paths {
        match check_file(
            path,
            baseline.as_ref(),
            p99_baseline.as_ref(),
            host_baseline.as_ref(),
        ) {
            Ok(n) => println!("benchcheck: {path}: ok ({n} scenarios)"),
            Err(code) => return code,
        }
    }
    ExitCode::SUCCESS
}
