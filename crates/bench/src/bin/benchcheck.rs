//! Validates machine-readable `BENCH_*.json` reports.
//!
//! ```text
//! cargo run --release -p hyperloop-bench --bin benchcheck -- out/BENCH_figures.json ...
//! ```
//!
//! A report that parses but carries garbage is worse than no report: a
//! `null` where a gauge should be means a NaN/Inf leaked out of a bench,
//! a negative or fractional counter means the registry was corrupted, and
//! a shard that acked more than it issued means the accounting
//! double-counted (the failure mode the `export_into` snapshot fix
//! guards). This checker walks every scenario with
//! [`simcore::jsonw::parse`] and fails loudly on any of those, so CI can
//! gate on the reports the figures binary writes.

use simcore::jsonw::{parse, JsonValue};
use std::process::ExitCode;

/// One validation failure, located well enough to grep the report.
fn fail(path: &str, scenario: &str, msg: &str) -> ExitCode {
    eprintln!("benchcheck: {path}: scenario {scenario:?}: {msg}");
    ExitCode::FAILURE
}

/// Checks one `{key: number}` object: every value a finite number, and —
/// when `counters` — a non-negative integer. Returns the offending message.
fn check_numbers(obj: &JsonValue, what: &str, counters: bool) -> Result<(), String> {
    let Some(fields) = obj.as_obj() else {
        return Err(format!("{what} is not an object"));
    };
    for (k, v) in fields {
        match v {
            JsonValue::U64(_) => {}
            JsonValue::F64(f) if !counters && f.is_finite() => {}
            JsonValue::Null => {
                // The writer emits null for NaN/Inf — a bench leaked a
                // non-finite float.
                return Err(format!("{what}.{k} is null (non-finite value)"));
            }
            _ => {
                return Err(format!(
                    "{what}.{k} is not a {}",
                    if counters {
                        "non-negative integer"
                    } else {
                        "finite number"
                    }
                ));
            }
        }
    }
    Ok(())
}

/// Every `*.shardN.acked` counter must have a sibling `*.shardN.issued`
/// that is at least as large: acks can lag issues, never lead them.
fn check_shard_monotonicity(counters: &JsonValue) -> Result<(), String> {
    let Some(fields) = counters.as_obj() else {
        return Ok(());
    };
    for (k, v) in fields {
        let Some(base) = k.strip_suffix(".acked") else {
            continue;
        };
        let Some(acked) = v.as_u64() else { continue };
        let issued_key = format!("{base}.issued");
        let Some(issued) = counters.get(&issued_key).and_then(|x| x.as_u64()) else {
            return Err(format!("{k} has no sibling {issued_key}"));
        };
        if acked > issued {
            return Err(format!("{k}={acked} exceeds {issued_key}={issued}"));
        }
    }
    Ok(())
}

fn check_file(path: &str) -> Result<usize, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("benchcheck: {path}: {e}");
        ExitCode::FAILURE
    })?;
    let root = parse(&text).map_err(|e| {
        eprintln!("benchcheck: {path}: malformed JSON: {e}");
        ExitCode::FAILURE
    })?;
    let schema = root.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "hyperloop-bench/v1" {
        eprintln!("benchcheck: {path}: unknown schema {schema:?}");
        return Err(ExitCode::FAILURE);
    }
    let Some(scenarios) = root.get("scenarios").and_then(|v| v.as_arr()) else {
        eprintln!("benchcheck: {path}: no scenarios array");
        return Err(ExitCode::FAILURE);
    };
    if scenarios.is_empty() {
        eprintln!("benchcheck: {path}: report carries zero scenarios");
        return Err(ExitCode::FAILURE);
    }
    for s in scenarios {
        let name = s
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or("<unnamed>");
        if name == "<unnamed>" {
            return Err(fail(path, name, "scenario has no name"));
        }
        if let Some(lat) = s.get("latency") {
            check_numbers(lat, "latency", true).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(g) = s.get("gauges") {
            check_numbers(g, "gauges", false).map_err(|m| fail(path, name, &m))?;
        }
        if let Some(metrics) = s.get("metrics") {
            if let Some(c) = metrics.get("counters") {
                check_numbers(c, "metrics.counters", true).map_err(|m| fail(path, name, &m))?;
                check_shard_monotonicity(c).map_err(|m| fail(path, name, &m))?;
            }
            if let Some(g) = metrics.get("gauges") {
                check_numbers(g, "metrics.gauges", false).map_err(|m| fail(path, name, &m))?;
            }
            if let Some(h) = metrics.get("histograms") {
                for (k, v) in h.as_obj().unwrap_or(&[]) {
                    check_numbers(v, &format!("metrics.histograms.{k}"), true)
                        .map_err(|m| fail(path, name, &m))?;
                }
            }
        }
    }
    Ok(scenarios.len())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: benchcheck <BENCH_*.json> ...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        match check_file(path) {
            Ok(n) => println!("benchcheck: {path}: ok ({n} scenarios)"),
            Err(code) => return code,
        }
    }
    ExitCode::SUCCESS
}
