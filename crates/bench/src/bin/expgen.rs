//! Regenerates `EXPERIMENTS.md` from `BENCH_*.json` benchmark reports.
//!
//! ```text
//! expgen <reports-dir> [-o <file.md>] [--check <committed.md>]
//! ```
//!
//! * With `-o`, writes the regenerated document to the file.
//! * With `--check`, regenerates from the available reports and fails
//!   (exit 1) on structural drift against the committed document: missing
//!   generation marker, a regenerated section heading absent from the
//!   committed doc, or a non-finite table cell on either side.
//! * With neither, prints the document to stdout.
//!
//! Any `TRACE_<fig>_<arm>.json` Chrome traces in the same directory are
//! folded in too: their counter tracks (pen depth, window occupancy)
//! become sparkline rows in the matching `<fig>/<arm>` scenario's table.

use hyperloop_bench::exp;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => out = it.next().map(PathBuf::from),
            "--check" => check = it.next().map(PathBuf::from),
            "-h" | "--help" => {
                eprintln!("usage: expgen <reports-dir> [-o <file.md>] [--check <committed.md>]");
                return ExitCode::SUCCESS;
            }
            other => dir = Some(PathBuf::from(other)),
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: expgen <reports-dir> [-o <file.md>] [--check <committed.md>]");
        return ExitCode::FAILURE;
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("expgen: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("expgen: no BENCH_*.json in {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut scns = Vec::new();
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("expgen: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        match exp::parse_report(&text) {
            Ok(mut s) => {
                eprintln!("expgen: {} -> {} scenarios", f.display(), s.len());
                scns.append(&mut s);
            }
            Err(e) => {
                eprintln!("expgen: {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // Fold counter tracks out of any TRACE_*.json sitting next to the
    // reports: `TRACE_<fig>_<arm>.json` attaches to scenario `<fig>/<arm>`
    // (the inverse of the `/` → `_` flattening the trace sink applies).
    let mut traces: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("TRACE_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    traces.sort();
    for t in &traces {
        let stem = t.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let Some(name) = stem
            .strip_prefix("TRACE_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Some((fig, arm)) = name.rsplit_once('_') else {
            continue;
        };
        let scn_name = format!("{fig}/{arm}");
        let Some(scn) = scns.iter_mut().find(|s| s.name == scn_name) else {
            continue;
        };
        let tracks = std::fs::read_to_string(t)
            .map_err(|e| e.to_string())
            .and_then(|text| exp::parse_counter_tracks(&text));
        match tracks {
            Ok(tracks) => {
                eprintln!(
                    "expgen: {} -> {} counter tracks for {scn_name}",
                    t.display(),
                    tracks.len()
                );
                scn.tracks = tracks;
            }
            Err(e) => {
                eprintln!("expgen: {}: {e}", t.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let doc = exp::generate(&scns);

    if let Some(committed_path) = check {
        let committed = match std::fs::read_to_string(&committed_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("expgen: cannot read {}: {e}", committed_path.display());
                return ExitCode::FAILURE;
            }
        };
        return match exp::check(&committed, &doc) {
            Ok(()) => {
                eprintln!(
                    "expgen: {} is structurally consistent with {} report file(s)",
                    committed_path.display(),
                    files.len()
                );
                ExitCode::SUCCESS
            }
            Err(errs) => {
                for e in errs {
                    eprintln!("expgen: DRIFT: {e}");
                }
                eprintln!(
                    "expgen: {} drifted from the reports — regenerate with `expgen {} -o {}`",
                    committed_path.display(),
                    dir.display(),
                    committed_path.display()
                );
                ExitCode::FAILURE
            }
        };
    }

    if let Some(out) = out {
        if let Err(e) = std::fs::write(&out, &doc) {
            eprintln!("expgen: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("expgen: wrote {}", out.display());
    } else {
        print!("{doc}");
    }
    ExitCode::SUCCESS
}
