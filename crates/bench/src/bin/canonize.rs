//! Prints the canonicalized (host-stripped) form of a `BENCH_*.json`
//! report on stdout.
//!
//! ```text
//! cargo run --release -p hyperloop-bench --bin canonize -- out/BENCH_figures.json
//! ```
//!
//! The canonical form is [`simcore::jsonw::canonicalize_report`] — the same
//! transform the in-tree byte-identity tests use — so two same-seed runs
//! must print identical bytes regardless of machine speed, profiling, or
//! allocator behavior. CI diffs the output of a seed checkout against the
//! PR checkout to prove a refactor left every simulated timeline intact.

use simcore::jsonw::canonicalize_report;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: canonize <BENCH_*.json> ...");
        return ExitCode::FAILURE;
    }
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("canonize: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match canonicalize_report(&text) {
            Ok(canon) => println!("{canon}"),
            Err(e) => {
                eprintln!("canonize: {path}: malformed JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
