//! Regenerates the HyperLoop paper's tables and figures.
//!
//! ```text
//! cargo run --release -p hyperloop-bench --bin figures -- all [--quick]
//! cargo run --release -p hyperloop-bench --bin figures -- fig8a table2 ...
//! ```

use hyperloop_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = wanted.is_empty() || wanted.contains(&"all");
    let has = |name: &str| all || wanted.contains(&name);

    if quick {
        println!("(quick mode: reduced op counts; tails are noisier)");
    }
    if has("fig2a") {
        hyperloop_bench::mongo2::fig2a(quick);
    }
    if has("fig2b") {
        hyperloop_bench::mongo2::fig2b(quick);
    }
    if has("fig8a") {
        figures::fig8a(quick);
    }
    if has("fig8b") {
        figures::fig8b(quick);
    }
    if has("table2") {
        figures::table2(quick);
    }
    if has("fig9") {
        figures::fig9(quick);
    }
    if has("fig10") {
        figures::fig10(quick);
    }
    if has("fig11") {
        hyperloop_bench::appbench::fig11(quick);
    }
    if has("fig12") {
        hyperloop_bench::appbench::fig12(quick);
    }
    if has("ablations") || wanted.contains(&"ablations") {
        hyperloop_bench::appbench::ablations(quick);
    }
}
