//! Regenerates the HyperLoop paper's tables and figures.
//!
//! ```text
//! cargo run --release -p hyperloop-bench --bin figures -- all [--quick]
//! cargo run --release -p hyperloop-bench --bin figures -- fig8a table2 ...
//! cargo run --release -p hyperloop-bench --bin figures -- all --json out/
//! ```
//!
//! `--json <path>` additionally writes every reported scenario (latency
//! summary, metrics-registry snapshot, config, seed and — for traced
//! runners — a `stage_attribution` block) as machine-readable JSON: to
//! `<path>` itself, or to `<path>/BENCH_figures.json` when `<path>` is a
//! directory.
//!
//! `--trace <dir>` additionally writes per-scenario profiling artifacts
//! into `<dir>`: Chrome traces with interleaved counter tracks
//! (`TRACE_*.json`, open in Perfetto), flamegraph collapsed stacks
//! (`FOLDED_*.txt`, feed to flamegraph.pl / speedscope) and — for the
//! `hostperf` sweep — *wall-clock* folded stacks of the simulator itself
//! (`HOST_*.txt`).

use hyperloop_bench::figures;
use hyperloop_bench::report::Report;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let trace_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" || *a == "--trace" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let all = wanted.is_empty() || wanted.contains(&"all");
    let has = |name: &str| all || wanted.contains(&name);

    let mut rep = Report::new("figures");
    rep.set_quick(quick);
    if let Some(p) = &json_path {
        rep.set_json_path(p);
    }
    if let Some(d) = &trace_dir {
        rep.set_trace_dir(d);
    }

    if quick {
        rep.line("(quick mode: reduced op counts; tails are noisier)");
    }
    if has("fig2a") {
        hyperloop_bench::mongo2::fig2a(&mut rep, quick);
    }
    if has("fig2b") {
        hyperloop_bench::mongo2::fig2b(&mut rep, quick);
    }
    if has("fig8a") {
        figures::fig8a(&mut rep, quick);
    }
    if has("fig8b") {
        figures::fig8b(&mut rep, quick);
    }
    if has("table2") {
        figures::table2(&mut rep, quick);
    }
    if has("fig9") {
        figures::fig9(&mut rep, quick);
    }
    if has("fig10") {
        figures::fig10(&mut rep, quick);
    }
    if has("fig11") {
        hyperloop_bench::appbench::fig11(&mut rep, quick);
    }
    if has("fig12") {
        hyperloop_bench::appbench::fig12(&mut rep, quick);
    }
    if has("shardscale") {
        hyperloop_bench::shardscale::shardscale(&mut rep, quick);
    }
    if has("migrate") {
        hyperloop_bench::migrate::migrate(&mut rep, quick);
    }
    if has("hostperf") {
        hyperloop_bench::hostperf::hostperf(&mut rep, quick);
    }
    if has("txnmix") {
        hyperloop_bench::txnmix::txnmix(&mut rep, quick);
    }
    if has("ablations") || wanted.contains(&"ablations") {
        hyperloop_bench::appbench::ablations(&mut rep, quick);
    }
    rep.finish().expect("write JSON report");
}
