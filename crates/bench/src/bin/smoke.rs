//! A fast sanity pass over the three headline comparisons — useful while
//! tuning simulation parameters. Not a paper figure; see `figures` for the
//! full evaluation.

use hyperloop_bench::fanout_ablation::read_scaling;
use hyperloop_bench::micro::{gwrite_plan, run_primitive, MicroOpts, SystemKind};

fn main() {
    let opts = MicroOpts {
        ops: 800,
        warmup: 50,
        ..MicroOpts::default()
    };
    println!("1 KB durable gWRITE, 3 replicas, 96 tenants/node:");
    for kind in [SystemKind::NaiveEvent, SystemKind::HyperLoop] {
        let r = run_primitive(kind, gwrite_plan(1024), opts);
        println!(
            "  {:<13} mean={} p99={} replica-cpu={:.1}%",
            kind.label(),
            r.latency.mean,
            r.latency.p99,
            r.replica_cpu * 100.0
        );
    }
    println!("8 KB read scaling:");
    for n in [1u32, 3] {
        let rps = read_scaling(n, 1500);
        println!(
            "  {} serving replica(s): {:.0} reads/s ({:.1} Gbps)",
            n,
            rps,
            rps * 8192.0 * 8.0 / 1e9
        );
    }
}
