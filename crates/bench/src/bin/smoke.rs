//! A fast sanity pass over the three headline comparisons — useful while
//! tuning simulation parameters. Not a paper figure; see `figures` for the
//! full evaluation.
//!
//! `--json <path>` writes the scenarios as machine-readable JSON (to
//! `<path>/BENCH_smoke.json` when `<path>` is a directory).

use hyperloop_bench::fanout_ablation::read_scaling;
use hyperloop_bench::micro::{gwrite_plan, run_primitive, MicroOpts, SystemKind};
use hyperloop_bench::report::{Report, Scenario};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut rep = Report::new("smoke");
    if let Some(p) = &json_path {
        rep.set_json_path(p);
    }

    let opts = MicroOpts {
        ops: 800,
        warmup: 50,
        ..MicroOpts::default()
    };
    rep.line("1 KB durable gWRITE, 3 replicas, 96 tenants/node:");
    for kind in [SystemKind::NaiveEvent, SystemKind::HyperLoop] {
        let r = run_primitive(kind, gwrite_plan(1024), opts);
        rep.line(format!(
            "  {:<13} mean={} p99={} replica-cpu={:.1}%",
            kind.label(),
            r.latency.mean,
            r.latency.p99,
            r.replica_cpu * 100.0
        ));
        rep.scenario(
            Scenario::new(format!("smoke/gwrite-1KB/{}", kind.label()))
                .system(kind.label())
                .seed(opts.seed)
                .config("payload_bytes", 1024u64)
                .config("ops", opts.ops)
                .latency(&r.latency)
                .gauge("ops_per_sec", r.ops_per_sec())
                .gauge("replica_cpu", r.replica_cpu)
                .health(r.health.clone())
                .series(r.series.clone())
                .host(r.host.clone())
                .metrics(r.registry.clone()),
        );
    }
    rep.line("8 KB read scaling:");
    for n in [1u32, 3] {
        let (rps, host, tel) = read_scaling(n, 1500);
        rep.line(format!(
            "  {} serving replica(s): {:.0} reads/s ({:.1} Gbps)",
            n,
            rps,
            rps * 8192.0 * 8.0 / 1e9
        ));
        rep.scenario(
            Scenario::new(format!("smoke/read-scaling/{n}"))
                .config("serving_replicas", n)
                .config("read_bytes", 8192u64)
                .gauge("reads_per_sec", rps)
                .health(tel.health)
                .series(tel.series)
                .host(host),
        );
    }
    rep.finish().expect("write JSON report");
}
