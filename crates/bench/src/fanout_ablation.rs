//! Chain vs fan-out replication latency (paper §7: chain balances NIC load;
//! fan-out trades per-hop pipelining for primary-side parallelism).

use hyperloop::fanout::FanoutGroup;
use hyperloop::harness::{drive, fabric_sim};
use hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use netsim::{FabricConfig, NodeId};
use rnicsim::{NicConfig, Payload};
use simcore::simaudit::{HealthSummary, SeriesSummary};
use simcore::{HealthMonitor, HostMeter, HostStats, SimDuration, SimTime, SloConfig};

/// Health/series telemetry of one ablation run, bundled so the raw loops
/// can return it next to their headline numbers.
#[derive(Debug, Clone)]
pub struct AblationTelemetry {
    /// Per-shard SLO health (single shard 0 for these single-chain runs).
    pub health: HealthSummary,
    /// Windowed telemetry series sampled once per bench-loop iteration.
    pub series: SeriesSummary,
}

fn telemetry(health: &HealthMonitor) -> AblationTelemetry {
    AblationTelemetry {
        health: health.summary(),
        series: health.series(),
    }
}

/// Median latency of durable 1 KB chain writes over `gs` replicas, plus
/// the host-side statistics and telemetry of the run.
pub fn chain_write_latency(gs: u32, ops: u64) -> (SimDuration, HostStats, AblationTelemetry) {
    let meter = HostMeter::start();
    let mut sim = fabric_sim(
        gs + 1,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        41,
    );
    let nodes: Vec<NodeId> = (1..=gs).map(NodeId).collect();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(
            ctx,
            NodeId(0),
            &nodes,
            GroupConfig {
                prepost_depth: 1024,
                ..GroupConfig::default()
            },
        )
    });
    sim.run();
    let health = HealthMonitor::new(SloConfig::default());
    let mut hist = simcore::Histogram::new();
    for i in 0..ops {
        let t0 = sim.now();
        health.record_issue(t0, 0);
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: (i % 16) * 4096,
                        data: Payload::filled(1, 1024),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));
        let lat = sim.now().since(t0);
        hist.record(lat);
        health.record_ack(sim.now(), 0, lat);
        health.tick(sim.now());
    }
    let host = meter.finish(ops, sim.now().since(SimTime::ZERO), sim.queue.stats());
    (hist.p50(), host, telemetry(&health))
}

/// Median latency of durable 1 KB fan-out writes over a primary plus
/// `gs - 1` backups (same total copy count as the chain), plus the
/// host-side statistics and telemetry of the run.
pub fn fanout_write_latency(gs: u32, ops: u64) -> (SimDuration, HostStats, AblationTelemetry) {
    let meter = HostMeter::start();
    let backups: Vec<NodeId> = (2..=gs).map(NodeId).collect();
    let mut sim = fabric_sim(
        gs + 1,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        43,
    );
    let mut group = drive(&mut sim, |ctx| {
        FanoutGroup::setup(
            ctx,
            NodeId(0),
            NodeId(1),
            &backups,
            GroupConfig {
                prepost_depth: 256,
                ..GroupConfig::default()
            },
        )
    });
    sim.run();
    let health = HealthMonitor::new(SloConfig::default());
    let mut hist = simcore::Histogram::new();
    for i in 0..ops {
        let t0 = sim.now();
        health.record_issue(t0, 0);
        drive(&mut sim, |ctx| {
            group.client.write(ctx, (i % 16) * 4096, &[1; 1024], true)
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));
        let lat = sim.now().since(t0);
        hist.record(lat);
        health.record_ack(sim.now(), 0, lat);
        health.tick(sim.now());
        if i % 128 == 0 {
            drive(&mut sim, |ctx| {
                group.primary.replenish(ctx, 128);
            });
        }
    }
    let host = meter.finish(ops, sim.now().since(SimTime::ZERO), sim.queue.stats());
    (hist.p50(), host, telemetry(&health))
}

/// Beyond the paper's figures: aggregate read bandwidth when three reader
/// clients fetch 8 KB objects from one replica versus from all of them —
/// the §5 claim that keeping replicas strongly consistent lets *every*
/// replica serve reads. Lock-free one-sided reads (the FaRM-style path the
/// paper also supports); the locked path is exercised by
/// `hyperloop::reads` tests. Returns reads/sec plus the host-side
/// statistics and telemetry of the run.
pub fn read_scaling(
    serving_replicas: u32,
    total_reads: u64,
) -> (f64, HostStats, AblationTelemetry) {
    let meter = HostMeter::start();
    use rnicsim::{wqe_flags, Opcode, Wqe};

    // Nodes: 3 replicas (1..=3) + 3 reader clients (4..=6).
    let mut sim = fabric_sim(
        7,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        51,
    );
    let replicas = [NodeId(1), NodeId(2), NodeId(3)];
    let readers = [NodeId(4), NodeId(5), NodeId(6)];
    // Symmetric data regions on the replicas.
    let mut data_base = 0;
    for &rn in &replicas {
        data_base = sim.model.fab.alloc(rn, 1 << 20);
        sim.model.fab.reg_mr(rn, data_base, 1 << 20);
        sim.model
            .fab
            .mem(rn)
            .write_durable(data_base, &[7; 8192])
            .unwrap();
    }
    // Each reader has a QP to every replica and a bounce buffer.
    let mut qps = [[rnicsim::QpId(0); 3]; 3];
    let mut cqs = [rnicsim::CqId(0); 3];
    let mut bufs = [0u64; 3];
    for (c, &cn) in readers.iter().enumerate() {
        let cq = sim.model.fab.create_cq(cn);
        cqs[c] = cq;
        bufs[c] = sim.model.fab.alloc(cn, 8192 * 16);
        for (r, &rn) in replicas.iter().enumerate() {
            let q = sim.model.fab.create_qp(cn, cq, cq);
            let rcq = sim.model.fab.create_cq(rn);
            let rq = sim.model.fab.create_qp(rn, rcq, rcq);
            sim.model.fab.connect(cn, q, rn, rq);
            qps[c][r] = q;
        }
    }

    let health = HealthMonitor::new(SloConfig::default());
    let mut sent_at: Vec<SimTime> = vec![SimTime::ZERO; total_reads as usize];
    let t0 = sim.now();
    let mut done = 0u64;
    let mut next = 0u64;
    let mut outstanding = [0u64; 3];
    while done < total_reads {
        drive(&mut sim, |ctx| {
            for (c, slots) in outstanding.iter_mut().enumerate() {
                while *slots < 16 && next < total_reads {
                    let replica = (next % serving_replicas as u64) as usize;
                    ctx.post_send(
                        readers[c],
                        qps[c][replica],
                        Wqe {
                            opcode: Opcode::Read,
                            flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                            local_addr: bufs[c] + (next % 16) * 8192,
                            len: 8192,
                            remote_addr: data_base,
                            wr_id: next,
                            ..Wqe::default()
                        },
                    );
                    sent_at[next as usize] = ctx.now;
                    health.record_issue(ctx.now, replica as u32);
                    next += 1;
                    *slots += 1;
                }
            }
        });
        sim.run();
        for (c, &cn) in readers.iter().enumerate() {
            let cqes = drive(&mut sim, |ctx| ctx.poll_cq(cn, cqs[c], 1024));
            outstanding[c] -= cqes.len() as u64;
            done += cqes.len() as u64;
            let now = sim.now();
            for cqe in cqes {
                let shard = (cqe.wr_id % serving_replicas as u64) as u32;
                health.record_ack(now, shard, now.since(sent_at[cqe.wr_id as usize]));
            }
        }
        health.tick(sim.now());
    }
    assert_eq!(sim.model.fab.stats().errors, 0);
    let host = meter.finish(
        total_reads,
        sim.now().since(SimTime::ZERO),
        sim.queue.stats(),
    );
    (
        total_reads as f64 / sim.now().since(t0).as_secs_f64(),
        host,
        telemetry(&health),
    )
}
