//! Application benchmarks: the paper's §6.2 (Figures 11 and 12) plus the
//! design-choice ablations DESIGN.md calls out.

use crate::driver::{DocDriver, KvDriver};
use crate::micro::{
    bench_group_config, gwrite_plan, gwrite_plan_flush, run_primitive, MicroOpts, SystemKind,
};
use crate::report::{latency_header, latency_row, ratio, us, Report, Scenario};
use baseline::{NaiveChain, NaiveClient, NaiveConfig};
use cpusched::{HogProfile, ProcKind, SchedConfig};
use docstore::{DocConfig, ReplicatedDocStore};
use hyperloop::apps::install_group_maintenance;
use hyperloop::{GroupClient, HyperLoopGroup};
use kvstore::{KvConfig, ReplicatedKv};
use netsim::NodeId;
use simcore::simaudit::{HealthSummary, SeriesSummary};
use simcore::{
    HealthMonitor, Histogram, HostMeter, HostStats, LatencySummary, MetricsRegistry, SimDuration,
    SimTime, SloConfig,
};
use testbed::{Cluster, ClusterConfig, ProcRef};
use ycsb::{Generator, Workload};

/// The multi-tenant application environment: client node 0, replicas 1..=3,
/// background tenants and a 6 ms effective slice (see `MicroOpts`).
fn app_cluster(seed: u64, hogs: u32) -> Cluster {
    let mut cluster = Cluster::new(
        4,
        16,
        256 << 20,
        ClusterConfig {
            seed,
            sched: SchedConfig {
                time_slice: SimDuration::from_millis(6),
                ..SchedConfig::default()
            },
            ..ClusterConfig::default()
        },
    );
    for n in 1..=3u32 {
        cluster.add_background_load(
            NodeId(n),
            hogs,
            HogProfile {
                busy_mean: SimDuration::from_millis(25),
                idle_mean: SimDuration::from_millis(150),
            },
        );
    }
    cluster
}

fn replica_nodes() -> Vec<NodeId> {
    vec![NodeId(1), NodeId(2), NodeId(3)]
}

fn run_cluster_until_done(
    sim: &mut simcore::Simulation<Cluster>,
    driver: ProcRef,
    is_hl: bool,
    kv: bool,
    health: &HealthMonitor,
) -> Histogram {
    let cap = SimTime::from_secs(1200);
    loop {
        let next = sim.now() + SimDuration::from_millis(20);
        sim.run_until(next);
        health.tick(sim.now());
        let done = match (kv, is_hl) {
            (true, true) => sim.model.app_mut::<KvDriver<GroupClient>>(driver).is_done(),
            (true, false) => sim.model.app_mut::<KvDriver<NaiveClient>>(driver).is_done(),
            (false, true) => sim
                .model
                .app_mut::<DocDriver<GroupClient>>(driver)
                .is_done(),
            (false, false) => sim
                .model
                .app_mut::<DocDriver<NaiveClient>>(driver)
                .is_done(),
        };
        if done {
            break;
        }
        assert!(sim.now() < cap, "application run stalled");
    }
    assert_eq!(sim.model.fab.stats().errors, 0);
    match (kv, is_hl) {
        (true, true) => sim
            .model
            .app_mut::<KvDriver<GroupClient>>(driver)
            .hist
            .clone(),
        (true, false) => sim
            .model
            .app_mut::<KvDriver<NaiveClient>>(driver)
            .hist
            .clone(),
        (false, true) => sim
            .model
            .app_mut::<DocDriver<GroupClient>>(driver)
            .hist
            .clone(),
        (false, false) => sim
            .model
            .app_mut::<DocDriver<NaiveClient>>(driver)
            .hist
            .clone(),
    }
}

fn kv_config() -> KvConfig {
    KvConfig {
        capacity: 4096,
        max_value: 1024,
        log_size: 8 << 20,
        control_size: 4096,
        durable: true,
    }
}

/// Builds the cluster-wide metrics snapshot of a finished application run:
/// every fabric/NVM/scheduler counter under `cluster.*` plus the op-latency
/// histogram under `bench.op_latency`.
fn cluster_snapshot(sim: &simcore::Simulation<Cluster>, hist: &Histogram) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    sim.model.export_into(&mut reg, "cluster");
    reg.merge_histogram("bench.op_latency", hist);
    reg
}

/// One Fig. 11 arm: replicated RocksDB (kvstore) update latency under
/// YCSB-A with co-located tenants. Returns the latency summary, a full
/// cluster metrics snapshot and the host-side statistics of the run.
pub fn run_fig11_arm(
    kind: SystemKind,
    writes: u64,
    seed: u64,
) -> (
    LatencySummary,
    MetricsRegistry,
    HostStats,
    HealthSummary,
    SeriesSummary,
) {
    let meter = HostMeter::start();
    // Observer-only per-shard SLO health: the driver records issue/ack
    // edges and the run loop ticks the monitor on its poll cadence.
    let health = HealthMonitor::new(SloConfig::default());
    let mut cluster = app_cluster(seed, 96);
    let client_node = NodeId(0);
    let pace = SimDuration::from_micros(300);
    let gen = Generator::with_value_len(Workload::A, 4096, seed ^ 0xA5, 1024);
    let (driver, is_hl) = match kind {
        SystemKind::HyperLoop => {
            let group = cluster.setup_fabric(|ctx| {
                HyperLoopGroup::setup(
                    ctx,
                    client_node,
                    &replica_nodes(),
                    hyperloop::GroupConfig {
                        shared_size: 16 << 20,
                        ..bench_group_config(16)
                    },
                )
            });
            install_group_maintenance(&mut cluster, group.replicas, SimDuration::from_nanos(400));
            let ack_cq = group.client.ack_cq();
            let store = ReplicatedKv::new(group.client, kv_config());
            let d = KvDriver::new(store, gen, writes, 50, pace).with_health(health.clone(), 0);
            let p = cluster.add_app(client_node, ProcKind::Polling, Box::new(d));
            cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_nanos(300));
            (p, true)
        }
        SystemKind::NaiveEvent | SystemKind::NaivePolling => {
            let chain = NaiveChain::setup(
                &mut cluster,
                client_node,
                &replica_nodes(),
                NaiveConfig {
                    shared_size: 16 << 20,
                    window: 16,
                    prepost_depth: 768,
                    replica_kind: if kind == SystemKind::NaivePolling {
                        ProcKind::Polling
                    } else {
                        ProcKind::EventDriven
                    },
                    ..NaiveConfig::default()
                },
            );
            let ack_cq = chain.client.ack_cq();
            let store = ReplicatedKv::new(chain.client, kv_config());
            let d = KvDriver::new(store, gen, writes, 50, pace).with_health(health.clone(), 0);
            let p = cluster.add_app(client_node, ProcKind::Polling, Box::new(d));
            cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_nanos(300));
            (p, false)
        }
    };
    let mut sim = cluster.into_sim();
    let hist = run_cluster_until_done(&mut sim, driver, is_hl, true, &health);
    let mut registry = cluster_snapshot(&sim, &hist);
    health.export_into(&mut registry, "health");
    let host = meter.finish(writes, sim.now().since(SimTime::ZERO), sim.queue.stats());
    (
        hist.summary(),
        registry,
        host,
        health.summary(),
        health.series(),
    )
}

/// Figure 11: replicated RocksDB update latency, three systems.
pub fn fig11(rep: &mut Report, quick: bool) {
    rep.banner("Figure 11: replicated RocksDB (kvstore), YCSB-A updates, loaded replicas");
    let writes = if quick { 800 } else { 4000 };
    rep.line(latency_header("system"));
    let mut p99s = Vec::new();
    for kind in [
        SystemKind::NaiveEvent,
        SystemKind::NaivePolling,
        SystemKind::HyperLoop,
    ] {
        let (s, reg, host, health, series) = run_fig11_arm(kind, writes, 0xF11);
        rep.line(latency_row(kind.label(), &s));
        rep.scenario(
            Scenario::new(format!("fig11/ycsb-a/{}", kind.label()))
                .system(kind.label())
                .seed(0xF11)
                .config("store", "kvstore")
                .config("workload", "YCSB-A")
                .config("writes", writes)
                .latency(&s)
                .health(health)
                .series(series)
                .host(host)
                .metrics(reg),
        );
        p99s.push((kind, s.p99));
    }
    let hl = p99s[2].1;
    rep.line(format!(
        "p99 gains over HyperLoop: Naive-Event {} Naive-Polling {}",
        ratio(p99s[0].1, hl),
        ratio(p99s[1].1, hl),
    ));
}

fn doc_config() -> DocConfig {
    DocConfig {
        capacity: 4096,
        max_doc: 1536,
        log_size: 8 << 20,
        n_locks: 64,
    }
}

/// One Fig. 12 arm: replicated MongoDB (docstore) latency for a YCSB
/// workload, native (polling CPU replication) vs HyperLoop. Returns the
/// latency summary, a full cluster metrics snapshot and the host-side
/// statistics of the run.
pub fn run_fig12_arm(
    hl: bool,
    workload: Workload,
    ops: u64,
    seed: u64,
) -> (
    LatencySummary,
    MetricsRegistry,
    HostStats,
    HealthSummary,
    SeriesSummary,
) {
    let meter = HostMeter::start();
    let health = HealthMonitor::new(SloConfig::default());
    let mut cluster = app_cluster(seed, 96);
    let client_node = NodeId(0);
    let stack = SimDuration::from_micros(150);
    let pace = SimDuration::from_micros(200);
    let gen = Generator::with_value_len(workload, 4096, seed ^ 0x12, 1024);
    let (driver, is_hl) = if hl {
        let group = cluster.setup_fabric(|ctx| {
            HyperLoopGroup::setup(
                ctx,
                client_node,
                &replica_nodes(),
                hyperloop::GroupConfig {
                    shared_size: 16 << 20,
                    ..bench_group_config(16)
                },
            )
        });
        install_group_maintenance(&mut cluster, group.replicas, SimDuration::from_nanos(400));
        let ack_cq = group.client.ack_cq();
        let store = ReplicatedDocStore::new(group.client, doc_config(), 1);
        let d = DocDriver::new(store, gen, ops, 50, stack, pace).with_health(health.clone(), 0);
        let p = cluster.add_app(client_node, ProcKind::Polling, Box::new(d));
        cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_nanos(300));
        (p, true)
    } else {
        let chain = NaiveChain::setup(
            &mut cluster,
            client_node,
            &replica_nodes(),
            NaiveConfig {
                shared_size: 16 << 20,
                window: 16,
                prepost_depth: 768,
                replica_kind: ProcKind::EventDriven,
                ..NaiveConfig::default()
            },
        );
        let ack_cq = chain.client.ack_cq();
        let mut store = ReplicatedDocStore::new(chain.client, doc_config(), 1);
        // Native MongoDB: journal replication is the critical path; log
        // application is asynchronous (paper §5.2 description of vanilla
        // replication).
        store.set_mode(docstore::WriteMode::AppendOnly);
        let d = DocDriver::new(store, gen, ops, 50, stack, pace).with_health(health.clone(), 0);
        let p = cluster.add_app(client_node, ProcKind::Polling, Box::new(d));
        cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_nanos(300));
        (p, false)
    };
    let mut sim = cluster.into_sim();
    let hist = run_cluster_until_done(&mut sim, driver, is_hl, false, &health);
    let mut registry = cluster_snapshot(&sim, &hist);
    health.export_into(&mut registry, "health");
    let host = meter.finish(ops, sim.now().since(SimTime::ZERO), sim.queue.stats());
    (
        hist.summary(),
        registry,
        host,
        health.summary(),
        health.series(),
    )
}

/// Figure 12: replicated MongoDB latency across YCSB workloads.
pub fn fig12(rep: &mut Report, quick: bool) {
    rep.banner("Figure 12: replicated MongoDB (docstore), YCSB A/B/D/E/F, loaded replicas");
    let ops = if quick { 1500 } else { 8000 };
    rep.line(format!(
        "{:<10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>9} {:>9}",
        "workload",
        "nat mean",
        "nat p95",
        "nat p99",
        "HL mean",
        "HL p95",
        "HL p99",
        "mean cut",
        "gap cut"
    ));
    for (wi, w) in Workload::PAPER_SET.into_iter().enumerate() {
        let seed = 0xF12 + 101 * wi as u64;
        let (nat, nat_reg, nat_host, nat_health, nat_series) = run_fig12_arm(false, w, ops, seed);
        let (hl, hl_reg, hl_host, hl_health, hl_series) = run_fig12_arm(true, w, ops, seed);
        let mean_cut = 100.0 * (1.0 - hl.mean.as_micros_f64() / nat.mean.as_micros_f64().max(1e-9));
        let gap_nat = nat.p99.as_micros_f64() - nat.mean.as_micros_f64();
        let gap_hl = hl.p99.as_micros_f64() - hl.mean.as_micros_f64();
        let gap_cut = 100.0 * (1.0 - gap_hl / gap_nat.max(1e-9));
        rep.line(format!(
            "{:<10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8.0}% {:>8.0}%",
            w.to_string(),
            us(nat.mean),
            us(nat.p95),
            us(nat.p99),
            us(hl.mean),
            us(hl.p95),
            us(hl.p99),
            mean_cut,
            gap_cut,
        ));
        for (label, s, reg, host, health, series) in [
            ("native", &nat, nat_reg, nat_host, nat_health, nat_series),
            ("HyperLoop", &hl, hl_reg, hl_host, hl_health, hl_series),
        ] {
            rep.scenario(
                Scenario::new(format!("fig12/{w}/{label}"))
                    .system(label)
                    .seed(seed)
                    .config("store", "docstore")
                    .config("workload", w.to_string())
                    .config("ops", ops)
                    .latency(s)
                    .health(health)
                    .series(series)
                    .host(host)
                    .metrics(reg),
            );
        }
    }
}

/// Design-choice ablations (DESIGN.md):
/// flush cost, polling crossover, fan-out vs chain.
pub fn ablations(rep: &mut Report, quick: bool) {
    rep.banner("Ablation: interleaved gFLUSH cost (HyperLoop gWRITE, unloaded)");
    let opts = MicroOpts {
        ops: if quick { 500 } else { 3000 },
        hogs_per_node: 0,
        pace: SimDuration::ZERO,
        ..MicroOpts::default()
    };
    for (label, flush) in [("gWRITE only", false), ("gWRITE + gFLUSH", true)] {
        let r = run_primitive(SystemKind::HyperLoop, gwrite_plan_flush(1024, flush), opts);
        rep.line(format!(
            "{:<18} mean={} p99={}",
            label,
            us(r.latency.mean),
            us(r.latency.p99)
        ));
        rep.scenario(
            Scenario::new(format!(
                "ablation/flush-cost/{}",
                if flush { "flush" } else { "no-flush" }
            ))
            .system(SystemKind::HyperLoop.label())
            .seed(opts.seed)
            .config("payload_bytes", 1024u64)
            .config("flush", flush)
            .latency(&r.latency)
            .health(r.health.clone())
            .series(r.series.clone())
            .host(r.host.clone())
            .metrics(r.registry.clone()),
        );
    }

    rep.banner("Ablation: chain vs NIC-coordinated fan-out (unloaded, 1 KB durable writes)");
    rep.line(format!(
        "{:<8} {:>14} {:>14}",
        "replicas", "chain p50", "fan-out p50"
    ));
    for gs in [3u32, 5, 7] {
        let (chain, chain_host, chain_tel) =
            crate::fanout_ablation::chain_write_latency(gs, if quick { 200 } else { 800 });
        let (fan, fan_host, _fan_tel) =
            crate::fanout_ablation::fanout_write_latency(gs, if quick { 200 } else { 800 });
        rep.line(format!("{:<8} {:>14} {:>14}", gs, us(chain), us(fan)));
        // Two runs, one scenario: fold their host meters into one block.
        // The health/series blocks come from the chain arm (the paper's
        // default topology); the fan-out arm's telemetry is equivalent.
        rep.scenario(
            Scenario::new(format!("ablation/fanout/g{gs}"))
                .config("group_size", gs)
                .gauge("chain_p50_ns", chain.as_nanos() as f64)
                .gauge("fanout_p50_ns", fan.as_nanos() as f64)
                .health(chain_tel.health)
                .series(chain_tel.series)
                .host(chain_host.merged(&fan_host)),
        );
    }

    rep.banner("Ablation: consistent-read scaling across serving replicas (beyond the paper)");
    rep.line(format!(
        "{:<18} {:>12} {:>10}",
        "serving replicas", "8KB reads/s", "aggregate"
    ));
    for n in [1u32, 2, 3] {
        let (rps, host, tel) =
            crate::fanout_ablation::read_scaling(n, if quick { 1000 } else { 4000 });
        rep.line(format!(
            "{:<18} {:>12.0} {:>7.1} Gbps",
            n,
            rps,
            rps * 8192.0 * 8.0 / 1e9
        ));
        rep.scenario(
            Scenario::new(format!("ablation/read-scaling/{n}"))
                .config("serving_replicas", n)
                .config("read_bytes", 8192u64)
                .gauge("reads_per_sec", rps)
                .health(tel.health)
                .series(tel.series)
                .host(host),
        );
    }

    rep.banner("Ablation: polling vs event-driven replicas vs co-location");
    rep.line(format!(
        "{:<10} {:>16} {:>16}",
        "tenants", "Naive-Event p99", "Naive-Polling p99"
    ));
    for hogs in [0u32, 32, 96] {
        let opts = MicroOpts {
            ops: if quick { 600 } else { 2500 },
            hogs_per_node: hogs,
            ..MicroOpts::default()
        };
        let ev = run_primitive(SystemKind::NaiveEvent, gwrite_plan(1024), opts);
        let po = run_primitive(SystemKind::NaivePolling, gwrite_plan(1024), opts);
        rep.line(format!(
            "{:<10} {:>16} {:>16}",
            hogs,
            us(ev.latency.p99),
            us(po.latency.p99)
        ));
        for (kind, r) in [
            (SystemKind::NaiveEvent, &ev),
            (SystemKind::NaivePolling, &po),
        ] {
            rep.scenario(
                Scenario::new(format!("ablation/colocation/hogs{hogs}/{}", kind.label()))
                    .system(kind.label())
                    .seed(opts.seed)
                    .config("hogs_per_node", hogs)
                    .config("payload_bytes", 1024u64)
                    .latency(&r.latency)
                    .health(r.health.clone())
                    .series(r.series.clone())
                    .host(r.host.clone())
                    .metrics(r.registry.clone()),
            );
        }
    }
}
