//! The shard-scaling benchmark: aggregate throughput vs shard count.
//!
//! One client machine drives 1→8 independent HyperLoop chains through a
//! [`ShardSet`], with a fixed offered load (total operations, uniform
//! random keys, fixed per-shard window). A single group serializes on one
//! chain; sharding lets the chains replicate concurrently, so aggregate
//! throughput should rise monotonically with the shard count until the
//! client NIC saturates — the scale-out story the single-group sections of
//! the paper leave implicit.
//!
//! Chains are laid out disjointly over the rack with
//! [`ShardPlacement::RoundRobin`]; the report carries both the shard-set
//! counters (`bench.shards.shard{i}.*`) and the per-chain NVM counters
//! (`bench.shard{i}.nvm.node{n}.*`), so the JSON shows the traffic each
//! chain actually carried.

use crate::report::{us, Report, Scenario};
use hyperloop::{GroupConfig, GroupOp, HyperLoopGroup, ShardId, ShardSet};
use netsim::NodeId;
use rnicsim::Payload;
use simcore::simaudit::{op_id_base, HealthSummary, Probe, SeriesSummary};
use simcore::simprof::{folded_stacks, CounterSampler, StageAttribution};
use simcore::tailprof::TailProfile;
use simcore::{
    Audit, HealthMonitor, Histogram, HostMeter, HostStats, LatencySummary, MetricsRegistry,
    SimDuration, SimRng, SimTime, SloConfig, Tracer,
};
use std::collections::{HashMap, VecDeque};
use testbed::cluster::drive;
use testbed::{Cluster, ClusterConfig, ShardPlacement};

/// Per-shard op-id base shift: shard `i` issues generations starting at
/// [`op_id_base`]`(i, 0)`, so op ids stay globally unique across shards in
/// one trace stream (re-exported from [`simcore::simaudit`], which owns
/// the op-id layout). A multiple of every `meta_slots` power of two, so
/// the modular slot arithmetic is untouched.
pub use simcore::simaudit::SHARD_GEN_SHIFT;

/// Shard-scaling benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShardScaleOpts {
    /// Replicas per shard chain.
    pub replicas_per_shard: u32,
    /// Total operations across all shards (the fixed offered load).
    pub ops: u64,
    /// Per-shard in-flight window.
    pub window: u32,
    /// gWRITE payload bytes.
    pub payload: u64,
    /// Root seed.
    pub seed: u64,
    /// Capture a causal trace + counter-track samples for this arm.
    pub trace: bool,
}

impl Default for ShardScaleOpts {
    fn default() -> Self {
        ShardScaleOpts {
            replicas_per_shard: 3,
            ops: 4096,
            window: 16,
            payload: 1024,
            seed: 0x5CA1E,
            trace: false,
        }
    }
}

/// Profiling artifacts of one traced shard-scaling arm.
#[derive(Debug, Clone)]
pub struct ShardScaleTrace {
    /// Per-stage latency attribution over every completed op, all shards.
    pub attribution: StageAttribution,
    /// Tail-latency profile folded over the same trace ring.
    pub tail: TailProfile,
    /// Flamegraph collapsed-stack text (deterministic for a given seed).
    pub folded: String,
    /// Chrome trace JSON with interleaved counter tracks.
    pub chrome: String,
}

/// Result of one shard-count arm.
#[derive(Debug, Clone)]
pub struct ShardScaleResult {
    /// Shard count of this arm.
    pub shards: u32,
    /// Per-op latency distribution (issue to chain ack).
    pub latency: LatencySummary,
    /// Wall time from first issue to last ack.
    pub elapsed: SimDuration,
    /// Operations completed (= the offered load).
    pub ops: u64,
    /// Per-shard completion counts, shard order.
    pub per_shard_acked: Vec<u64>,
    /// Cluster + shard-set metrics snapshot.
    pub registry: MetricsRegistry,
    /// Audit/health summary: invariant violations (expected zero) plus
    /// per-shard SLO states and breach counts.
    pub health: HealthSummary,
    /// Windowed per-shard telemetry series sampled on the bench cadence.
    pub series: SeriesSummary,
    /// The audit's structured violation report (deterministic JSON).
    pub audit_json: String,
    /// Trace-derived artifacts ([`ShardScaleOpts::trace`] arms only).
    pub trace: Option<ShardScaleTrace>,
    /// Host-side (wall-clock) statistics, including the observability tax
    /// of the always-on audit tap (measured against a bare re-run).
    pub host: HostStats,
}

impl ShardScaleResult {
    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs the fixed offered load through `n_shards` chains.
///
/// Auditing is always on in this sweep, so the observability tax is
/// measured by re-running the identical load with the audit and trace taps
/// off. Both runs execute the same deterministic timeline (the taps only
/// read it), so the wall-clock delta is pure observability cost.
///
/// # Panics
///
/// Panics on data-path errors, lost operations, or a stalled run.
pub fn run_shardscale(n_shards: u32, opts: ShardScaleOpts) -> ShardScaleResult {
    let mut res = run_shardscale_once(n_shards, opts, true);
    let bare = run_shardscale_once(
        n_shards,
        ShardScaleOpts {
            trace: false,
            ..opts
        },
        false,
    );
    res.host = res.host.with_bare_wall_ns(bare.host.wall_ns);
    res
}

/// One metered arm. `observed` keeps the standard audit tap on; the bare
/// (`observed = false`) run disables every tap but drives the exact same
/// issue/poll/replenish loop.
fn run_shardscale_once(n_shards: u32, opts: ShardScaleOpts, observed: bool) -> ShardScaleResult {
    let meter = HostMeter::start();
    let client = NodeId(0);
    let nodes = 1 + n_shards * opts.replicas_per_shard;
    let cluster = Cluster::new(
        nodes,
        4,
        256 << 20,
        ClusterConfig {
            seed: opts.seed,
            ..ClusterConfig::default()
        },
    );
    let placement = ShardPlacement::RoundRobin {
        replicas_per_shard: opts.replicas_per_shard,
    };
    let chains = cluster.place_shards(&placement, n_shards, client);

    // Descriptor chains cost ~7 send WQEs per generation on each replica
    // NIC, so the pre-post depth is bounded by the NIC's send queue — keep
    // the default depth (far deeper than the window) and top chains back up
    // from the bench loop as acks drain them, one replenish per completed
    // op. The data path never waits on a replenish: the window is 16 and
    // the pre-posted runway is 128 generations.
    let mut cluster = cluster;
    // Auditing is always on for measured arms: the invariant checkers tap
    // the trace stream even when no trace buffer is kept, so every arm of
    // every sweep is a correctness experiment. The bare arm of the
    // observability-tax measurement drops the tap (same timeline, less
    // host work).
    let audit = if observed {
        Audit::standard()
    } else {
        Audit::disabled()
    };
    let tracer = if opts.trace {
        let cap = (opts.ops.saturating_mul(96)).clamp(1 << 16, 1 << 21) as usize;
        Tracer::enabled(cap).with_audit(audit.clone())
    } else {
        Tracer::disabled().with_audit(audit.clone())
    };
    cluster.set_tracer(tracer.clone());
    let health = HealthMonitor::new(SloConfig::default());
    health.set_tracer(tracer.clone());
    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .enumerate()
            .map(|(i, chain)| {
                // Disjoint generation bases keep op ids (= trace ids =
                // WQE wr_ids) globally unique across shards.
                let cfg = GroupConfig {
                    shared_size: 4 << 20,
                    meta_slots: 64,
                    prepost_depth: 128,
                    window: opts.window,
                    first_gen: op_id_base(i as u32, 0),
                };
                HyperLoopGroup::setup(ctx, client, chain, cfg)
            })
            .collect()
    });
    let (mut clients, mut replicas): (Vec<_>, Vec<_>) =
        groups.into_iter().map(|g| (g.client, g.replicas)).unzip();
    for c in clients.iter_mut() {
        c.set_tracer(tracer.clone());
    }
    let mut set = ShardSet::with_hash_router(clients);

    let mut sim = cluster.into_sim();
    sim.run(); // drain group wiring

    // Teach the flow-control auditor each shard's window before traffic.
    for s in 0..n_shards {
        audit.probe(
            sim.now(),
            Probe::Window {
                shard: s,
                window: opts.window as u64,
            },
        );
    }

    // The fixed offered load: `ops` uniform random keys, routed up front so
    // every arm sees the identical per-key shard assignment the router
    // would give it online.
    let mut rng = SimRng::new(opts.seed ^ 0x51AB);
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); n_shards as usize];
    for _ in 0..opts.ops {
        let key = rng.next_u64();
        queues[set.route(key).0 as usize].push_back(key);
    }

    let mut sent: HashMap<(u32, u64), SimTime> = HashMap::new();
    let mut hist = Histogram::new();
    let started = sim.now();
    let mut done = 0u64;
    let mut sampler = opts.trace.then(|| {
        CounterSampler::with_prefixes(&["bench.shards.", "cluster.sched.", "cluster.fabric."])
    });
    while done < opts.ops {
        // Closed loop: refill every shard's window from its queue...
        drive(&mut sim, |ctx| {
            for s in 0..n_shards {
                let sid = ShardId(s);
                while set.can_issue_on(sid) {
                    let Some(key) = queues[s as usize].pop_front() else {
                        break;
                    };
                    let gen = set
                        .issue_on(
                            ctx,
                            sid,
                            GroupOp::Write {
                                offset: (key % 64) * 8192,
                                data: Payload::filled((key & 0xFF) as u8, opts.payload as usize),
                                flush: true,
                            },
                        )
                        .expect("window checked");
                    sent.insert((s, gen), ctx.now);
                    health.record_issue(ctx.now, s);
                }
            }
        });
        // Sample with the windows full (the post-poll sample below sees
        // them drained): the in-flight track renders the issue/drain
        // sawtooth instead of a flat zero line.
        if let Some(s) = sampler.as_mut() {
            let mut reg = MetricsRegistry::new();
            sim.model.export_into(&mut reg, "cluster");
            set.export_into(&mut reg, "bench.shards");
            s.sample(sim.now(), &reg);
        }
        // ...let the chains run dry, then collect.
        sim.run();
        let acks = drive(&mut sim, |ctx| set.poll(ctx));
        if let Some(s) = sampler.as_mut() {
            let mut reg = MetricsRegistry::new();
            sim.model.export_into(&mut reg, "cluster");
            set.export_into(&mut reg, "bench.shards");
            s.sample(sim.now(), &reg);
        }
        assert!(!acks.is_empty(), "run stalled at {done}/{} ops", opts.ops);
        let mut drained = vec![0u32; n_shards as usize];
        for a in acks {
            let t0 = sent
                .remove(&(a.shard.0, a.ack.gen))
                .expect("ack for an op we issued");
            let lat = sim.now().since(t0);
            hist.record(lat);
            health.record_ack(sim.now(), a.shard.0, lat);
            drained[a.shard.0 as usize] += 1;
            done += 1;
        }
        health.tick(sim.now());
        // Re-post one descriptor chain per completed generation so the
        // pre-posted runway never shrinks (the replica maintenance loop in
        // miniature, driven deterministically from the bench loop).
        drive(&mut sim, |ctx| {
            for (shard, &n) in drained.iter().enumerate() {
                if n > 0 {
                    for r in replicas[shard].iter_mut() {
                        r.replenish(ctx, n);
                    }
                }
            }
        });
    }
    let elapsed = sim.now().since(started);
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");
    assert_eq!(set.completed(), opts.ops, "lost operations");

    let per_shard_acked: Vec<u64> = (0..n_shards)
        .map(|s| set.completed_on(ShardId(s)))
        .collect();
    let mut registry = MetricsRegistry::new();
    sim.model.export_into(&mut registry, "cluster");
    sim.model
        .export_shards_into(&mut registry, &chains, "bench");
    set.export_into(&mut registry, "bench.shards");
    registry.merge_histogram("bench.op_latency", &hist);
    registry.set_gauge("bench.elapsed_secs", elapsed.as_secs_f64());
    audit.export_into(&mut registry, "audit");
    health.export_into(&mut registry, "health");
    let mut health_summary = health.summary();
    health_summary.violations = audit.violation_count();

    // Stop the host meter before folding trace artifacts: attribution,
    // tail and flamegraph folds are post-run analysis, not simulation
    // work, and must not be charged to the measured arm's wall clock.
    let host = meter.finish(opts.ops, sim.now().since(SimTime::ZERO), sim.queue.stats());

    let series = health.series();
    let trace = opts.trace.then(|| {
        let t = &tracer;
        let events = t.events();
        let attribution = StageAttribution::from_events(&events);
        let tail = TailProfile::from_events(&events);
        let folded = folded_stacks(&events, &format!("shardscale/{n_shards}"));
        let mut samples = sampler
            .as_ref()
            .map_or(Vec::new(), |s| s.samples().to_vec());
        samples.extend(series.counter_samples());
        let chrome = simcore::simprof::chrome_trace_with_counters(&events, &samples);
        ShardScaleTrace {
            attribution,
            tail,
            folded,
            chrome,
        }
    });

    ShardScaleResult {
        shards: n_shards,
        latency: hist.summary(),
        elapsed,
        ops: opts.ops,
        per_shard_acked,
        registry,
        health: health_summary,
        series,
        audit_json: audit.to_json(),
        trace,
        host,
    }
}

/// The shard counts of the scaling sweep.
pub const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Shard-scaling sweep: 1→8 chains under the same offered load.
pub fn shardscale(rep: &mut Report, quick: bool) {
    rep.banner("Shard scaling: aggregate gWRITE throughput vs shard count (fixed offered load)");
    let opts = ShardScaleOpts {
        ops: if quick { 1024 } else { 4096 },
        trace: rep.profile_enabled(),
        ..ShardScaleOpts::default()
    };
    rep.line(format!(
        "{:<8} {:>12} {:>10} {:>10} {:>10}  per-shard ops",
        "shards", "Kops/s", "speedup", "mean", "p99"
    ));
    let mut base = None;
    for n in SHARD_COUNTS {
        let r = run_shardscale(n, opts);
        let tput = r.ops_per_sec();
        let base_tput = *base.get_or_insert(tput);
        rep.line(format!(
            "{:<8} {:>12.1} {:>9.2}x {:>10} {:>10}  {:?}",
            n,
            tput / 1e3,
            tput / base_tput,
            us(r.latency.mean),
            us(r.latency.p99),
            r.per_shard_acked,
        ));
        let mut sc = Scenario::new(format!("shardscale/{n}"))
            .system("HyperLoop")
            .seed(opts.seed)
            .config("shards", n)
            .config("replicas_per_shard", opts.replicas_per_shard)
            .config("window", opts.window)
            .config("ops", opts.ops)
            .config("payload_bytes", opts.payload)
            .latency(&r.latency)
            .gauge("ops_per_sec", tput)
            .gauge("speedup", tput / base_tput)
            .health(r.health.clone())
            .series(r.series.clone())
            .host(r.host.clone())
            .metrics(r.registry.clone());
        for (s, &acked) in r.per_shard_acked.iter().enumerate() {
            sc = sc.config(&format!("shard{s}_ops"), acked);
        }
        if let Some(tr) = &r.trace {
            sc = sc
                .stage_attribution(tr.attribution.clone())
                .tail(tr.tail.clone());
            rep.write_trace(&format!("TRACE_shardscale_{n}.json"), &tr.chrome)
                .expect("trace sink writable");
            rep.write_trace(&format!("FOLDED_shardscale_{n}.txt"), &tr.folded)
                .expect("trace sink writable");
            rep.write_trace(&format!("AUDIT_shardscale_{n}.json"), &r.audit_json)
                .expect("trace sink writable");
            rep.write_trace(
                &format!("TAIL_shardscale_{n}.json"),
                &tr.tail.to_artifact_json(&format!("shardscale/{n}")),
            )
            .expect("trace sink writable");
        }
        rep.scenario(sc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_monotonically_with_shards() {
        let opts = ShardScaleOpts {
            ops: 512,
            ..ShardScaleOpts::default()
        };
        let mut last = 0.0f64;
        for n in SHARD_COUNTS {
            let r = run_shardscale(n, opts);
            assert_eq!(r.ops, 512);
            assert_eq!(r.per_shard_acked.iter().sum::<u64>(), 512);
            let tput = r.ops_per_sec();
            assert!(
                tput > last,
                "{n} shards did not beat the previous arm: {tput:.0} <= {last:.0} ops/s"
            );
            last = tput;
            assert_eq!(
                r.health.violations, 0,
                "auditors flagged a clean run:\n{}",
                r.audit_json
            );
            assert_eq!(r.health.shards.len(), n as usize);
            // The registry carries per-shard counters for every shard.
            for s in 0..n {
                assert_eq!(
                    r.registry.counter(&format!("bench.shards.shard{s}.acked")),
                    Some(r.per_shard_acked[s as usize]),
                    "shard {s} counter missing from the snapshot"
                );
            }
        }
    }
}
