//! Counting global allocator feeding [`simcore::hostprof`].
//!
//! [`CountingAlloc`] wraps the system allocator and bumps the thread-local
//! allocation counters in `hostprof` on every `alloc` / `dealloc` /
//! `realloc`. The counters are plain thread-local `Cell`s, so the hooks
//! never allocate, never lock and never touch the simulation: installing
//! the allocator cannot perturb a deterministic run, it only measures it.
//!
//! The `#[global_allocator]` registration lives here in the bench *library*
//! so every bench binary (`figures`, `benchcheck`, `expgen`) and every
//! integration test that links `hyperloop-bench` gets counted allocations
//! for free. Crates that do not link the bench crate keep the default
//! system allocator and simply report zero allocation deltas.
//!
//! A `realloc` is deliberately counted as *one* paired event — the old
//! size into `freed_bytes`, the new size into `alloc_bytes`, plus one
//! `reallocs` tick — so a balanced region still satisfies
//! `allocs == frees` without double-counting grown vectors.

use std::alloc::{GlobalAlloc, Layout, System};

use simcore::hostprof;

/// System-allocator wrapper that records every heap event in
/// [`simcore::hostprof`]'s thread-local counters.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the extra work is bookkeeping on thread-local
// `Cell`s that never allocates and never unwinds (`record_*` use `try_with`
// and plain wrapping arithmetic).
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            hostprof::record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            hostprof::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        hostprof::record_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            hostprof::record_realloc(layout.size(), new_size);
        }
        p
    }
}

/// The process-wide allocator for everything linking `hyperloop-bench`.
#[global_allocator]
static HOST_COUNTING_ALLOC: CountingAlloc = CountingAlloc;
