//! `hostperf`: host throughput of the simulator itself.
//!
//! Where every other figure measures the *simulated* system, this one
//! measures the *simulator*: wall-clock operations per second, event-queue
//! throughput, allocation volume and the observability tax (wall-clock
//! overhead of running with the tracer and audit taps on, versus the same
//! seed with them off). The sweep raises the op count to show how host
//! throughput amortizes fixed setup cost.
//!
//! Each arm also captures a wall-clock folded-stack profile
//! (`HOST_hostperf_<ops>.txt` when `--trace` is given) attributing host
//! time to the simulator's subsystems — event queue, rnicsim engine,
//! netsim delivery, cpusched dispatch, nvmsim I/O, trace tap and JSON
//! export — in a format `flamegraph.pl`/speedscope accept directly.
//! The profile comes from a dedicated same-seed re-run with the scope
//! timers enabled; the measured arm runs with them off, because at the
//! fastpath's call density the timers' own clock reads would dominate
//! the number they are trying to measure.

use crate::micro::{gwrite_plan_flush, run_primitive, MicroOpts, SystemKind};
use crate::report::{Report, Scenario};
use simcore::{hostprof, SimDuration};

/// Op counts swept by [`hostperf`]. The full sweep ends on a 64K-op arm —
/// long enough that setup cost and pool warm-up amortize to nothing and
/// the steady-state fastpath (timer wheel + pooled payloads + batched
/// completions) is what's measured. Quick stays short: it exists for CI
/// byte-identity and gate checks, not for steady-state numbers.
pub fn hostperf_ops(quick: bool) -> &'static [u64] {
    if quick {
        &[250, 500, 1000, 2000]
    } else {
        &[1000, 2000, 4000, 8000, 65536]
    }
}

/// Runs the host-throughput sweep: HyperLoop gWRITE 1KB on unloaded
/// replicas (the configuration where host cost, not simulated contention,
/// dominates), at increasing op counts.
///
/// # Panics
///
/// Panics if a run does not complete within the simulation watchdog.
pub fn hostperf(rep: &mut Report, quick: bool) {
    rep.banner("hostperf: simulator host throughput (HyperLoop gWRITE 1KB, unloaded)");
    rep.line(format!(
        "{:<8} {:>12} {:>14} {:>16} {:>12} {:>10}",
        "ops", "host op/s", "host events/s", "sim_ns/wall_ms", "alloc MiB", "obs tax"
    ));
    for &ops in hostperf_ops(quick) {
        let opts = MicroOpts {
            ops,
            warmup: 50,
            window: 16,
            hogs_per_node: 0,
            pace: SimDuration::ZERO,
            // Traced arms measure the observability tax via a bare re-run.
            trace: rep.profile_enabled(),
            ..MicroOpts::default()
        };
        // The measured arm runs with the scope timers OFF: at this
        // call density (~800 scoped calls per simulated op) the two
        // `Instant` reads per scope would be over half the measured wall
        // time — the profiler observing itself, not the simulator. The
        // host block (wall, alloc, queue counters) never needed the
        // scopes: the allocator hooks and queue stats are always-on.
        hostprof::reset();
        let r = run_primitive(SystemKind::HyperLoop, gwrite_plan_flush(1024, false), opts);
        let h = &r.host;
        rep.line(format!(
            "{:<8} {:>12.0} {:>14.0} {:>16.0} {:>12.2} {:>9.1}%",
            ops,
            h.ops_per_sec(),
            h.events_per_sec(),
            h.sim_ns_per_wall_ms(),
            h.alloc.alloc_bytes as f64 / (1 << 20) as f64,
            h.obs_tax.overhead_pct(),
        ));
        if rep.trace_enabled() {
            // Folded stacks come from a dedicated same-seed re-run with the
            // scope timers on. hostprof is read-only with respect to the
            // simulation, so the re-run replays the identical timeline; its
            // wall numbers are attribution shape, not the headline rate.
            hostprof::reset();
            hostprof::enable();
            let _ = run_primitive(SystemKind::HyperLoop, gwrite_plan_flush(1024, false), opts);
            hostprof::disable();
            let folded = hostprof::folded_stacks();
            hostprof::reset();
            rep.write_trace(&format!("HOST_hostperf_{ops}.txt"), &folded)
                .expect("write folded stacks");
        }
        let mut sc = Scenario::new(format!("hostperf/{ops}"))
            .system(SystemKind::HyperLoop.label())
            .seed(opts.seed)
            .config("primitive", "gWRITE")
            .config("payload_bytes", 1024u64)
            .config("ops", ops)
            .config("window", opts.window)
            .latency(&r.latency)
            .gauge("ops_per_sec", r.ops_per_sec())
            .gauge("replica_cpu", r.replica_cpu)
            .health(r.health.clone())
            .series(r.series.clone())
            .host(r.host.clone());
        if let Some(tr) = &r.trace {
            rep.write_trace(
                &format!("TAIL_hostperf_{ops}.json"),
                &tr.tail.to_artifact_json(&format!("hostperf/{ops}")),
            )
            .expect("trace sink writable");
            sc = sc.tail(tr.tail.clone());
        }
        rep.scenario(sc);
    }
}
