//! Figure 2: the motivating experiment — native (CPU-replicated) MongoDB
//! latency and context switches under multi-tenancy.
//!
//! Three server machines host every replica-set (one primary + two backups
//! each, rotated across the servers exactly like the paper's MongoDB
//! deployment); three client machines run the YCSB front ends. All
//! contention is *endogenous*: the co-located replica processes themselves
//! fight for the servers' cores — no synthetic background load.

use crate::driver::DocDriver;
use crate::report::{us, Report, Scenario};
use baseline::{NaiveChain, NaiveClient, NaiveConfig, NaiveCosts};
use cpusched::{ProcKind, SchedConfig};
use docstore::{DocConfig, ReplicatedDocStore, WriteMode};
use netsim::NodeId;
use simcore::simaudit::{HealthSummary, SeriesSummary};
use simcore::{HealthMonitor, Histogram, HostMeter, HostStats, SimDuration, SimTime, SloConfig};
use testbed::{Cluster, ClusterConfig, ProcRef};
use ycsb::{Generator, Workload};

/// Result of one Figure 2 configuration.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Replica sets co-located on the three servers.
    pub replica_sets: u32,
    /// Cores per server.
    pub cores: u32,
    /// Pooled operation latency across all sets.
    pub latency: simcore::LatencySummary,
    /// Server context switches per second of simulated time.
    pub ctx_per_sec: f64,
    /// Host-side (wall-clock) statistics of the run.
    pub host: HostStats,
    /// Per-replica-set SLO health (each set tracked as its own shard).
    pub health: HealthSummary,
    /// Windowed telemetry series sampled on the run-loop cadence.
    pub series: SeriesSummary,
}

/// The per-op CPU profile of a MongoDB-like replica: command parsing, BSON
/// handling and journal bookkeeping dominate (hundreds of microseconds).
fn mongo_costs() -> NaiveCosts {
    NaiveCosts {
        parse: SimDuration::from_micros(300),
        post: SimDuration::from_micros(1),
        memcpy_bps: 3_000_000_000,
        ..NaiveCosts::default()
    }
}

fn doc_config() -> DocConfig {
    DocConfig {
        capacity: 512,
        max_doc: 1536,
        log_size: 1 << 20,
        n_locks: 64,
    }
}

/// Runs one Figure 2 configuration: `replica_sets` NaiveChain-backed
/// document stores over three `cores`-core servers, each driven closed-loop
/// with `ops_per_set` YCSB-A operations.
pub fn run_fig2_point(replica_sets: u32, cores: u32, ops_per_set: u64, seed: u64) -> Fig2Point {
    let meter = HostMeter::start();
    let servers = [NodeId(0), NodeId(1), NodeId(2)];
    let clients = [NodeId(3), NodeId(4), NodeId(5)];
    let mut cluster = Cluster::new(
        6,
        cores,
        512 << 20,
        ClusterConfig {
            seed,
            sched: SchedConfig {
                time_slice: SimDuration::from_millis(3),
                ..SchedConfig::default()
            },
            ..ClusterConfig::default()
        },
    );

    // Observer-only SLO health: each replica set is tracked as its own
    // shard, so the series block shows the per-set contention signature.
    let health = HealthMonitor::new(SloConfig::default());
    let mut drivers: Vec<ProcRef> = Vec::new();
    for set in 0..replica_sets {
        // Rotate the chain across the servers (primary placement balance).
        let chain_nodes: Vec<NodeId> = (0..3).map(|k| servers[((set + k) % 3) as usize]).collect();
        let client_node = clients[(set % 3) as usize];
        let chain = NaiveChain::setup(
            &mut cluster,
            client_node,
            &chain_nodes,
            NaiveConfig {
                shared_size: 2 << 20,
                cmd_slots: 64,
                prepost_depth: 256,
                window: 16,
                replica_kind: ProcKind::EventDriven,
                costs: mongo_costs(),
            },
        );
        let ack_cq = chain.client.ack_cq();
        let mut store = ReplicatedDocStore::new(chain.client, doc_config(), set as u64 + 1);
        store.set_mode(WriteMode::AppendOnly);
        let gen = Generator::with_value_len(Workload::A, 512, seed ^ (set as u64 * 7919), 1024);
        let d = DocDriver::new(
            store,
            gen,
            ops_per_set,
            20,
            SimDuration::from_micros(150),
            SimDuration::ZERO, // closed loop: YCSB at full throttle
        )
        .with_concurrency(8) // YCSB client threads per set
        .with_health(health.clone(), set);
        let p = cluster.add_app(client_node, ProcKind::EventDriven, Box::new(d));
        cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_micros(1));
        drivers.push(p);
    }

    let mut sim = cluster.into_sim();
    let cap = SimTime::from_secs(3600);
    loop {
        let next = sim.now() + SimDuration::from_millis(50);
        sim.run_until(next);
        health.tick(sim.now());
        let all_done = drivers
            .iter()
            .all(|&p| sim.model.app_mut::<DocDriver<NaiveClient>>(p).is_done());
        if all_done {
            break;
        }
        assert!(sim.now() < cap, "fig2 run stalled");
    }
    assert_eq!(sim.model.fab.stats().errors, 0);

    let mut pooled = Histogram::new();
    for &p in &drivers {
        pooled.merge(&sim.model.app_mut::<DocDriver<NaiveClient>>(p).hist);
    }
    let elapsed = sim.now().as_secs_f64().max(1e-9);
    let ctx: u64 = servers
        .iter()
        .map(|&s| sim.model.sched(s).stats().context_switches)
        .sum();
    let host = meter.finish(
        ops_per_set * replica_sets as u64,
        sim.now().since(SimTime::ZERO),
        sim.queue.stats(),
    );
    Fig2Point {
        replica_sets,
        cores,
        latency: pooled.summary(),
        ctx_per_sec: ctx as f64 / elapsed,
        host,
        health: health.summary(),
        series: health.series(),
    }
}

fn report_points(rep: &mut Report, fig: &str, seed: u64, points: &[Fig2Point], vary_cores: bool) {
    let max_ctx = points.iter().map(|p| p.ctx_per_sec).fold(0.0f64, f64::max);
    rep.line(format!(
        "{:<10} {:>10} {:>10} {:>10} {:>14}",
        if vary_cores { "cores" } else { "sets" },
        "mean",
        "p95",
        "p99",
        "norm ctx-sw"
    ));
    for p in points {
        rep.line(format!(
            "{:<10} {:>10} {:>10} {:>10} {:>14.2}",
            if vary_cores { p.cores } else { p.replica_sets },
            us(p.latency.mean),
            us(p.latency.p95),
            us(p.latency.p99),
            p.ctx_per_sec / max_ctx.max(1e-9),
        ));
        let point = if vary_cores { p.cores } else { p.replica_sets };
        let axis = if vary_cores { "cores" } else { "sets" };
        rep.scenario(
            Scenario::new(format!("{fig}/{axis}{point}"))
                .system("native")
                .seed(seed)
                .config("replica_sets", p.replica_sets)
                .config("cores", p.cores)
                .latency(&p.latency)
                .gauge("ctx_per_sec", p.ctx_per_sec)
                .health(p.health.clone())
                .series(p.series.clone())
                .host(p.host.clone()),
        );
    }
}

/// Figure 2(a): latency and context switches vs number of replica-sets.
pub fn fig2a(rep: &mut Report, quick: bool) {
    rep.banner("Figure 2(a): native MongoDB latency vs co-located replica-sets (16 cores)");
    let ops = if quick { 200 } else { 600 };
    let points: Vec<Fig2Point> = [9u32, 12, 15, 18, 21, 24, 27]
        .into_iter()
        .map(|sets| run_fig2_point(sets, 16, ops, 0x2A))
        .collect();
    report_points(rep, "fig2a", 0x2A, &points, false);
}

/// Figure 2(b): latency and context switches vs cores (18 replica-sets).
pub fn fig2b(rep: &mut Report, quick: bool) {
    rep.banner("Figure 2(b): native MongoDB latency vs server cores (18 replica-sets)");
    let ops = if quick { 200 } else { 600 };
    let points: Vec<Fig2Point> = [2u32, 4, 6, 8, 10, 12, 14, 16]
        .into_iter()
        .map(|cores| run_fig2_point(18, cores, ops, 0x2B))
        .collect();
    report_points(rep, "fig2b", 0x2B, &points, true);
}
