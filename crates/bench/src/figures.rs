//! Runners printing the paper's figures and tables.

use crate::micro::{
    gcas_plan, gmemcpy_plan, gwrite_plan_flush, run_primitive, MicroOpts, MicroResult, SystemKind,
};
use crate::report::{latency_header, latency_row, ratio, us, Report, Scenario};
use simcore::SimDuration;

/// Message sizes of Figure 8.
pub const FIG8_SIZES: [u64; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

/// Message sizes of Figure 9.
pub const FIG9_SIZES: [u64; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];

fn scaled(ops: u64, quick: bool) -> u64 {
    if quick {
        (ops / 8).max(400)
    } else {
        ops
    }
}

/// Builds the machine-readable record of one microbenchmark run.
fn micro_scenario(name: String, kind: SystemKind, opts: &MicroOpts, r: &MicroResult) -> Scenario {
    let mut sc = Scenario::new(name)
        .system(kind.label())
        .seed(opts.seed)
        .config("group_size", opts.group_size)
        .config("window", opts.window)
        .config("ops", opts.ops)
        .config("hogs_per_node", opts.hogs_per_node)
        .config("pace_us", opts.pace.as_micros_f64())
        .latency(&r.latency)
        .gauge("ops_per_sec", r.ops_per_sec())
        .gauge("replica_cpu", r.replica_cpu)
        .health(r.health.clone())
        .series(r.series.clone())
        .host(r.host.clone())
        .metrics(r.registry.clone());
    if let Some(tr) = &r.trace {
        sc = sc
            .stage_attribution(tr.attribution.clone())
            .tail(tr.tail.clone());
    }
    sc
}

/// Figure 8(a): gWRITE latency vs message size, Naïve vs HyperLoop.
pub fn fig8a(rep: &mut Report, quick: bool) {
    rep.banner("Figure 8(a): gWRITE latency vs message size (group=3, loaded replicas)");
    fig8_inner(rep, quick, "fig8a", "gWRITE", |size| {
        gwrite_plan_flush(size, false)
    });
}

/// Figure 8(b): gMEMCPY latency vs message size.
pub fn fig8b(rep: &mut Report, quick: bool) {
    rep.banner("Figure 8(b): gMEMCPY latency vs message size (group=3, loaded replicas)");
    fig8_inner(rep, quick, "fig8b", "gMEMCPY", gmemcpy_plan);
}

fn fig8_inner(
    rep: &mut Report,
    quick: bool,
    fig: &str,
    name: &str,
    plan_of: impl Fn(u64) -> crate::driver::OpPlan,
) {
    let opts = MicroOpts {
        ops: scaled(4000, quick),
        trace: rep.profile_enabled(),
        ..MicroOpts::default()
    };
    rep.line(format!(
        "{:<8} {:<14} {:>10} {:>10} | {:<14} {:>10} {:>10} | p99 gain",
        "size", "Naive", "mean", "p99", "HyperLoop", "mean", "p99"
    ));
    for size in FIG8_SIZES {
        let naive = run_primitive(SystemKind::NaiveEvent, plan_of(size), opts);
        let hl = run_primitive(SystemKind::HyperLoop, plan_of(size), opts);
        rep.line(format!(
            "{:<8} {:<14} {:>10} {:>10} | {:<14} {:>10} {:>10} | {:>8}",
            format!("{size}B"),
            name,
            us(naive.latency.mean),
            us(naive.latency.p99),
            name,
            us(hl.latency.mean),
            us(hl.latency.p99),
            ratio(naive.latency.p99, hl.latency.p99),
        ));
        for (kind, r) in [
            (SystemKind::NaiveEvent, &naive),
            (SystemKind::HyperLoop, &hl),
        ] {
            rep.scenario(
                micro_scenario(format!("{fig}/{size}B/{}", kind.label()), kind, &opts, r)
                    .config("primitive", name)
                    .config("payload_bytes", size),
            );
        }
    }
}

/// Table 2: gCAS latency statistics.
pub fn table2(rep: &mut Report, quick: bool) {
    rep.banner("Table 2: gCAS latency, Naïve vs HyperLoop (group=3, loaded replicas)");
    let opts = MicroOpts {
        ops: scaled(8000, quick),
        trace: rep.profile_enabled(),
        ..MicroOpts::default()
    };
    rep.line(latency_header("system"));
    let naive = run_primitive(SystemKind::NaiveEvent, gcas_plan(3), opts);
    rep.line(latency_row("Naive-RDMA gCAS", &naive.latency));
    let hl = run_primitive(SystemKind::HyperLoop, gcas_plan(3), opts);
    rep.line(latency_row("HyperLoop gCAS", &hl.latency));
    rep.line(format!(
        "gains: mean {} p95 {} p99 {}",
        ratio(naive.latency.mean, hl.latency.mean),
        ratio(naive.latency.p95, hl.latency.p95),
        ratio(naive.latency.p99, hl.latency.p99),
    ));
    for (kind, r) in [
        (SystemKind::NaiveEvent, &naive),
        (SystemKind::HyperLoop, &hl),
    ] {
        rep.scenario(
            micro_scenario(format!("table2/gCAS/{}", kind.label()), kind, &opts, r)
                .config("primitive", "gCAS"),
        );
    }
}

/// Figure 9: gWRITE throughput and replica CPU vs message size (unloaded
/// best case, pinned polling Naïve replicas — the paper's setup).
pub fn fig9(rep: &mut Report, quick: bool) {
    rep.banner("Figure 9: gWRITE throughput + replica CPU (group=3, unloaded)");
    let total_bytes: u64 = if quick { 32 << 20 } else { 256 << 20 };
    rep.line(format!(
        "{:<8} {:>14} {:>10} | {:>14} {:>10}",
        "size", "Naive Kops/s", "CPU", "HL Kops/s", "CPU"
    ));
    for size in FIG9_SIZES {
        let ops = (total_bytes / size).max(200);
        let opts = MicroOpts {
            ops,
            warmup: 50,
            window: 16,
            hogs_per_node: 0,
            pace: SimDuration::ZERO,
            trace: rep.profile_enabled(),
            ..MicroOpts::default()
        };
        let naive = run_primitive(
            SystemKind::NaivePolling,
            gwrite_plan_flush(size, false),
            opts,
        );
        let hl = run_primitive(SystemKind::HyperLoop, gwrite_plan_flush(size, false), opts);
        rep.line(format!(
            "{:<8} {:>14.0} {:>9.0}% | {:>14.0} {:>9.1}%",
            format!("{size}B"),
            naive.ops_per_sec() / 1e3,
            naive.replica_cpu * 100.0,
            hl.ops_per_sec() / 1e3,
            hl.replica_cpu * 100.0,
        ));
        for (kind, r) in [
            (SystemKind::NaivePolling, &naive),
            (SystemKind::HyperLoop, &hl),
        ] {
            rep.scenario(
                micro_scenario(format!("fig9/{size}B/{}", kind.label()), kind, &opts, r)
                    .config("primitive", "gWRITE")
                    .config("payload_bytes", size),
            );
        }
    }
}

/// Figure 10: p99 gWRITE latency vs group size (3/5/7), Naïve vs HyperLoop.
pub fn fig10(rep: &mut Report, quick: bool) {
    rep.banner("Figure 10: 99th-percentile gWRITE latency vs group size (loaded)");
    let sizes: [u64; 4] = [128, 512, 2048, 8192];
    rep.line(format!(
        "{:<8} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "size", "Naive g=3", "g=5", "g=7", "HL g=3", "g=5", "g=7"
    ));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for size in sizes {
        let mut row = vec![format!("{size}B")];
        for kind in [SystemKind::NaiveEvent, SystemKind::HyperLoop] {
            for gs in [3u32, 5, 7] {
                let opts = MicroOpts {
                    ops: scaled(2500, quick),
                    group_size: gs,
                    trace: rep.profile_enabled(),
                    ..MicroOpts::default()
                };
                let r = run_primitive(kind, gwrite_plan_flush(size, false), opts);
                row.push(us(r.latency.p99));
                rep.scenario(
                    micro_scenario(
                        format!("fig10/{size}B/g{gs}/{}", kind.label()),
                        kind,
                        &opts,
                        &r,
                    )
                    .config("primitive", "gWRITE")
                    .config("payload_bytes", size),
                );
            }
        }
        rows.push(row);
    }
    for row in rows {
        rep.line(format!(
            "{:<8} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
            row[0], row[1], row[2], row[3], row[4], row[5], row[6]
        ));
    }
}
