//! Microbenchmark environments: the paper's §6.1 setup.
//!
//! One dedicated client machine drives a chain of `group_size` replica
//! machines (two 8-core CPUs each in the paper; 16 cores here). For the
//! latency experiments the replica machines also host bursty background
//! tenants (the paper's co-located instances / `stress-ng`); the throughput
//! experiment (Fig. 9) runs the paper's best case — pinned, unloaded
//! replicas — because that is where Naïve-RDMA can still keep up on
//! throughput while burning a core.

use crate::driver::{OpPlan, PrimitiveDriver};
use baseline::{NaiveChain, NaiveClient, NaiveConfig};
use cpusched::{HogProfile, ProcKind, SchedConfig};
use hyperloop::apps::install_group_maintenance;
use hyperloop::{GroupClient, GroupConfig, GroupOp, HyperLoopGroup};
use netsim::NodeId;
use rnicsim::Payload;
use simcore::simaudit::{HealthSummary, SeriesSummary};
use simcore::simprof::{CounterSample, CounterSampler, StageAttribution};
use simcore::tailprof::TailProfile;
use simcore::{
    HealthMonitor, HostMeter, HostStats, LatencySummary, MetricsRegistry, SimDuration, SimTime,
    SloConfig, TraceEvent, Tracer,
};
use std::rc::Rc;
use testbed::{Cluster, ClusterConfig, ProcRef};

/// Which system runs the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// NIC-offloaded group primitives; replica CPUs off the critical path.
    HyperLoop,
    /// Replica CPUs forward every hop, event-driven (wake per op).
    NaiveEvent,
    /// Replica CPUs forward every hop, spinning on their CQs.
    NaivePolling,
}

impl SystemKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::HyperLoop => "HyperLoop",
            SystemKind::NaiveEvent => "Naive-Event",
            SystemKind::NaivePolling => "Naive-Polling",
        }
    }
}

/// Microbenchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct MicroOpts {
    /// Replication group size.
    pub group_size: u32,
    /// Cores per machine.
    pub cores: u32,
    /// Background tenant processes per replica machine.
    pub hogs_per_node: u32,
    /// Operations measured (after warm-up).
    pub ops: u64,
    /// Warm-up operations discarded from statistics.
    pub warmup: u64,
    /// Operations kept in flight (1 = closed-loop latency).
    pub window: u32,
    /// Think time between completion and next issue (ZERO = closed loop).
    pub pace: SimDuration,
    /// Scheduler parameters. The default uses a 3 ms effective time slice —
    /// what a CFS box running hundreds of processes converges to
    /// (sched_min_granularity dominates) — which is what bounds a woken
    /// process's queueing delay on the paper's loaded servers.
    pub sched: SchedConfig,
    /// Background tenant burst profile.
    pub hog_profile: HogProfile,
    /// Root seed.
    pub seed: u64,
    /// Capture a causal trace of the run and fold it into a
    /// [`StageAttribution`] (plus counter-track samples) on the result.
    pub trace: bool,
}

impl Default for MicroOpts {
    fn default() -> Self {
        MicroOpts {
            group_size: 3,
            cores: 16,
            hogs_per_node: 96,
            ops: 10_000,
            warmup: 100,
            window: 1,
            pace: SimDuration::from_micros(300),
            sched: SchedConfig {
                time_slice: SimDuration::from_millis(6),
                ..SchedConfig::default()
            },
            hog_profile: HogProfile {
                busy_mean: SimDuration::from_millis(25),
                idle_mean: SimDuration::from_millis(150),
            },
            seed: 0xBEEF,
            trace: false,
        }
    }
}

/// Profiling artifacts of a traced run (present when
/// [`MicroOpts::trace`] was set).
#[derive(Debug, Clone)]
pub struct MicroTrace {
    /// The captured trace events (whole spans; overflow evicts whole ops).
    pub events: Vec<TraceEvent>,
    /// Events discarded by ring overflow.
    pub dropped: u64,
    /// Ops evicted whole by ring overflow.
    pub dropped_ops: u64,
    /// Counter-track samples taken on the watchdog cadence (cluster
    /// counters plus the health monitor's `series.*` tracks).
    pub samples: Vec<CounterSample>,
    /// Per-stage latency attribution folded over every complete op.
    pub attribution: StageAttribution,
    /// Tail-latency profile folded over the same trace ring.
    pub tail: TailProfile,
}

/// Result of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Per-op latency distribution.
    pub latency: LatencySummary,
    /// Wall time from first issue to last completion.
    pub elapsed: SimDuration,
    /// Operations completed.
    pub ops: u64,
    /// Peak replica data-path process CPU, as a fraction of the run (1.0 =
    /// one fully-burnt core).
    pub replica_cpu: f64,
    /// Metrics snapshot of the whole cluster at the end of the run
    /// (fabric/NVM/scheduler/link counters plus the op-latency histogram
    /// under `bench.op_latency`).
    pub registry: MetricsRegistry,
    /// Health/SLO summary of the run (violations left at zero; micro runs
    /// carry no audit handle).
    pub health: HealthSummary,
    /// Windowed telemetry series sampled on the watchdog cadence.
    pub series: SeriesSummary,
    /// Trace-derived profiling artifacts ([`MicroOpts::trace`] runs only).
    pub trace: Option<MicroTrace>,
    /// Host-side (wall-clock) statistics of the run: simulator ops/sec,
    /// event throughput, allocation volume and — for traced runs — the
    /// observability tax measured against a bare re-run.
    pub host: HostStats,
}

impl MicroResult {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

fn replica_nodes(gs: u32) -> Vec<NodeId> {
    (1..=gs).map(NodeId).collect()
}

/// Group config sized for long microbenchmark runs: deep pre-posting keeps
/// the data path independent of maintenance wake-ups under load.
pub fn bench_group_config(window: u32) -> GroupConfig {
    GroupConfig {
        shared_size: 4 << 20,
        meta_slots: 64,
        prepost_depth: 768,
        window,
        first_gen: 0,
    }
}

/// Runs `ops` operations from `plan` through the chosen system and options.
///
/// Every run is metered with a [`HostMeter`]; traced runs
/// ([`MicroOpts::trace`]) additionally measure the *observability tax* by
/// re-running the identical workload with tracing off and comparing wall
/// clocks — the sim timeline of both runs is byte-identical by the
/// [`simcore::hostprof`] determinism contract, only the wall clock moves.
///
/// # Panics
///
/// Panics if the run does not complete within the simulation watchdog.
pub fn run_primitive(kind: SystemKind, plan: OpPlan, opts: MicroOpts) -> MicroResult {
    let plan = Rc::new(std::cell::RefCell::new(plan));
    let share = |p: &Rc<std::cell::RefCell<OpPlan>>| -> OpPlan {
        let p = Rc::clone(p);
        Box::new(move |i| (p.borrow_mut())(i))
    };
    let mut res = run_primitive_once(kind, share(&plan), opts);
    if opts.trace {
        let bare = run_primitive_once(
            kind,
            share(&plan),
            MicroOpts {
                trace: false,
                ..opts
            },
        );
        res.host = res.host.with_bare_wall_ns(bare.host.wall_ns);
    }
    res
}

/// One metered run (no observability-tax re-run).
fn run_primitive_once(kind: SystemKind, plan: OpPlan, opts: MicroOpts) -> MicroResult {
    let meter = HostMeter::start();
    let nodes = opts.group_size + 1;
    let mut cluster = Cluster::new(
        nodes,
        opts.cores,
        256 << 20,
        ClusterConfig {
            seed: opts.seed,
            sched: opts.sched,
            ..ClusterConfig::default()
        },
    );
    let client_node = NodeId(0);
    let replicas = replica_nodes(opts.group_size);
    for &rn in &replicas {
        cluster.add_background_load(rn, opts.hogs_per_node, opts.hog_profile);
    }

    let total = opts.ops + opts.warmup;
    // Sized so whole-span eviction essentially never fires: ~96 events per
    // op across the NIC/wire/sched layers, bounded to keep memory sane.
    let tracer = if opts.trace {
        let cap = (total.saturating_mul(96)).clamp(1 << 16, 1 << 21) as usize;
        let t = Tracer::enabled(cap);
        cluster.set_tracer(t.clone());
        Some(t)
    } else {
        None
    };
    // Observer-only: recording/ticking never feeds the event queue or the
    // RNG, and is on regardless of tracing, so traced and untraced runs
    // carry identical health and series blocks.
    let health = HealthMonitor::new(SloConfig::default());
    if let Some(t) = &tracer {
        health.set_tracer(t.clone());
    }
    let (driver_proc, data_procs, is_hl): (ProcRef, Vec<ProcRef>, bool) = match kind {
        SystemKind::HyperLoop => {
            let mut group = cluster.setup_fabric(|ctx| {
                HyperLoopGroup::setup(ctx, client_node, &replicas, bench_group_config(opts.window))
            });
            if let Some(t) = &tracer {
                group.client.set_tracer(t.clone());
            }
            let maint = install_group_maintenance(
                &mut cluster,
                group.replicas,
                SimDuration::from_nanos(400),
            );
            let ack_cq = group.client.ack_cq();
            let driver = PrimitiveDriver::with_pace(
                group.client,
                plan,
                total,
                opts.window,
                opts.warmup,
                opts.pace,
            )
            .with_health(health.clone(), 0);
            let p = cluster.add_app(client_node, ProcKind::Polling, Box::new(driver));
            cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_nanos(300));
            (p, maint, true)
        }
        SystemKind::NaiveEvent | SystemKind::NaivePolling => {
            let mut chain = NaiveChain::setup(
                &mut cluster,
                client_node,
                &replicas,
                NaiveConfig {
                    window: opts.window,
                    prepost_depth: 768,
                    cmd_slots: 64,
                    replica_kind: if kind == SystemKind::NaivePolling {
                        ProcKind::Polling
                    } else {
                        ProcKind::EventDriven
                    },
                    ..NaiveConfig::default()
                },
            );
            if let Some(t) = &tracer {
                chain.client.set_tracer(t.clone());
            }
            let ack_cq = chain.client.ack_cq();
            let driver = PrimitiveDriver::with_pace(
                chain.client,
                plan,
                total,
                opts.window,
                opts.warmup,
                opts.pace,
            )
            .with_health(health.clone(), 0);
            let p = cluster.add_app(client_node, ProcKind::Polling, Box::new(driver));
            cluster.bind_cq(p, client_node, ack_cq, SimDuration::from_nanos(300));
            (p, chain.replica_procs, false)
        }
    };

    let mut sim = cluster.into_sim();
    // Watchdog: generous cap so pathological stalls fail loudly.
    let cap = SimTime::from_secs(600);
    let mut sampler = opts.trace.then(|| {
        CounterSampler::with_prefixes(&["cluster.fabric.", "cluster.sched.", "cluster.nvm."])
    });
    loop {
        let next = sim.now() + SimDuration::from_millis(20);
        sim.run_until(next);
        health.tick(sim.now());
        if let Some(s) = sampler.as_mut() {
            let mut reg = MetricsRegistry::new();
            sim.model.export_into(&mut reg, "cluster");
            s.sample(sim.now(), &reg);
        }
        let done = if is_hl {
            sim.model
                .app_mut::<PrimitiveDriver<GroupClient>>(driver_proc)
                .is_done()
        } else {
            sim.model
                .app_mut::<PrimitiveDriver<NaiveClient>>(driver_proc)
                .is_done()
        };
        if done {
            break;
        }
        assert!(
            sim.now() < cap,
            "{} run stalled: completed {} of {total}",
            kind.label(),
            if is_hl {
                sim.model
                    .app_mut::<PrimitiveDriver<GroupClient>>(driver_proc)
                    .completed()
            } else {
                sim.model
                    .app_mut::<PrimitiveDriver<NaiveClient>>(driver_proc)
                    .completed()
            }
        );
    }

    let (hist, started, done_at) = if is_hl {
        let d = sim
            .model
            .app_mut::<PrimitiveDriver<GroupClient>>(driver_proc);
        (d.hist.clone(), d.started_at, d.done_at)
    } else {
        let d = sim
            .model
            .app_mut::<PrimitiveDriver<NaiveClient>>(driver_proc);
        (d.hist.clone(), d.started_at, d.done_at)
    };
    let elapsed = done_at.expect("done").since(started.expect("started"));
    // Normalize CPU by the whole run (processes are busy from time zero,
    // including the warm-up ramp), capping at one core.
    let sim_total = sim.now().since(simcore::SimTime::ZERO);
    let replica_cpu = data_procs
        .iter()
        .map(|&p| {
            let (busy, _) = sim.model.proc_cpu(p);
            (busy.as_secs_f64() / sim_total.as_secs_f64().max(1e-12)).min(1.0)
        })
        .fold(0.0f64, f64::max);
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");

    let mut registry = MetricsRegistry::new();
    sim.model.export_into(&mut registry, "cluster");
    registry.merge_histogram("bench.op_latency", &hist);
    registry.set_gauge("bench.replica_cpu", replica_cpu);
    registry.set_gauge("bench.elapsed_secs", elapsed.as_secs_f64());

    // Stop the host meter before folding trace artifacts: the attribution
    // and tail folds are post-run analysis, not simulation work, and must
    // not be charged to the measured arm's wall clock (or the
    // observability tax would bill fold time as tracing overhead).
    let host = meter.finish(opts.ops, sim_total, sim.queue.stats());

    let series = health.series();
    let trace = tracer.map(|t| {
        let events = t.events();
        let dropped = t.dropped();
        let attribution = StageAttribution::from_events(&events);
        let tail = TailProfile::from_events(&events);
        let mut samples = sampler.map(|s| s.samples().to_vec()).unwrap_or_default();
        samples.extend(series.counter_samples());
        MicroTrace {
            events,
            dropped,
            dropped_ops: t.dropped_ops(),
            samples,
            attribution,
            tail,
        }
    });

    MicroResult {
        latency: hist.summary(),
        elapsed,
        ops: opts.ops,
        replica_cpu,
        registry,
        health: health.summary(),
        series,
        trace,
        host,
    }
}

/// A gWRITE plan: replicate `size` bytes at a rotating offset. `flush`
/// interleaves a gFLUSH (durable at every hop before forwarding).
pub fn gwrite_plan_flush(size: u64, flush: bool) -> OpPlan {
    Box::new(move |i| GroupOp::Write {
        offset: (i % 64) * 8192,
        data: Payload::filled((i & 0xFF) as u8, size as usize),
        flush,
    })
}

/// A durably-flushed gWRITE plan (see [`gwrite_plan_flush`]).
pub fn gwrite_plan(size: u64) -> OpPlan {
    gwrite_plan_flush(size, true)
}

/// A gMEMCPY plan: every replica copies `size` bytes log→db.
pub fn gmemcpy_plan(size: u64) -> OpPlan {
    Box::new(move |i| GroupOp::Memcpy {
        src: (i % 16) * 65536,
        dst: 2 << 20 | ((i % 16) * 65536),
        len: size,
        flush: true,
    })
}

/// A gCAS plan: sequential compare-and-swap on one lock word (always
/// matching, as a lock handover would).
pub fn gcas_plan(group_size: u32) -> OpPlan {
    Box::new(move |i| GroupOp::Cas {
        offset: 0,
        compare: i,
        swap: i + 1,
        execute: hyperloop::ExecuteMap::all(group_size),
    })
}
