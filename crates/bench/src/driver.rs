//! Client driver applications: closed-loop/windowed op generators that live
//! on the (dedicated, unloaded) client machine, exactly like the paper's
//! benchmark clients. Latency is recorded inside the simulation, so
//! measurements are event-precise.

use hyperloop::{GroupAck, GroupOp, GroupTransport};
use simcore::{HealthMonitor, Histogram, SimDuration, SimTime};
use std::collections::HashMap;
use testbed::{Env, HostApp, HostEvent};

/// Produces the `i`-th operation of a benchmark plan.
pub type OpPlan = Box<dyn FnMut(u64) -> GroupOp>;

/// A generic primitive-level benchmark client over any [`GroupTransport`].
///
/// Keeps up to `window` operations in flight; records the latency of each
/// op from issue to chain ack; optionally waits `think` between completions
/// and re-issues.
pub struct PrimitiveDriver<T> {
    transport: T,
    plan: OpPlan,
    total: u64,
    window: u32,
    warmup: u64,
    issued: u64,
    completed: u64,
    /// Think time between a completion and the next issue (ZERO = closed
    /// loop). Paces the run across background-load cycles.
    pace: SimDuration,
    sent_at: HashMap<u64, SimTime>,
    /// Health monitor fed every issue/ack (including warm-up), plus the
    /// shard the feed is attributed to.
    health: Option<(HealthMonitor, u32)>,
    /// Reused completion buffer: one driver-side allocation for the whole
    /// run instead of a fresh ack vector per poll.
    ack_scratch: Vec<GroupAck>,
    /// Latency histogram (completed minus warm-up ops).
    pub hist: Histogram,
    /// When the first op was issued.
    pub started_at: Option<SimTime>,
    /// When the last op completed.
    pub done_at: Option<SimTime>,
}

impl<T: GroupTransport + 'static> PrimitiveDriver<T> {
    /// Creates a driver that runs `total` ops from `plan`, keeping `window`
    /// in flight and discarding the first `warmup` from statistics.
    pub fn new(transport: T, plan: OpPlan, total: u64, window: u32, warmup: u64) -> Self {
        Self::with_pace(transport, plan, total, window, warmup, SimDuration::ZERO)
    }

    /// Like [`PrimitiveDriver::new`], but waits `pace` after each completion
    /// before issuing the next op.
    pub fn with_pace(
        transport: T,
        plan: OpPlan,
        total: u64,
        window: u32,
        warmup: u64,
        pace: SimDuration,
    ) -> Self {
        PrimitiveDriver {
            transport,
            plan,
            total,
            window,
            warmup,
            issued: 0,
            completed: 0,
            pace,
            sent_at: HashMap::new(),
            health: None,
            ack_scratch: Vec::new(),
            hist: Histogram::new(),
            started_at: None,
            done_at: None,
        }
    }

    /// Feeds every issue/ack (including warm-up) to `health`, attributed
    /// to `shard`.
    pub fn with_health(mut self, health: HealthMonitor, shard: u32) -> Self {
        self.health = Some((health, shard));
        self
    }

    /// Completed operation count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True once every op has completed.
    pub fn is_done(&self) -> bool {
        self.completed >= self.total
    }

    /// The wrapped transport (e.g. to inspect state post-run).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn fill_window(&mut self, env: &mut Env<'_>) {
        if !self.pace.is_zero() && self.issued > 0 {
            return; // paced mode: issues happen from the timer
        }
        self.fill_now(env);
    }

    fn fill_now(&mut self, env: &mut Env<'_>) {
        while self.issued < self.total
            && self.transport.can_issue()
            && self.issued - self.completed < self.window as u64
        {
            let op = (self.plan)(self.issued);
            let now = env.now();
            let gen = match env.with_fabric(|ctx| self.transport.issue(ctx, op)) {
                Ok(g) => g,
                Err(_) => break,
            };
            self.sent_at.insert(gen, now);
            if let Some((h, shard)) = &self.health {
                h.record_issue(now, *shard);
            }
            if self.started_at.is_none() {
                self.started_at = Some(now);
            }
            self.issued += 1;
        }
    }
}

impl<T: GroupTransport + 'static> HostApp for PrimitiveDriver<T> {
    fn on_event(&mut self, env: &mut Env<'_>, event: HostEvent) {
        match event {
            HostEvent::Start => {
                if self.pace.is_zero() {
                    self.fill_window(env);
                } else {
                    self.fill_now(env);
                }
            }
            HostEvent::Timer(_) => self.fill_now(env),
            HostEvent::CqReady(cq) => {
                debug_assert_eq!(cq, self.transport.ack_cq());
                let mut acks = std::mem::take(&mut self.ack_scratch);
                acks.clear();
                env.with_fabric(|ctx| self.transport.poll_into(ctx, &mut acks));
                let now = env.now();
                for ack in acks.drain(..) {
                    if let Some(sent) = self.sent_at.remove(&ack.gen) {
                        self.completed += 1;
                        if let Some((h, shard)) = &self.health {
                            h.record_ack(now, *shard, now.since(sent));
                        }
                        if self.completed > self.warmup {
                            self.hist.record(now.since(sent));
                        }
                        if self.completed >= self.total {
                            self.done_at = Some(now);
                        }
                    }
                }
                self.ack_scratch = acks;
                if self.pace.is_zero() {
                    self.fill_window(env);
                } else if self.issued < self.total {
                    env.set_timer(self.pace, 0);
                }
            }
            _ => {}
        }
    }
}

/// YCSB driver over the replicated KV store (the Fig. 11 RocksDB client):
/// reads hit the memtable; updates run the replicated `Append` path and are
/// the measured operations, exactly as in the paper.
pub struct KvDriver<T> {
    store: kvstore::ReplicatedKv<T>,
    gen: ycsb::Generator,
    total_writes: u64,
    warmup: u64,
    pace: SimDuration,
    checkpoint_every: u64,
    issued: u64,
    completed: u64,
    /// Health monitor fed every issue/ack (including warm-up), plus the
    /// shard the feed is attributed to.
    health: Option<(HealthMonitor, u32)>,
    /// Issue timestamps in completion (FIFO) order.
    sent_order: std::collections::VecDeque<SimTime>,
    /// A write that hit back-pressure, retried after checkpointing.
    retry: Option<(u64, Vec<u8>)>,
    /// Update-latency histogram.
    pub hist: Histogram,
    /// Set when all writes completed.
    pub done_at: Option<SimTime>,
}

impl<T: GroupTransport + 'static> KvDriver<T> {
    /// Creates the driver: `total_writes` measured updates (plus `warmup`).
    pub fn new(
        store: kvstore::ReplicatedKv<T>,
        gen: ycsb::Generator,
        total_writes: u64,
        warmup: u64,
        pace: SimDuration,
    ) -> Self {
        KvDriver {
            store,
            gen,
            total_writes,
            warmup,
            pace,
            checkpoint_every: 128,
            issued: 0,
            completed: 0,
            health: None,
            sent_order: std::collections::VecDeque::new(),
            retry: None,
            hist: Histogram::new(),
            done_at: None,
        }
    }

    /// Feeds every issue/ack (including warm-up) to `health`, attributed
    /// to `shard`.
    pub fn with_health(mut self, health: HealthMonitor, shard: u32) -> Self {
        self.health = Some((health, shard));
        self
    }

    /// Completed update count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True once every update completed.
    pub fn is_done(&self) -> bool {
        self.completed >= self.total_writes + self.warmup
    }

    /// Attempts one put; on back-pressure, checkpoints and stashes for
    /// retry. Returns true if the put was issued.
    fn try_put(&mut self, env: &mut Env<'_>, key: u64, value: Vec<u8>) -> bool {
        let now = env.now();
        let r = env.with_fabric(|ctx| self.store.put(ctx, key, value.clone()));
        match r {
            Ok(_gen) => {
                self.sent_order.push_back(now);
                if let Some((h, shard)) = &self.health {
                    h.record_issue(now, *shard);
                }
                self.issued += 1;
                true
            }
            Err(kvstore::KvError::Busy) => {
                // Reclaim log space off the critical path and retry later.
                env.with_fabric(|ctx| {
                    self.store.checkpoint(ctx, 64);
                });
                self.retry = Some((key, value));
                false
            }
            Err(e) => panic!("kv put failed: {e}"),
        }
    }

    fn issue_one(&mut self, env: &mut Env<'_>) {
        if self.issued >= self.total_writes + self.warmup {
            return;
        }
        if let Some((key, value)) = self.retry.take() {
            self.try_put(env, key, value);
            return;
        }
        // Draw ops until a write; reads are memtable hits (not measured).
        for _ in 0..1000 {
            let op = self.gen.next_op();
            match op {
                ycsb::Operation::Read { key } => {
                    let _ = self.store.get(key);
                }
                ycsb::Operation::Scan { key, len } => {
                    let _ = self.store.scan(key, len);
                }
                ycsb::Operation::Update { key, value }
                | ycsb::Operation::Insert { key, value }
                | ycsb::Operation::ReadModifyWrite { key, value } => {
                    let key = key % self.store.config().capacity;
                    self.try_put(env, key, value);
                    return;
                }
                ycsb::Operation::Transfer { .. } => {
                    unreachable!("multi-key transfers need the txn API (see txnmix)")
                }
            }
        }
    }
}

impl<T: GroupTransport + 'static> HostApp for KvDriver<T> {
    fn on_event(&mut self, env: &mut Env<'_>, event: HostEvent) {
        match event {
            HostEvent::Start | HostEvent::Timer(_) => self.issue_one(env),
            HostEvent::CqReady(_) => {
                let done = env.with_fabric(|ctx| self.store.poll(ctx));
                let now = env.now();
                let finished = done.len();
                // Puts complete in issue (chain FIFO) order.
                for _ in 0..finished {
                    let sent = self.sent_order.pop_front().expect("tracked put");
                    self.completed += 1;
                    if let Some((h, shard)) = &self.health {
                        h.record_ack(now, *shard, now.since(sent));
                    }
                    if self.completed > self.warmup {
                        self.hist.record(now.since(sent));
                    }
                    if self.is_done() {
                        self.done_at = Some(now);
                    }
                }
                if finished > 0 && self.completed.is_multiple_of(self.checkpoint_every) {
                    env.with_fabric(|ctx| {
                        self.store.checkpoint(ctx, 64);
                    });
                }
                if !self.is_done() && self.sent_order.is_empty() {
                    if self.pace.is_zero() || finished == 0 {
                        // Closed loop, or resources freed by checkpoint acks.
                        self.issue_one(env);
                    } else {
                        env.set_timer(self.pace, 0);
                    }
                }
            }
            _ => {}
        }
    }
}

/// YCSB driver over the replicated document store (Figs. 2 and 12): every
/// operation pays the client software-stack cost; writes additionally run
/// the lock + journal + execute pipeline and are measured end-to-end.
pub struct DocDriver<T> {
    store: docstore::ReplicatedDocStore<T>,
    gen: ycsb::Generator,
    total_ops: u64,
    warmup: u64,
    /// Fixed client software-stack cost added to every operation (query
    /// parsing/validation — the paper's "overhead inherent to MongoDB's
    /// software stack in the client").
    stack_cost: SimDuration,
    /// Extra cost per scanned document.
    scan_per_doc: SimDuration,
    pace: SimDuration,
    /// Maximum writes kept in flight (YCSB client threads).
    concurrency: u64,
    /// Health monitor fed every write issue/ack, plus the shard the feed
    /// is attributed to.
    health: Option<(HealthMonitor, u32)>,
    ops_done: u64,
    writes_in_flight: u64,
    /// A write drawn while another was in flight, issued on completion.
    pending_write: Option<docstore::Document>,
    /// All-operation latency histogram (reads, scans and writes).
    pub hist: Histogram,
    /// Write-only latency histogram.
    pub write_hist: Histogram,
    /// Set when the op quota is met and the pipeline drained.
    pub done_at: Option<SimTime>,
}

impl<T: GroupTransport + 'static> DocDriver<T> {
    /// Creates the driver for `total_ops` YCSB operations.
    pub fn new(
        store: docstore::ReplicatedDocStore<T>,
        gen: ycsb::Generator,
        total_ops: u64,
        warmup: u64,
        stack_cost: SimDuration,
        pace: SimDuration,
    ) -> Self {
        DocDriver {
            store,
            gen,
            total_ops,
            warmup,
            stack_cost,
            scan_per_doc: SimDuration::from_micros(2),
            pace,
            concurrency: 1,
            health: None,
            ops_done: 0,
            writes_in_flight: 0,
            pending_write: None,
            hist: Histogram::new(),
            write_hist: Histogram::new(),
            done_at: None,
        }
    }

    /// Operations completed so far.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// The wrapped store (diagnostics).
    pub fn store_ref(&self) -> &docstore::ReplicatedDocStore<T> {
        &self.store
    }

    /// Keeps up to `n` writes in flight (models `n` YCSB client threads
    /// sharing one front end).
    pub fn with_concurrency(mut self, n: u64) -> Self {
        self.concurrency = n.max(1);
        self
    }

    /// Feeds every write issue/ack (including warm-up) to `health`,
    /// attributed to `shard`.
    pub fn with_health(mut self, health: HealthMonitor, shard: u32) -> Self {
        self.health = Some((health, shard));
        self
    }

    /// True once the quota is met and no writes are pending.
    pub fn is_done(&self) -> bool {
        self.ops_done >= self.total_ops && self.writes_in_flight == 0
    }

    fn record(&mut self, lat: SimDuration) {
        self.ops_done += 1;
        if self.ops_done > self.warmup {
            self.hist.record(lat);
        }
    }

    fn issue_write(&mut self, env: &mut Env<'_>, doc: docstore::Document) -> bool {
        let now = env.now();
        let r = env.with_fabric(|ctx| self.store.write(ctx, doc.clone()));
        match r {
            Ok(_) => {
                self.writes_in_flight += 1;
                if let Some((h, shard)) = &self.health {
                    h.record_issue(now, *shard);
                }
                true
            }
            Err(docstore::DocError::Busy) => {
                self.pending_write = Some(doc);
                false
            }
            Err(e) => panic!("doc write failed: {e}"),
        }
    }

    fn step(&mut self, env: &mut Env<'_>) {
        // A stashed write goes first.
        if self.writes_in_flight < self.concurrency {
            if let Some(doc) = self.pending_write.take() {
                if !self.issue_write(env, doc) {
                    return;
                }
            }
        }
        while self.ops_done + self.writes_in_flight < self.total_ops
            && self.writes_in_flight < self.concurrency
            && self.pending_write.is_none()
        {
            let op = self.gen.next_op();
            match op {
                ycsb::Operation::Read { key } => {
                    let _ = self.store.read(key % self.store.config().capacity);
                    self.record(self.stack_cost);
                }
                ycsb::Operation::Scan { key, len } => {
                    let _ = self.store.scan(key % self.store.config().capacity, len);
                    self.record(self.stack_cost + self.scan_per_doc * len);
                }
                ycsb::Operation::Update { key, value }
                | ycsb::Operation::Insert { key, value }
                | ycsb::Operation::ReadModifyWrite { key, value } => {
                    let id = key % self.store.config().capacity;
                    let doc = docstore::Document::with_field(id, "field0", value);
                    if !self.issue_write(env, doc) {
                        return; // back-pressure: resume on completion
                    }
                    if self.writes_in_flight >= self.concurrency {
                        return;
                    }
                    continue;
                }
                ycsb::Operation::Transfer { .. } => {
                    unreachable!("multi-key transfers need the txn API (see txnmix)")
                }
            }
            if !self.pace.is_zero() {
                env.set_timer(self.pace, 0);
                return;
            }
        }
        if self.is_done() && self.done_at.is_none() {
            self.done_at = Some(env.now());
        }
    }
}

impl<T: GroupTransport + 'static> HostApp for DocDriver<T> {
    fn on_event(&mut self, env: &mut Env<'_>, event: HostEvent) {
        match event {
            HostEvent::Start | HostEvent::Timer(_) => self.step(env),
            HostEvent::CqReady(_) => {
                let done = env.with_fabric(|ctx| self.store.poll(ctx));
                let completions = done.len();
                let now = env.now();
                for tx in done {
                    self.writes_in_flight = self.writes_in_flight.saturating_sub(1);
                    let lat = tx.finished.since(tx.started) + self.stack_cost;
                    if let Some((h, shard)) = &self.health {
                        h.record_ack(now, *shard, lat);
                    }
                    self.ops_done += 1;
                    if self.ops_done > self.warmup {
                        self.hist.record(lat);
                        self.write_hist.record(lat);
                    }
                }
                if self.is_done() {
                    if self.done_at.is_none() {
                        self.done_at = Some(env.now());
                    }
                } else if completions > 0 {
                    // Native mode: apply the journal backlog off the
                    // critical path (no-op for the full pipeline).
                    env.with_fabric(|ctx| {
                        self.store.apply_backlog(ctx, 16);
                    });
                    // Re-arm only on real completions; intermediate phase
                    // acks must not accelerate the op stream.
                    if self.pace.is_zero() {
                        self.step(env);
                    } else {
                        env.set_timer(self.pace, 0);
                    }
                }
            }
            _ => {}
        }
    }
}
