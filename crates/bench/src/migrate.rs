//! The live-migration benchmark: pause-window cost under load.
//!
//! A fixed offered load runs through `n` chains exactly as in the
//! shard-scaling bench, but halfway through, shard 0 is migrated onto a
//! standby chain with the live state machine
//! ([`MigrationRun::begin`]/[`finish`](MigrationRun::finish)): the shard
//! pauses with its window full, the bulk copy races that in-flight tail
//! through the fabric, fresh shard-0 ops park in the bounded holding pen,
//! and every other shard keeps issuing. The figures of merit are the
//! pause-window length, the throughput dip while the window is open, and
//! how much of the WAL tail had to be replayed — the costs the paper's
//! static-placement sections never have to pay.

use crate::report::{us, Report, Scenario};
use crate::shardscale::SHARD_COUNTS;
use hyperloop::{
    plan_migration, GroupConfig, GroupOp, HyperLoopGroup, MigrationRun, ShardId, ShardSet,
};
use netsim::NodeId;
use rnicsim::Payload;
use simcore::simaudit::{op_id_base, HealthSummary, Probe, SeriesSummary};
use simcore::simprof::{chrome_trace_with_counters, CounterSampler};
use simcore::tailprof::TailProfile;
use simcore::{
    Audit, HealthMonitor, Histogram, HostMeter, HostStats, LatencySummary, MetricsRegistry,
    SimDuration, SimRng, SimTime, SloConfig, Tracer,
};
use std::collections::{HashMap, VecDeque};
use testbed::cluster::drive;
use testbed::{Cluster, ClusterConfig, ShardPlacement};

/// Live-migration benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct MigrateOpts {
    /// Replicas per shard chain (and on the standby chain).
    pub replicas_per_shard: u32,
    /// Total operations across all shards.
    pub ops: u64,
    /// Per-shard in-flight window.
    pub window: u32,
    /// gWRITE payload bytes.
    pub payload: u64,
    /// Ops parked in the holding pen while the pause window is open.
    pub defer: u64,
    /// Root seed.
    pub seed: u64,
    /// Sample counter tracks (per-shard acked, pen depth, migration copy
    /// bytes) on the bench-loop cadence.
    pub trace: bool,
}

impl Default for MigrateOpts {
    fn default() -> Self {
        MigrateOpts {
            replicas_per_shard: 3,
            ops: 4096,
            window: 16,
            payload: 1024,
            defer: 16,
            seed: 0x3161_847E,
            trace: false,
        }
    }
}

/// Result of one migration arm.
#[derive(Debug, Clone)]
pub struct MigrateResult {
    /// Shard count of this arm (shard 0 is the one that moves).
    pub shards: u32,
    /// Per-op latency distribution, including ops caught by the pause.
    pub latency: LatencySummary,
    /// Wall time from first issue to last ack.
    pub elapsed: SimDuration,
    /// Operations completed (= the offered load).
    pub ops: u64,
    /// Pause-window length (begin to cutover).
    pub pause: SimDuration,
    /// WAL-tail ranges replayed after the raced bulk copy.
    pub replayed: u64,
    /// Bytes moved (bulk copy + seed + replay).
    pub copy_bytes: u64,
    /// Ops that waited out the window in the holding pen.
    pub penned: u64,
    /// Throughput inside the migration window over steady throughput
    /// (1.0 = no dip).
    pub dip: f64,
    /// Shard epoch after the cutover.
    pub epoch: u64,
    /// Cluster + shard-set metrics snapshot (post-migration chains).
    pub registry: MetricsRegistry,
    /// Audit/health summary: invariant violations (expected zero) plus
    /// per-shard SLO states and breach counts.
    pub health: HealthSummary,
    /// Windowed telemetry series sampled at every health tick (always on,
    /// so traced and untraced arms carry identical points).
    pub series: SeriesSummary,
    /// Tail-latency exemplars and root-cause attribution, folded from the
    /// trace ring ([`MigrateOpts::trace`] arms only).
    pub tail: Option<TailProfile>,
    /// The audit's structured violation report (deterministic JSON).
    pub audit_json: String,
    /// Chrome trace JSON with op spans *and* the sampled counter tracks
    /// ([`MigrateOpts::trace`] arms only). Op ids are epoch-qualified, so
    /// spans survive the cutover instead of colliding with the retired
    /// chain's generations.
    pub chrome_trace: Option<String>,
    /// Host-side (wall-clock) statistics, including the observability tax
    /// of the always-on audit tap (measured against a bare re-run).
    pub host: HostStats,
}

impl MigrateResult {
    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs the fixed offered load through `n_shards` chains, migrating shard 0
/// to a standby chain at the halfway mark.
///
/// Auditing is always on in this sweep, so the observability tax is
/// measured by re-running the identical load with the audit and trace taps
/// off (same deterministic timeline, less host work).
///
/// # Panics
///
/// Panics on data-path errors, lost operations, or a stalled run.
pub fn run_migrate(n_shards: u32, opts: MigrateOpts) -> MigrateResult {
    let mut res = run_migrate_once(n_shards, opts, true);
    let bare = run_migrate_once(
        n_shards,
        MigrateOpts {
            trace: false,
            ..opts
        },
        false,
    );
    res.host = res.host.with_bare_wall_ns(bare.host.wall_ns);
    res
}

/// One metered arm. `observed` keeps the standard audit tap on; the bare
/// (`observed = false`) run disables every tap but drives the exact same
/// issue/migrate/poll/replenish loop.
fn run_migrate_once(n_shards: u32, opts: MigrateOpts, observed: bool) -> MigrateResult {
    let meter = HostMeter::start();
    let client = NodeId(0);
    let rps = opts.replicas_per_shard;
    // One extra chain's worth of nodes sits idle as the migration target.
    let nodes = 1 + (n_shards + 1) * rps;
    let cluster = Cluster::new(
        nodes,
        4,
        256 << 20,
        ClusterConfig {
            seed: opts.seed,
            ..ClusterConfig::default()
        },
    );
    let mut chains: Vec<Vec<NodeId>> = (0..n_shards)
        .map(|s| (0..rps).map(|r| NodeId(1 + s * rps + r)).collect())
        .collect();
    let standby: Vec<NodeId> = (0..rps).map(|r| NodeId(1 + n_shards * rps + r)).collect();
    let placement = ShardPlacement::Explicit(chains.clone());
    assert_eq!(cluster.place_shards(&placement, n_shards, client), chains);

    let cfg = GroupConfig {
        shared_size: 4 << 20,
        meta_slots: 64,
        prepost_depth: 128,
        window: opts.window,
        first_gen: 0,
    };
    let mut cluster = cluster;
    // Auditing is always on for measured arms: the invariant checkers
    // (including migration safety across the cutover) tap the trace stream
    // whether or not a trace buffer is kept. The bare arm of the
    // observability-tax measurement drops the tap.
    let audit = if observed {
        Audit::standard()
    } else {
        Audit::disabled()
    };
    let tracer = if opts.trace {
        let cap = (opts.ops.saturating_mul(96)).clamp(1 << 16, 1 << 21) as usize;
        Tracer::enabled(cap).with_audit(audit.clone())
    } else {
        Tracer::disabled().with_audit(audit.clone())
    };
    cluster.set_tracer(tracer.clone());
    let health = HealthMonitor::new(SloConfig::default());
    health.set_tracer(tracer.clone());
    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .enumerate()
            .map(|(s, chain)| {
                // Epoch-qualified, per-shard op-id bases: generations stay
                // globally unique across shards and across the cutover.
                let cfg = GroupConfig {
                    first_gen: op_id_base(s as u32, 0),
                    ..cfg
                };
                HyperLoopGroup::setup(ctx, client, chain, cfg)
            })
            .collect()
    });
    let (mut clients, mut replicas): (Vec<_>, Vec<_>) =
        groups.into_iter().map(|g| (g.client, g.replicas)).unzip();
    for c in clients.iter_mut() {
        c.set_tracer(tracer.clone());
    }
    let mut set = ShardSet::with_hash_router(clients);

    let mut sim = cluster.into_sim();
    sim.run(); // drain group wiring

    // Teach the flow-control auditor each shard's window before traffic.
    for s in 0..n_shards {
        audit.probe(
            sim.now(),
            Probe::Window {
                shard: s,
                window: opts.window as u64,
            },
        );
    }

    // Same offered load and routing discipline as the shard-scaling bench,
    // so the two figures are directly comparable per arm.
    let mut rng = SimRng::new(opts.seed ^ 0x51AB);
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); n_shards as usize];
    for _ in 0..opts.ops {
        let key = rng.next_u64();
        queues[set.route(key).0 as usize].push_back(key);
    }
    let op_for = |key: u64, payload: u64| GroupOp::Write {
        offset: (key % 64) * 8192,
        data: Payload::filled((key & 0xFF) as u8, payload as usize),
        flush: true,
    };

    let mig_shard = ShardId(0);
    let migrate_at = opts.ops / 2;
    let mut migrated: Option<(SimDuration, u64, u64, u64, u64)> = None;
    let mut window_tput = 0.0f64;

    let mut sent: HashMap<(u32, u64), SimTime> = HashMap::new();
    let mut hist = Histogram::new();
    let started = sim.now();
    let mut done = 0u64;
    let mut sampler = opts
        .trace
        .then(|| CounterSampler::with_prefixes(&["bench.shards.", "cluster.sched."]));
    while done < opts.ops {
        drive(&mut sim, |ctx| {
            for s in 0..n_shards {
                let sid = ShardId(s);
                while set.can_issue_on(sid) {
                    let Some(key) = queues[s as usize].pop_front() else {
                        break;
                    };
                    let gen = set
                        .issue_on(ctx, sid, op_for(key, opts.payload))
                        .expect("window checked");
                    sent.insert((s, gen), ctx.now);
                    health.record_issue(ctx.now, s);
                }
            }
        });

        if migrated.is_none() && done >= migrate_at {
            // -- The live migration, launched right after a refill so shard
            // 0's window is full and the bulk copy genuinely races an
            // in-flight tail. The other shards' windows are also full, so
            // they keep completing work throughout the pause. --
            let plan = plan_migration(
                mig_shard,
                set.epoch(mig_shard),
                &chains[0],
                &standby,
                cfg.shared_size,
            );
            let run = MigrationRun::begin(&mut sim, &mut set, plan);
            let t_begin = run.paused_at();
            let done_before = done;
            // Fresh shard-0 keys park in the bounded holding pen while the
            // window is open.
            let mut penned: Vec<(u64, SimTime)> = Vec::new();
            while (penned.len() as u64) < opts.defer {
                let Some(key) = queues[0].pop_front() else {
                    break;
                };
                match set.defer_on(mig_shard, op_for(key, opts.payload)) {
                    Ok(()) => {
                        penned.push((key, sim.now()));
                        health.record_issue(sim.now(), mig_shard.0);
                        health.record_pen_depth(
                            sim.now(),
                            mig_shard.0,
                            set.pen_len(mig_shard) as u64,
                        );
                        audit.probe(
                            sim.now(),
                            Probe::PenDepth {
                                shard: mig_shard.0,
                                depth: set.pen_len(mig_shard) as u64,
                                capacity: set.pen_capacity() as u64,
                            },
                        );
                    }
                    Err(_) => {
                        queues[0].push_front(key); // pen full: back-pressure
                        break;
                    }
                }
            }
            // Sample with the pen at its fullest, so the counter track
            // shows the holding-pen spike inside the pause window.
            if let Some(s) = sampler.as_mut() {
                let mut reg = MetricsRegistry::new();
                set.export_into(&mut reg, "bench.shards");
                s.sample(sim.now(), &reg);
            }
            let outcome = run.finish(&mut sim, &mut set);
            replicas[0] = outcome.replicas; // old chain's handles are dead
            chains[0] = standby.clone();
            for a in outcome.drained {
                let t0 = sent
                    .remove(&(a.shard.0, a.ack.gen))
                    .expect("drained ack for an op we issued");
                let lat = sim.now().since(t0);
                hist.record(lat);
                health.record_ack(sim.now(), a.shard.0, lat);
                done += 1;
            }
            // Penned ops re-issued on the new epoch, in pen order. The new
            // chain's generations are epoch-qualified, so they can never
            // collide with old-epoch keys still outstanding in `sent`.
            assert_eq!(outcome.resumed.len(), penned.len(), "pen drain lost ops");
            for (gen, (_key, t0)) in outcome.resumed.iter().zip(&penned) {
                sent.insert((mig_shard.0, *gen), *t0);
            }
            let span = sim.now().since(t_begin);
            window_tput = (done - done_before) as f64 / span.as_secs_f64().max(1e-12);
            migrated = Some((
                outcome.stats.pause,
                outcome.stats.replayed,
                outcome.stats.copy_bytes,
                penned.len() as u64,
                outcome.stats.epoch,
            ));
            continue;
        }

        sim.run();
        let acks = drive(&mut sim, |ctx| set.poll(ctx));
        if let Some(s) = sampler.as_mut() {
            let mut reg = MetricsRegistry::new();
            sim.model.export_into(&mut reg, "cluster");
            set.export_into(&mut reg, "bench.shards");
            s.sample(sim.now(), &reg);
        }
        assert!(!acks.is_empty(), "run stalled at {done}/{} ops", opts.ops);
        let mut drained = vec![0u32; n_shards as usize];
        for a in acks {
            let t0 = sent
                .remove(&(a.shard.0, a.ack.gen))
                .expect("ack for an op we issued");
            let lat = sim.now().since(t0);
            hist.record(lat);
            health.record_ack(sim.now(), a.shard.0, lat);
            drained[a.shard.0 as usize] += 1;
            done += 1;
        }
        health.tick(sim.now());
        drive(&mut sim, |ctx| {
            for (shard, &n) in drained.iter().enumerate() {
                if n > 0 {
                    for r in replicas[shard].iter_mut() {
                        r.replenish(ctx, n);
                    }
                }
            }
        });
    }
    let elapsed = sim.now().since(started);
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");
    assert_eq!(set.completed(), opts.ops, "lost operations");
    let (pause, replayed, copy_bytes, penned, epoch) =
        migrated.expect("load too small to reach the migration point");

    let steady_tput = opts.ops as f64 / elapsed.as_secs_f64().max(1e-12);
    let mut registry = MetricsRegistry::new();
    sim.model.export_into(&mut registry, "cluster");
    sim.model
        .export_shards_into(&mut registry, &chains, "bench");
    set.export_into(&mut registry, "bench.shards");
    registry.merge_histogram("bench.op_latency", &hist);
    registry.set_gauge("bench.elapsed_secs", elapsed.as_secs_f64());
    audit.export_into(&mut registry, "audit");
    health.export_into(&mut registry, "health");
    let mut health_summary = health.summary();
    health_summary.violations = audit.violation_count();
    let series = health.series();

    // Stop the host meter before folding trace artifacts: attribution and
    // tail folds are post-run analysis, not simulation work, and must not be
    // charged to the measured arm's wall clock.
    let host = meter.finish(opts.ops, sim.now().since(SimTime::ZERO), sim.queue.stats());

    // Fold the tail profile and merge the series counter tracks into the
    // chrome export on traced arms; the timeline itself never changes.
    let (chrome_trace, tail) = match sampler {
        Some(s) => {
            let events = tracer.events();
            let tail = TailProfile::from_events(&events);
            let mut samples = s.samples().to_vec();
            samples.extend(series.counter_samples());
            (
                Some(chrome_trace_with_counters(&events, &samples)),
                Some(tail),
            )
        }
        None => (None, None),
    };

    MigrateResult {
        shards: n_shards,
        latency: hist.summary(),
        elapsed,
        ops: opts.ops,
        pause,
        replayed,
        copy_bytes,
        penned,
        dip: window_tput / steady_tput.max(1e-12),
        epoch,
        registry,
        health: health_summary,
        series,
        tail,
        audit_json: audit.to_json(),
        chrome_trace,
        host,
    }
}

/// Live-migration sweep: pause window and throughput dip vs shard count.
pub fn migrate(rep: &mut Report, quick: bool) {
    rep.banner("Live migration: pause window and throughput dip while shard 0 changes chains");
    let opts = MigrateOpts {
        ops: if quick { 1024 } else { 4096 },
        trace: rep.profile_enabled(),
        ..MigrateOpts::default()
    };
    rep.line(format!(
        "{:<8} {:>12} {:>10} {:>8} {:>10} {:>8} {:>10}",
        "shards", "Kops/s", "pause", "dip", "moved_MB", "replay", "p99"
    ));
    for n in SHARD_COUNTS {
        let r = run_migrate(n, opts);
        rep.line(format!(
            "{:<8} {:>12.1} {:>10} {:>7.0}% {:>10.1} {:>8} {:>10}",
            n,
            r.ops_per_sec() / 1e3,
            us(r.pause),
            r.dip * 100.0,
            r.copy_bytes as f64 / (1 << 20) as f64,
            r.replayed,
            us(r.latency.p99),
        ));
        if let Some(trace) = &r.chrome_trace {
            rep.write_trace(&format!("TRACE_migrate_{n}.json"), trace)
                .expect("trace sink writable");
            rep.write_trace(&format!("AUDIT_migrate_{n}.json"), &r.audit_json)
                .expect("trace sink writable");
        }
        let mut sc = Scenario::new(format!("migrate/{n}"))
            .system("HyperLoop")
            .seed(opts.seed)
            .config("shards", n)
            .config("replicas_per_shard", opts.replicas_per_shard)
            .config("window", opts.window)
            .config("ops", opts.ops)
            .config("payload_bytes", opts.payload)
            .config("penned", r.penned)
            .config("epoch_after", r.epoch)
            .latency(&r.latency)
            .gauge("ops_per_sec", r.ops_per_sec())
            .gauge("pause_us", r.pause.as_secs_f64() * 1e6)
            .gauge("window_tput_ratio", r.dip)
            .gauge("copy_bytes", r.copy_bytes as f64)
            .gauge("replayed_ranges", r.replayed as f64)
            // The exported migration.* counters, surfaced as
            // first-class scenario measurements so downstream tooling
            // does not have to dig through the registry snapshot.
            .gauge("migration.pause_ns", r.pause.as_nanos() as f64)
            .gauge("migration.copy_bytes", r.copy_bytes as f64)
            .gauge("migration.replayed", r.replayed as f64)
            .health(r.health.clone())
            .series(r.series.clone())
            .host(r.host.clone())
            .metrics(r.registry.clone());
        if let Some(tail) = &r.tail {
            rep.write_trace(
                &format!("TAIL_migrate_{n}.json"),
                &tail.to_artifact_json(&format!("migrate/{n}")),
            )
            .expect("trace sink writable");
            sc = sc.tail(tail.clone());
        }
        rep.scenario(sc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_arm_loses_nothing_and_records_stats() {
        let opts = MigrateOpts {
            ops: 512,
            ..MigrateOpts::default()
        };
        let r = run_migrate(4, opts);
        assert_eq!(r.ops, 512);
        assert_eq!(r.epoch, 1, "one cutover, one epoch bump");
        assert_eq!(
            r.health.violations, 0,
            "auditors flagged a clean migration:\n{}",
            r.audit_json
        );
        assert!(r.pause > SimDuration::ZERO, "pause window has length");
        assert!(r.penned > 0, "some ops rode out the window in the pen");
        assert!(r.copy_bytes >= 4 << 20, "the shard image moved");
        // The migration counters survived into the snapshot.
        assert_eq!(
            r.registry.counter("bench.shards.shard0.migration.epoch"),
            Some(1)
        );
        assert_eq!(
            r.registry.counter("bench.shards.shard0.migration.replayed"),
            Some(r.replayed)
        );
        assert!(
            r.registry
                .counter("bench.shards.shard0.migration.copy_bytes")
                .unwrap()
                >= 4 << 20
        );
        assert!(r.dip > 0.0, "the window still completed work");
    }

    #[test]
    fn same_seed_same_migration_timeline() {
        let opts = MigrateOpts {
            ops: 256,
            ..MigrateOpts::default()
        };
        let a = run_migrate(2, opts);
        let b = run_migrate(2, opts);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.pause, b.pause);
        assert_eq!(a.replayed, b.replayed);
        assert_eq!(a.copy_bytes, b.copy_bytes);
        assert_eq!(a.latency.p99, b.latency.p99);
        // Same seed → byte-identical audit, health, and series output.
        assert_eq!(a.audit_json, b.audit_json);
        assert_eq!(a.health, b.health);
        assert_eq!(a.health.to_json(), b.health.to_json());
        assert_eq!(a.series, b.series);
        assert_eq!(a.series.to_json(), b.series.to_json());
    }
}
