//! The sharded document front end: collections mapped onto replication
//! chains.
//!
//! MongoDB shards at collection granularity before it shards within one,
//! and this layer mirrors that: every *collection* (a `u64` namespace of
//! documents) lives wholly on one shard, chosen by a [`ShardRouter`] over
//! the collection id. A shard is a full [`ReplicatedDocStore`] — its own
//! chain, journal ring and lock table — so cross-collection transactions on
//! different shards run their lock/append/execute/unlock pipelines fully in
//! parallel, while writes within one collection keep the single-store
//! ordering guarantees.

use crate::store::{CompletedTx, DocError, ReplicatedDocStore};
use crate::Document;
use hyperloop::shard::{AckJoin, HashRouter, ShardId, ShardRouter};
use hyperloop::GroupTransport;
use rnicsim::NicCtx;
use std::collections::BTreeMap;
use std::fmt;

/// An in-flight multi-document update: a join over the per-shard
/// transactions of one [`ShardedDocStore::write_many`] batch. Feed it the
/// completions from [`ShardedDocStore::poll`]; it is done when every
/// document's pipeline has fully committed on its shard.
#[derive(Debug, Default)]
pub struct MultiUpdate {
    join: AckJoin,
    txs: Vec<(ShardId, u64)>,
}

impl MultiUpdate {
    /// Absorbs one polled completion; returns true if it belonged to this
    /// batch.
    pub fn absorb(&mut self, shard: ShardId, tx: &CompletedTx) -> bool {
        self.join.absorb_key(shard, tx.tx_seq)
    }

    /// True once every document in the batch has committed.
    pub fn is_done(&self) -> bool {
        self.join.is_done()
    }

    /// Documents still in their shard pipelines.
    pub fn pending(&self) -> usize {
        self.join.pending()
    }

    /// The `(shard, tx_seq)` pairs the batch submitted, in submission
    /// (shard) order.
    pub fn txs(&self) -> &[(ShardId, u64)] {
        &self.txs
    }
}

/// A sharded replicated document store (client/primary side).
pub struct ShardedDocStore<T> {
    shards: Vec<ReplicatedDocStore<T>>,
    router: Box<dyn ShardRouter + Send>,
}

impl<T: fmt::Debug> fmt::Debug for ShardedDocStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedDocStore")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<T: GroupTransport> ShardedDocStore<T> {
    /// Builds the sharded store over already-wired per-shard stores (shard
    /// id = position) and a collection router.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<ReplicatedDocStore<T>>, router: Box<dyn ShardRouter + Send>) -> Self {
        assert!(!shards.is_empty(), "sharded store needs at least one shard");
        ShardedDocStore { shards, router }
    }

    /// Builds the sharded store with the default [`HashRouter`].
    pub fn with_hash_router(shards: Vec<ReplicatedDocStore<T>>) -> Self {
        ShardedDocStore::new(shards, Box::new(HashRouter))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard that hosts `collection`.
    pub fn shard_of(&self, collection: u64) -> ShardId {
        self.router.route(collection, self.shard_count())
    }

    /// One shard's store.
    pub fn shard(&self, id: ShardId) -> &ReplicatedDocStore<T> {
        &self.shards[id.0 as usize]
    }

    /// One shard's store, mutably (mode selection, maintenance, transport).
    pub fn shard_mut(&mut self, id: ShardId) -> &mut ReplicatedDocStore<T> {
        &mut self.shards[id.0 as usize]
    }

    /// Iterates `(id, store)` over all shards.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &ReplicatedDocStore<T>)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| (ShardId(i as u32), s))
    }

    /// Total documents present across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no shard holds any document.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Transactions still in any shard's pipeline.
    pub fn active_txs(&self) -> usize {
        self.shards.iter().map(|s| s.active_txs()).sum()
    }

    /// Primary-side read of `doc_id` within `collection`.
    pub fn read(&self, collection: u64, doc_id: u64) -> Option<&Document> {
        self.shards[self.shard_of(collection).0 as usize].read(doc_id)
    }

    /// Submits a durable replicated write of `doc` into `collection`,
    /// running the full transactional pipeline on the collection's shard.
    /// Returns the shard and the shard-local transaction sequence number.
    ///
    /// # Errors
    ///
    /// [`DocError`] on geometry violations or a full pipeline on the
    /// owning shard (other shards may still have room).
    pub fn write(
        &mut self,
        ctx: &mut NicCtx<'_>,
        collection: u64,
        doc: Document,
    ) -> Result<(ShardId, u64), DocError> {
        let shard = self.shard_of(collection);
        let tx = self.shards[shard.0 as usize].write(ctx, doc)?;
        Ok((shard, tx))
    }

    /// Submits one multi-document update: every `(collection, document)`
    /// pair starts its transactional pipeline on its owning shard, and the
    /// returned [`MultiUpdate`] joins their completions. Validation is
    /// all-then-submit: *every* document is checked against its shard's
    /// geometry and queue room before *any* is submitted, so a rejected
    /// batch leaves no partial work in any pipeline. Submission walks the
    /// batch in shard order (the same total order the transaction layer
    /// acquires locks in), keeping cross-batch shard touch order
    /// deterministic.
    ///
    /// # Errors
    ///
    /// [`DocError`] if any document fails validation or any owning shard
    /// lacks room for its share of the batch — in which case nothing was
    /// submitted anywhere.
    pub fn write_many(
        &mut self,
        ctx: &mut NicCtx<'_>,
        updates: Vec<(u64, Document)>,
    ) -> Result<MultiUpdate, DocError> {
        // Validate all...
        let mut demand: BTreeMap<ShardId, usize> = BTreeMap::new();
        let mut routed: Vec<(ShardId, Document)> = Vec::with_capacity(updates.len());
        for (collection, doc) in updates {
            let shard = self.shard_of(collection);
            let store = &self.shards[shard.0 as usize];
            if doc.id >= store.config().capacity {
                return Err(DocError::IdOutOfRange);
            }
            if doc.encoded_len() as u64 > store.config().max_doc {
                return Err(DocError::DocTooLarge);
            }
            *demand.entry(shard).or_insert(0) += 1;
            routed.push((shard, doc));
        }
        for (&shard, &n) in &demand {
            if !self.shards[shard.0 as usize].can_accept(n) {
                return Err(DocError::Busy);
            }
        }
        // ...then submit, in shard order (stable: within a shard, batch
        // order is preserved).
        routed.sort_by_key(|(shard, _)| *shard);
        let mut batch = MultiUpdate::default();
        for (shard, doc) in routed {
            let tx = self.shards[shard.0 as usize]
                .write(ctx, doc)
                .expect("validated above");
            batch.join.track(shard, tx);
            batch.txs.push((shard, tx));
        }
        Ok(batch)
    }

    /// Processes acks on every shard; returns committed transactions
    /// tagged with their shard.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<(ShardId, CompletedTx)> {
        let mut done = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            done.extend(
                shard
                    .poll(ctx)
                    .into_iter()
                    .map(|tx| (ShardId(i as u32), tx)),
            );
        }
        done
    }

    /// Background journal application on every shard (`AppendOnly` mode):
    /// up to `max_records_per_shard` each. Returns the total applied.
    pub fn apply_backlog(&mut self, ctx: &mut NicCtx<'_>, max_records_per_shard: usize) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.apply_backlog(ctx, max_records_per_shard))
            .sum()
    }
}

impl ShardedDocStore<hyperloop::GroupClient> {
    /// Moves `shard`'s replication chain to `new_chain`, keeping the
    /// store's logical state (documents, WAL cursors, active
    /// transactions): aligns the new chain's allocators, wires a fresh
    /// group, seeds every new member with the shard's WAL-sized region
    /// image read from `source` (a live member of the old chain), and
    /// swaps the transport. Returns the retired client and the new chain's
    /// replica handles.
    ///
    /// The quiesced app-level move, mirroring `ShardedKv::rebalance` in
    /// the kvstore case study: the migrating shard must
    /// have no active transactions; other shards are untouched. For the
    /// live pause/copy/replay state machine see
    /// `hyperloop::migrate::migrate_shard`. Run the simulation to
    /// quiescence after this call before writing on the new chain.
    ///
    /// # Panics
    ///
    /// Panics if the shard still has transactions in the pipeline, or on
    /// the same layout violations as `HyperLoopGroup::setup`.
    pub fn rebalance(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        source: netsim::NodeId,
        new_chain: &[netsim::NodeId],
    ) -> (hyperloop::GroupClient, Vec<hyperloop::ReplicaHandle>) {
        let store = &mut self.shards[shard.0 as usize];
        assert_eq!(
            store.active_txs(),
            0,
            "rebalance of {shard} with transactions active"
        );
        assert_eq!(
            store.transport.in_flight(),
            0,
            "rebalance of {shard} with ops in flight"
        );
        let cfg = store.transport.config();
        let old_base = store.transport.layout().shared_base;
        let client_node = store.transport.node();
        let span = store.wal().copy_span();

        let cursor = new_chain
            .iter()
            .map(|&n| ctx.fab.alloc_cursor(n))
            .max()
            .expect("non-empty chain");
        for &n in new_chain {
            ctx.fab.align_allocator(n, cursor);
        }
        let mut group = hyperloop::HyperLoopGroup::setup(ctx, client_node, new_chain, cfg);
        group.client.set_tracer(store.transport.tracer());
        let new_base = group.client.layout().shared_base;

        let image = ctx
            .fab
            .mem(source)
            .read_vec(old_base, span)
            .expect("source region in bounds");
        for &n in new_chain {
            ctx.fab
                .mem(n)
                .write_durable(new_base, &image)
                .expect("seed copy in bounds");
        }
        let old = std::mem::replace(&mut store.transport, group.client);
        (old, group.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DocConfig;
    use hyperloop::harness::{drive, fabric_sim, FabricSim};
    use hyperloop::{GroupConfig, HyperLoopGroup};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    const CLIENT: NodeId = NodeId(0);

    fn setup(
        n_shards: u32,
    ) -> (
        Simulation<FabricSim>,
        ShardedDocStore<hyperloop::GroupClient>,
    ) {
        let mut sim = fabric_sim(
            1 + 2 * n_shards,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            31,
        );
        let mut stores = Vec::new();
        for s in 0..n_shards {
            let nodes = [NodeId(1 + 2 * s), NodeId(2 + 2 * s)];
            let group = drive(&mut sim, |ctx| {
                HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
            });
            sim.run();
            stores.push(ReplicatedDocStore::new(
                group.client,
                DocConfig::default(),
                1 + s as u64,
            ));
        }
        (sim, ShardedDocStore::with_hash_router(stores))
    }

    fn settle(
        sim: &mut Simulation<FabricSim>,
        store: &mut ShardedDocStore<hyperloop::GroupClient>,
    ) -> Vec<(ShardId, CompletedTx)> {
        let mut done = Vec::new();
        for _ in 0..64 {
            sim.run();
            done.extend(drive(sim, |ctx| store.poll(ctx)));
            if sim.queue.is_empty() && store.active_txs() == 0 {
                break;
            }
        }
        assert_eq!(sim.model.fab.stats().errors, 0);
        done
    }

    #[test]
    fn collections_stick_to_their_shard() {
        let (mut sim, mut store) = setup(4);
        let collections = [0u64, 1, 2, 3, 4, 5, 6, 7];
        let mut wrote_to = Vec::new();
        for &c in &collections {
            let (shard, _) = drive(&mut sim, |ctx| {
                store
                    .write(ctx, c, Document::with_field(c, "f", vec![c as u8; 64]))
                    .unwrap()
            });
            assert_eq!(shard, store.shard_of(c), "router and write disagree");
            wrote_to.push(shard);
        }
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), collections.len());
        for (i, &c) in collections.iter().enumerate() {
            // Same collection always resolves to the same shard, and the
            // document is readable through the collection route.
            assert_eq!(store.shard_of(c), wrote_to[i]);
            assert_eq!(
                store.read(c, c).map(|d| d.id),
                Some(c),
                "collection {c} lost its document"
            );
        }
        assert_eq!(store.len(), collections.len());
    }

    #[test]
    fn cross_shard_transactions_overlap() {
        let (mut sim, mut store) = setup(2);
        // Two collections on different shards: both pipelines commit.
        let mut c0 = 0u64;
        let mut c1 = 1u64;
        while store.shard_of(c0) == store.shard_of(c1) {
            c1 += 1;
        }
        if store.shard_of(c0).0 > store.shard_of(c1).0 {
            std::mem::swap(&mut c0, &mut c1);
        }
        drive(&mut sim, |ctx| {
            store
                .write(ctx, c0, Document::with_field(1, "f", vec![1; 64]))
                .unwrap();
            store
                .write(ctx, c1, Document::with_field(1, "f", vec![2; 64]))
                .unwrap();
        });
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 2);
        let shards: std::collections::HashSet<u32> = done.iter().map(|(s, _)| s.0).collect();
        assert_eq!(shards.len(), 2, "commits came from both shards");
    }

    #[test]
    fn write_many_commits_on_every_shard_and_joins() {
        let (mut sim, mut store) = setup(2);
        // Four documents across collections guaranteed to span both shards.
        let c0 = 0u64;
        let mut c1 = 1u64;
        while store.shard_of(c0) == store.shard_of(c1) {
            c1 += 1;
        }
        let batch = vec![
            (c0, Document::with_field(1, "f", vec![1; 32])),
            (c1, Document::with_field(2, "f", vec![2; 32])),
            (c0, Document::with_field(3, "f", vec![3; 32])),
            (c1, Document::with_field(4, "f", vec![4; 32])),
        ];
        let mut mu = drive(&mut sim, |ctx| store.write_many(ctx, batch).unwrap());
        assert_eq!(mu.pending(), 4);
        assert_eq!(mu.txs().len(), 4);
        // Submission order is shard order.
        let shard_seq: Vec<u32> = mu.txs().iter().map(|(s, _)| s.0).collect();
        let mut sorted = shard_seq.clone();
        sorted.sort();
        assert_eq!(shard_seq, sorted, "write_many must submit in shard order");

        for _ in 0..64 {
            sim.run();
            for (shard, tx) in drive(&mut sim, |ctx| store.poll(ctx)) {
                assert!(mu.absorb(shard, &tx), "unexpected completion");
            }
            if mu.is_done() {
                break;
            }
        }
        assert!(mu.is_done(), "multi-doc update never joined");
        for (c, id) in [(c0, 1u64), (c1, 2), (c0, 3), (c1, 4)] {
            assert!(store.read(c, id).is_some(), "doc {id} missing");
        }
    }

    #[test]
    fn write_many_validates_all_before_submitting_any() {
        let (mut sim, mut store) = setup(2);
        // A batch with one invalid document submits nothing anywhere.
        let batch = vec![
            (0u64, Document::with_field(1, "f", vec![1; 32])),
            (1u64, Document::with_field(2, "f", vec![9; 4096])), // too large
        ];
        let err = drive(&mut sim, |ctx| store.write_many(ctx, batch).unwrap_err());
        assert_eq!(err, DocError::DocTooLarge);
        assert_eq!(store.active_txs(), 0, "rejected batch left partial work");

        // A batch overflowing one shard's pipeline is rejected whole.
        let big: Vec<(u64, Document)> = (0..33)
            .map(|i| (0u64, Document::with_field(i, "f", vec![1; 16])))
            .collect();
        let err = drive(&mut sim, |ctx| store.write_many(ctx, big).unwrap_err());
        assert_eq!(err, DocError::Busy);
        assert_eq!(store.active_txs(), 0, "rejected batch left partial work");
        assert!(store.is_empty());
    }

    #[test]
    fn single_shard_hosts_every_collection() {
        let (mut sim, mut store) = setup(1);
        for c in 0..5u64 {
            assert_eq!(store.shard_of(c), ShardId(0));
            drive(&mut sim, |ctx| {
                store
                    .write(ctx, c, Document::with_field(c, "f", vec![9]))
                    .unwrap()
            });
        }
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 5);
    }
}
