//! The replicated document store and its transactional write pipeline.
//!
//! Each write transaction runs the paper's §5.2 sequence as an ack-driven
//! state machine:
//!
//! 1. `wrLock` — group gCAS on the document's lock word;
//! 2. `Append` — the journal record replicates (gWRITE + gFLUSH);
//! 3. `ExecuteAndAdvance` — every replica's NIC applies it (gMEMCPY +
//!    gFLUSH, then the head gWRITE + gFLUSH);
//! 4. `wrUnlock` — group gCAS release.
//!
//! Over the Naïve transport the identical sequence runs with replica CPUs
//! doing the work — the comparison of Figure 12.

use crate::doc::Document;
use hyperloop::lock::{LockTable, WrLockOutcome};
use hyperloop::wal::{recover_unapplied, ReplicatedWal, WalLayout};
use hyperloop::GroupTransport;
use rnicsim::{NicCtx, RdmaFabric};
use simcore::SimTime;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use walog::LogEntry;

/// Store geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocConfig {
    /// Maximum number of documents (dense ids `0..capacity`).
    pub capacity: u64,
    /// Maximum encoded document size.
    pub max_doc: u64,
    /// Bytes reserved for the journal ring.
    pub log_size: u64,
    /// Number of lock words (documents hash onto them).
    pub n_locks: u32,
}

impl Default for DocConfig {
    fn default() -> Self {
        DocConfig {
            capacity: 1024,
            max_doc: 1536,
            log_size: 1 << 20,
            n_locks: 64,
        }
    }
}

impl DocConfig {
    /// Bytes of one document slot.
    pub fn slot_size(&self) -> u64 {
        4 + self.max_doc
    }

    /// Control-area bytes: 16-byte head pointer + lock table.
    pub fn control_size(&self) -> u64 {
        (16 + self.n_locks as u64 * 8 + 63) & !63
    }
}

/// How a write commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// The paper's HyperLoop-MongoDB: lock, append, execute on every
    /// replica, unlock — strong consistency, all on the (offloaded) data
    /// path.
    #[default]
    FullPipeline,
    /// Native-MongoDB shape: the journal append is the critical path; log
    /// application happens asynchronously (`apply_backlog`).
    AppendOnly,
}

/// Store errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocError {
    /// Document id beyond capacity.
    IdOutOfRange,
    /// Encoded document exceeds the slot.
    DocTooLarge,
    /// Too many transactions queued; poll first.
    Busy,
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::IdOutOfRange => f.write_str("document id out of range"),
            DocError::DocTooLarge => f.write_str("document too large"),
            DocError::Busy => f.write_str("store busy"),
        }
    }
}

impl std::error::Error for DocError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NeedLock,
    Locking,
    NeedAppend,
    Appending,
    NeedExecute,
    Executing,
    NeedUnlock,
    Unlocking,
}

#[derive(Debug)]
struct Tx {
    tx_seq: u64,
    doc: Document,
    lock_id: u32,
    phase: Phase,
    started: SimTime,
    /// Generations outstanding for the current phase.
    waiting: Vec<u64>,
}

/// A completed write transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTx {
    /// The store-level transaction sequence number.
    pub tx_seq: u64,
    /// The document written.
    pub doc_id: u64,
    /// When the transaction was submitted.
    pub started: SimTime,
    /// When the unlock ack arrived (fully committed, group-wide).
    pub finished: SimTime,
}

/// The replicated document store (client/primary side).
pub struct ReplicatedDocStore<T> {
    /// The replication transport.
    pub transport: T,
    config: DocConfig,
    wal: ReplicatedWal,
    locks: LockTable,
    owner: u64,
    docs: BTreeMap<u64, Document>,
    active: VecDeque<Tx>,
    /// gen → index key into the active queue by tx_seq.
    gen_to_tx: HashMap<u64, u64>,
    next_tx_seq: u64,
    max_queued: usize,
    completed: Vec<CompletedTx>,
    mode: WriteMode,
    /// Diagnostic: write-lock acquisitions that had to retry.
    pub lock_retries: u64,
}

impl<T: fmt::Debug> fmt::Debug for ReplicatedDocStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedDocStore")
            .field("docs", &self.docs.len())
            .field("active_txs", &self.active.len())
            .finish()
    }
}

impl<T: GroupTransport> ReplicatedDocStore<T> {
    /// Builds the store over an already-wired transport. `owner` identifies
    /// this front end in lock words.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not fit the transport's shared region.
    pub fn new(transport: T, config: DocConfig, owner: u64) -> Self {
        let shared = transport.shared_size();
        let layout = WalLayout::standard(shared, config.log_size, config.control_size());
        assert!(
            config.capacity * config.slot_size() <= layout.db_size,
            "document area exceeds the shared region"
        );
        ReplicatedDocStore {
            transport,
            config,
            wal: ReplicatedWal::new(layout),
            locks: LockTable::new(16, config.n_locks),
            owner,
            docs: BTreeMap::new(),
            active: VecDeque::new(),
            gen_to_tx: HashMap::new(),
            next_tx_seq: 0,
            max_queued: 32,
            completed: Vec::new(),
            mode: WriteMode::FullPipeline,
            lock_retries: 0,
        }
    }

    /// Selects the write commitment mode (see [`WriteMode`]).
    pub fn set_mode(&mut self, mode: WriteMode) {
        self.mode = mode;
    }

    /// Asynchronously applies up to `max_records` backlogged journal
    /// records on every replica (the native mode's background apply).
    pub fn apply_backlog(&mut self, ctx: &mut NicCtx<'_>, max_records: usize) -> usize {
        let mut applied = 0;
        while applied < max_records {
            match self.wal.execute_and_advance(&mut self.transport, ctx) {
                Ok(Some(_)) => applied += 1,
                Ok(None) | Err(_) => break,
            }
        }
        applied
    }

    /// Store geometry.
    pub fn config(&self) -> &DocConfig {
        &self.config
    }

    /// Primary-side read.
    pub fn read(&self, id: u64) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Range scan over present documents.
    pub fn scan(&self, start: u64, len: u64) -> Vec<&Document> {
        self.docs
            .range(start..)
            .take(len as usize)
            .map(|(_, d)| d)
            .collect()
    }

    /// Number of documents present.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if no documents are present.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Transactions still in the pipeline.
    pub fn active_txs(&self) -> usize {
        self.active.len()
    }

    /// True if the pipeline has room for `n` more transactions (a
    /// `write` of each would not return [`DocError::Busy`]).
    pub fn can_accept(&self, n: usize) -> bool {
        self.active.len() + n <= self.max_queued
    }

    /// The store's WAL driver (read-only: layout, ring cursors, copy
    /// sizing for migration).
    pub fn wal(&self) -> &ReplicatedWal {
        &self.wal
    }

    fn lock_of(&self, id: u64) -> u32 {
        (id % self.config.n_locks as u64) as u32
    }

    /// Submits a durable replicated write (insert or update). The primary
    /// view updates immediately; group-wide commitment is reported through
    /// [`ReplicatedDocStore::poll`].
    ///
    /// # Errors
    ///
    /// [`DocError`] on geometry violations or a full pipeline.
    pub fn write(&mut self, ctx: &mut NicCtx<'_>, doc: Document) -> Result<u64, DocError> {
        if doc.id >= self.config.capacity {
            return Err(DocError::IdOutOfRange);
        }
        if doc.encoded_len() as u64 > self.config.max_doc {
            return Err(DocError::DocTooLarge);
        }
        if self.active.len() >= self.max_queued {
            return Err(DocError::Busy);
        }
        let tx_seq = self.next_tx_seq;
        self.next_tx_seq += 1;
        self.docs.insert(doc.id, doc.clone());
        let lock_id = self.lock_of(doc.id);
        self.active.push_back(Tx {
            tx_seq,
            doc,
            lock_id,
            phase: match self.mode {
                WriteMode::FullPipeline => Phase::NeedLock,
                WriteMode::AppendOnly => Phase::NeedAppend,
            },
            started: ctx.now,
            waiting: Vec::new(),
        });
        self.pump(ctx);
        Ok(tx_seq)
    }

    /// Drives transaction phases as far as the window allows. Called
    /// internally by `write` and `poll`; harmless to call extra times.
    pub fn pump(&mut self, ctx: &mut NicCtx<'_>) {
        // Only the *head* transaction issues journal work (appends must hit
        // the ring in tx order); lock phases of later txs may overlap.
        for i in 0..self.active.len() {
            let phase = self.active[i].phase;
            match phase {
                Phase::NeedLock => {
                    if !self.transport.can_issue() {
                        return;
                    }
                    // A lock conflict with an earlier active tx on the same
                    // word must wait (single-writer semantics).
                    let lock_id = self.active[i].lock_id;
                    let conflict = self.active.iter().take(i).any(|t| t.lock_id == lock_id);
                    if conflict {
                        continue;
                    }
                    let gen =
                        match self
                            .locks
                            .wr_lock(&mut self.transport, ctx, lock_id, self.owner)
                        {
                            Ok(g) => g,
                            Err(_) => return,
                        };
                    let tx = &mut self.active[i];
                    tx.phase = Phase::Locking;
                    tx.waiting = vec![gen];
                    self.gen_to_tx.insert(gen, tx.tx_seq);
                }
                Phase::NeedAppend => {
                    // Journal order: appends must issue in tx order. The
                    // full pipeline serializes on the head; append-only mode
                    // lets a tx append once every earlier tx has issued its.
                    let order_ok = match self.mode {
                        WriteMode::FullPipeline => i == 0,
                        WriteMode::AppendOnly => self
                            .active
                            .iter()
                            .take(i)
                            .all(|t| matches!(t.phase, Phase::Appending)),
                    };
                    if !order_ok {
                        continue;
                    }
                    if !self.transport.can_issue() {
                        return;
                    }
                    let doc = self.active[i].doc.clone();
                    let mut slot_bytes = (doc.encoded_len() as u32).to_le_bytes().to_vec();
                    slot_bytes.extend_from_slice(&doc.encode());
                    let entries = vec![LogEntry {
                        offset: doc.id * self.config.slot_size(),
                        data: slot_bytes,
                    }];
                    let receipt = match self.wal.append(&mut self.transport, ctx, entries) {
                        Ok(r) => r,
                        Err(_) => return, // ring or window full: retry later
                    };
                    let tx = &mut self.active[i];
                    tx.phase = Phase::Appending;
                    tx.waiting = receipt.gens.clone();
                    for g in receipt.gens {
                        self.gen_to_tx.insert(g, tx.tx_seq);
                    }
                }
                Phase::NeedExecute => {
                    if i != 0 {
                        continue;
                    }
                    let receipt = match self.wal.execute_and_advance(&mut self.transport, ctx) {
                        Ok(Some(r)) => r,
                        Ok(None) => return,
                        Err(_) => return,
                    };
                    let tx = &mut self.active[i];
                    tx.phase = Phase::Executing;
                    tx.waiting = receipt.gens.clone();
                    for g in receipt.gens {
                        self.gen_to_tx.insert(g, tx.tx_seq);
                    }
                }
                Phase::NeedUnlock => {
                    if !self.transport.can_issue() {
                        return;
                    }
                    let lock_id = self.active[i].lock_id;
                    let gen =
                        match self
                            .locks
                            .wr_unlock(&mut self.transport, ctx, lock_id, self.owner)
                        {
                            Ok(g) => g,
                            Err(_) => return,
                        };
                    let tx = &mut self.active[i];
                    tx.phase = Phase::Unlocking;
                    tx.waiting = vec![gen];
                    self.gen_to_tx.insert(gen, tx.tx_seq);
                }
                _ => {}
            }
        }
    }

    /// Processes transport acks, advances transactions, and returns the
    /// ones that fully committed.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<CompletedTx> {
        let acks = self.transport.poll(ctx);
        for ack in acks {
            let Some(tx_seq) = self.gen_to_tx.remove(&ack.gen) else {
                continue;
            };
            let Some(pos) = self.active.iter().position(|t| t.tx_seq == tx_seq) else {
                continue;
            };
            let tx = &mut self.active[pos];
            tx.waiting.retain(|&g| g != ack.gen);
            #[cfg(feature = "phase-trace")]
            eprintln!(
                "t={:?} tx{} ack gen={} phase={:?} waiting={}",
                now,
                tx.tx_seq,
                ack.gen,
                tx.phase,
                tx.waiting.len()
            );
            if !tx.waiting.is_empty() {
                continue;
            }
            tx.phase = match tx.phase {
                Phase::Locking => {
                    match self.locks.interpret_wr_lock(&ack, tx.lock_id, self.owner) {
                        WrLockOutcome::Acquired => Phase::NeedAppend,
                        // Single front end: contention means an earlier tx
                        // still holds the word; retry.
                        _ => {
                            self.lock_retries += 1;
                            Phase::NeedLock
                        }
                    }
                }
                Phase::Appending => match self.mode {
                    WriteMode::FullPipeline => Phase::NeedExecute,
                    WriteMode::AppendOnly => {
                        let done = CompletedTx {
                            tx_seq: tx.tx_seq,
                            doc_id: tx.doc.id,
                            started: tx.started,
                            finished: ctx.now,
                        };
                        self.completed.push(done);
                        self.active.remove(pos);
                        continue;
                    }
                },
                Phase::Executing => Phase::NeedUnlock,
                Phase::Unlocking => {
                    let done = CompletedTx {
                        tx_seq: tx.tx_seq,
                        doc_id: tx.doc.id,
                        started: tx.started,
                        finished: ctx.now,
                    };
                    self.completed.push(done);
                    self.active.remove(pos);
                    continue;
                }
                p => p,
            };
        }
        self.pump(ctx);
        std::mem::take(&mut self.completed)
    }

    /// Reads one document from a replica's durable database region (what a
    /// consistent replica read returns after commitment).
    pub fn replica_read(
        &self,
        fab: &mut RdmaFabric,
        replica_node: netsim::NodeId,
        shared_base: u64,
        id: u64,
    ) -> Option<Document> {
        let slot = self.wal.layout().db_offset + id * self.config.slot_size();
        let raw = fab
            .mem(replica_node)
            .read_vec(shared_base + slot, self.config.slot_size())
            .ok()?;
        let len = u32::from_le_bytes(raw[..4].try_into().ok()?) as usize;
        if len == 0 || len > self.config.max_doc as usize {
            return None;
        }
        Document::decode(&raw[4..4 + len])
    }

    /// Crash recovery from one replica's durable bytes: database region plus
    /// journal replay (flush-the-log-and-rejoin, paper §5.2).
    pub fn recover_state(
        &self,
        fab: &mut RdmaFabric,
        replica_node: netsim::NodeId,
        shared_base: u64,
    ) -> BTreeMap<u64, Document> {
        let layout = *self.wal.layout();
        let slot_size = self.config.slot_size();
        let db = fab
            .mem(replica_node)
            .read_durable_vec(
                shared_base + layout.db_offset,
                self.config.capacity * slot_size,
            )
            .expect("db region in bounds");
        let mut state = BTreeMap::new();
        for id in 0..self.config.capacity {
            let base = (id * slot_size) as usize;
            let len = u32::from_le_bytes(db[base..base + 4].try_into().expect("4 bytes")) as usize;
            if len > 0 && len <= self.config.max_doc as usize {
                if let Some(d) = Document::decode(&db[base + 4..base + 4 + len]) {
                    state.insert(id, d);
                }
            }
        }
        let head_raw = fab
            .mem(replica_node)
            .read_durable_vec(shared_base + layout.head_ptr_offset, 16)
            .expect("head ptr in bounds");
        let log = fab
            .mem(replica_node)
            .read_durable_vec(shared_base + layout.log_offset, layout.log_size)
            .expect("log region in bounds");
        for rec in recover_unapplied(&head_raw, &log) {
            for e in rec.entries {
                let id = e.offset / slot_size;
                let len = u32::from_le_bytes(e.data[..4].try_into().expect("4 bytes")) as usize;
                if len > 0 && len + 4 <= e.data.len() {
                    if let Some(d) = Document::decode(&e.data[4..4 + len]) {
                        state.insert(id, d);
                    }
                }
            }
        }
        state
    }
}
