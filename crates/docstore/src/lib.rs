//! # docstore — a MongoDB-style replicated document store
//!
//! The paper's second case study (§5.2): a document server split into a
//! client-integrated front end and NVM-backed replicas. Writes replicate a
//! journal record (`Append`), have every replica apply it (remote log
//! processing, `ExecuteAndAdvance`), and are bracketed by group write locks
//! — all expressed as group operations, so the identical store runs on the
//! HyperLoop data path (replica CPUs idle) or the Naïve-RDMA baseline
//! (replica CPUs on every hop). This is the system measured in Figures 2
//! and 12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doc;
pub mod sharded;
pub mod store;

pub use doc::Document;
pub use sharded::ShardedDocStore;
pub use store::{CompletedTx, DocConfig, DocError, ReplicatedDocStore, WriteMode};

#[cfg(test)]
mod tests {
    use super::*;
    use hyperloop::harness::{drive, fabric_sim, FabricSim};
    use hyperloop::{GroupConfig, HyperLoopGroup};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::{SimDuration, Simulation};

    const CLIENT: NodeId = NodeId(0);

    type Store = ReplicatedDocStore<hyperloop::GroupClient>;

    fn setup() -> (
        Simulation<FabricSim>,
        Store,
        u64,
        Vec<hyperloop::ReplicaHandle>,
    ) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            17,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
        });
        sim.run();
        let base = group.client.layout().shared_base;
        let store = ReplicatedDocStore::new(group.client, DocConfig::default(), 1);
        (sim, store, base, group.replicas)
    }

    fn settle(sim: &mut Simulation<FabricSim>, store: &mut Store) -> Vec<CompletedTx> {
        let mut done = Vec::new();
        // Transactions are multi-phase: keep running until quiescent.
        for _ in 0..32 {
            sim.run();
            let batch = drive(sim, |ctx| store.poll(ctx));
            done.extend(batch);
            if sim.queue.is_empty() && store.transport.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(sim.model.fab.stats().errors, 0);
        done
    }

    #[test]
    fn write_commits_through_all_phases() {
        let (mut sim, mut store, base, _) = setup();
        let doc = Document::with_field(5, "field0", vec![7; 256]);
        drive(&mut sim, |ctx| store.write(ctx, doc.clone()).unwrap());
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].doc_id, 5);
        assert!(done[0].finished > done[0].started);
        assert_eq!(store.read(5), Some(&doc));
        assert_eq!(store.active_txs(), 0);

        // Every replica's database region now holds the document, durably
        // (executed + flushed), and the lock is free again.
        for n in 1..=3u32 {
            let got = drive(&mut sim, |ctx| {
                store.replica_read(ctx.fab, NodeId(n), base, 5)
            });
            assert_eq!(got.as_ref(), Some(&doc), "replica {n}");
        }
    }

    #[test]
    fn lock_word_cycles_zero_locked_zero() {
        let (mut sim, mut store, base, _) = setup();
        // After commit, the lock word must be back to zero on all replicas.
        drive(&mut sim, |ctx| {
            store
                .write(ctx, Document::with_field(1, "f", vec![1]))
                .unwrap()
        });
        settle(&mut sim, &mut store);
        for n in 1..=3u32 {
            let lock_area = sim
                .model
                .fab
                .mem(NodeId(n))
                .read_vec(base + 16, 8 * 64)
                .unwrap();
            assert!(lock_area.iter().all(|&b| b == 0), "lock leaked on {n}");
        }
    }

    #[test]
    fn pipelined_writes_to_different_docs() {
        let (mut sim, mut store, _, _) = setup();
        drive(&mut sim, |ctx| {
            for id in 0..8u64 {
                store
                    .write(ctx, Document::with_field(id, "f", vec![id as u8; 64]))
                    .unwrap();
            }
        });
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 8);
        for id in 0..8u64 {
            assert!(store.read(id).is_some());
        }
    }

    #[test]
    fn same_doc_writes_serialize_via_the_lock() {
        let (mut sim, mut store, _, _) = setup();
        drive(&mut sim, |ctx| {
            for v in 0..4u8 {
                store
                    .write(ctx, Document::with_field(9, "f", vec![v; 32]))
                    .unwrap();
            }
        });
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 4);
        // Commit order respects submission order.
        let seqs: Vec<u64> = done.iter().map(|t| t.tx_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(store.read(9).unwrap().fields["f"], vec![3; 32]);
    }

    #[test]
    fn recovery_matches_primary_view() {
        let (mut sim, mut store, base, mut replicas) = setup();
        for round in 0..30u64 {
            drive(&mut sim, |ctx| {
                store
                    .write(
                        ctx,
                        Document::with_field(round % 10, "f", vec![round as u8; 128]),
                    )
                    .unwrap()
            });
            settle(&mut sim, &mut store);
            let completed = store.transport.completed();
            drive(&mut sim, |ctx| {
                for r in replicas.iter_mut() {
                    let target = completed + 128;
                    if target > r.preposted() {
                        r.replenish(ctx, (target - r.preposted()) as u32);
                    }
                }
            });
        }
        sim.model.fab.mem(NodeId(2)).power_failure();
        let state = drive(&mut sim, |ctx| {
            store.recover_state(ctx.fab, NodeId(2), base)
        });
        assert_eq!(state.len(), 10);
        for (id, doc) in state {
            assert_eq!(store.read(id), Some(&doc), "doc {id} diverged");
        }
    }

    #[test]
    fn scan_over_documents() {
        let (mut sim, mut store, _, _) = setup();
        drive(&mut sim, |ctx| {
            for id in [2u64, 4, 6, 8] {
                store
                    .write(ctx, Document::with_field(id, "f", vec![1]))
                    .unwrap();
            }
        });
        settle(&mut sim, &mut store);
        let hits = store.scan(3, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 4);
        assert_eq!(hits[1].id, 6);
    }

    #[test]
    fn append_only_mode_commits_on_journal_replication() {
        let (mut sim, mut store, base, _) = setup();
        store.set_mode(WriteMode::AppendOnly);
        let doc = Document::with_field(7, "f", vec![3; 128]);
        drive(&mut sim, |ctx| store.write(ctx, doc.clone()).unwrap());
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 1, "append-only commit");
        // Committed but not yet applied: the replica DB region is empty...
        let before = drive(&mut sim, |ctx| {
            store.replica_read(ctx.fab, NodeId(1), base, 7)
        });
        assert_eq!(before, None, "apply must be asynchronous");
        // ...until the background apply runs.
        drive(&mut sim, |ctx| {
            assert_eq!(store.apply_backlog(ctx, 8), 1);
        });
        settle(&mut sim, &mut store);
        let after = drive(&mut sim, |ctx| {
            store.replica_read(ctx.fab, NodeId(1), base, 7)
        });
        assert_eq!(after, Some(doc));
    }

    #[test]
    fn append_only_pipelines_multiple_writes() {
        let (mut sim, mut store, _, _) = setup();
        store.set_mode(WriteMode::AppendOnly);
        drive(&mut sim, |ctx| {
            for id in 0..10u64 {
                store
                    .write(ctx, Document::with_field(id, "f", vec![id as u8; 64]))
                    .unwrap();
            }
        });
        let done = settle(&mut sim, &mut store);
        assert_eq!(done.len(), 10);
        // Journal order: commit order equals submission order.
        let seqs: Vec<u64> = done.iter().map(|t| t.tx_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn geometry_violations_rejected() {
        let (mut sim, mut store, _, _) = setup();
        let cap = store.config().capacity;
        let err = drive(&mut sim, |ctx| {
            store
                .write(ctx, Document::with_field(cap, "f", vec![1]))
                .unwrap_err()
        });
        assert_eq!(err, DocError::IdOutOfRange);
        let err = drive(&mut sim, |ctx| {
            store
                .write(ctx, Document::with_field(0, "f", vec![0; 4096]))
                .unwrap_err()
        });
        assert_eq!(err, DocError::DocTooLarge);
    }

    #[test]
    fn write_latency_is_a_handful_of_chain_trips() {
        let (mut sim, mut store, _, _) = setup();
        // Warm-up.
        drive(&mut sim, |ctx| {
            store
                .write(ctx, Document::with_field(0, "f", vec![0; 64]))
                .unwrap()
        });
        settle(&mut sim, &mut store);
        let t0 = sim.now();
        drive(&mut sim, |ctx| {
            store
                .write(ctx, Document::with_field(1, "f", vec![1; 1024]))
                .unwrap()
        });
        let done = settle(&mut sim, &mut store);
        let lat = done[0].finished.since(t0);
        // Five sequential group ops (lock, append, memcpy, head, unlock):
        // tens of microseconds on an idle fabric.
        assert!(lat > SimDuration::from_micros(30), "{lat}");
        assert!(lat < SimDuration::from_micros(200), "{lat}");
    }
}
