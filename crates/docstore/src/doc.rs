//! Documents: id plus named binary fields, with a compact encoding.

use std::collections::BTreeMap;
use std::fmt;

/// A document: a set of named binary fields under a dense numeric id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// Document id (dense index into the collection).
    pub id: u64,
    /// Field name → value.
    pub fields: BTreeMap<String, Vec<u8>>,
}

impl Document {
    /// A document with a single field (the YCSB record shape).
    pub fn with_field(id: u64, name: &str, value: Vec<u8>) -> Self {
        let mut fields = BTreeMap::new();
        fields.insert(name.to_owned(), value);
        Document { id, fields }
    }

    /// Serialized size.
    pub fn encoded_len(&self) -> usize {
        8 + 4
            + self
                .fields
                .iter()
                .map(|(k, v)| 4 + k.len() + 4 + v.len())
                .sum::<usize>()
    }

    /// Serializes: `id u64 | n u32 | (klen u32 | key | vlen u32 | val)*`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.encoded_len());
        b.extend_from_slice(&self.id.to_le_bytes());
        b.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (k, v) in &self.fields {
            b.extend_from_slice(&(k.len() as u32).to_le_bytes());
            b.extend_from_slice(k.as_bytes());
            b.extend_from_slice(&(v.len() as u32).to_le_bytes());
            b.extend_from_slice(v);
        }
        b
    }

    /// Parses a serialized document.
    pub fn decode(b: &[u8]) -> Option<Document> {
        if b.len() < 12 {
            return None;
        }
        let id = u64::from_le_bytes(b[0..8].try_into().ok()?);
        let n = u32::from_le_bytes(b[8..12].try_into().ok()?) as usize;
        let mut pos = 12;
        let mut fields = BTreeMap::new();
        for _ in 0..n {
            if b.len() < pos + 4 {
                return None;
            }
            let klen = u32::from_le_bytes(b[pos..pos + 4].try_into().ok()?) as usize;
            pos += 4;
            if b.len() < pos + klen + 4 {
                return None;
            }
            let key = String::from_utf8(b[pos..pos + klen].to_vec()).ok()?;
            pos += klen;
            let vlen = u32::from_le_bytes(b[pos..pos + 4].try_into().ok()?) as usize;
            pos += 4;
            if b.len() < pos + vlen {
                return None;
            }
            fields.insert(key, b[pos..pos + vlen].to_vec());
            pos += vlen;
        }
        Some(Document { id, fields })
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}({} fields)", self.id, self.fields.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut d = Document::with_field(7, "name", b"alice".to_vec());
        d.fields.insert("age".into(), vec![42]);
        let b = d.encode();
        assert_eq!(b.len(), d.encoded_len());
        assert_eq!(Document::decode(&b), Some(d));
    }

    #[test]
    fn empty_document() {
        let d = Document {
            id: 1,
            fields: BTreeMap::new(),
        };
        assert_eq!(Document::decode(&d.encode()), Some(d));
    }

    #[test]
    fn truncated_bytes_fail() {
        let d = Document::with_field(1, "k", vec![1, 2, 3]);
        let b = d.encode();
        for cut in [0, 5, 11, b.len() - 1] {
            assert_eq!(Document::decode(&b[..cut]), None, "cut {cut}");
        }
    }

    mod randomized {
        use super::*;
        use simcore::SimRng;

        #[test]
        fn any_doc_round_trips() {
            let mut rng = SimRng::new(0xD0C5);
            for _ in 0..128 {
                let mut fields = BTreeMap::new();
                for _ in 0..rng.gen_index(6) {
                    let name: String = (0..1 + rng.gen_index(8))
                        .map(|_| (b'a' + rng.gen_index(26) as u8) as char)
                        .collect();
                    let mut val = vec![0u8; rng.gen_index(64)];
                    rng.fill_bytes(&mut val);
                    fields.insert(name, val);
                }
                let d = Document {
                    id: rng.next_u64(),
                    fields,
                };
                assert_eq!(Document::decode(&d.encode()), Some(d));
            }
        }
    }
}
