//! Latency statistics: log-bucketed histograms and summaries.
//!
//! [`Histogram`] keeps HDR-style buckets (5 significant bits per power of
//! two), giving ~3% relative quantile error over 1 ns .. 18 s at a fixed,
//! small memory footprint — exactly what tail-latency experiments need.
//!
//! ```
//! use simcore::stats::Histogram;
//! use simcore::time::SimDuration;
//!
//! let mut h = Histogram::new();
//! for us in 1..=1000 {
//!     h.record(SimDuration::from_micros(us));
//! }
//! let p99 = h.quantile(0.99);
//! assert!((960..=1020).contains(&p99.as_micros()));
//! ```

use crate::time::SimDuration;
use std::fmt;

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 32 linear sub-buckets / octave
const OCTAVES: usize = 64 - SUB_BUCKET_BITS as usize;
const NUM_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A log-bucketed latency histogram with bounded relative error.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

fn bucket_of(value_ns: u64) -> usize {
    if value_ns < SUB_BUCKETS as u64 {
        return value_ns as usize;
    }
    let octave = 63 - value_ns.leading_zeros(); // >= SUB_BUCKET_BITS
    let shift = octave - SUB_BUCKET_BITS;
    let sub = (value_ns >> shift) as usize & (SUB_BUCKETS - 1);
    ((octave - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
}

/// Upper edge (inclusive representative value) of a bucket.
fn bucket_value(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = (index / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let sub = (index % SUB_BUCKETS) as u64;
    let shift = octave - SUB_BUCKET_BITS;
    ((1u64 << SUB_BUCKET_BITS) | sub) << shift
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of all samples ([`SimDuration::ZERO`] when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Smallest recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The value at quantile `q ∈ [0, 1]`, with ~3% relative error.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // Every bucket below the one holding `min_ns` is empty by
        // construction, so start the scan there instead of at index 0.
        let start = bucket_of(self.min_ns);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate().skip(start) {
            seen += c;
            if seen >= rank {
                // Clamp to the observed extremes so q=1.0 reports max exactly.
                return SimDuration::from_nanos(bucket_value(i).clamp(self.min_ns, self.max_ns));
            }
        }
        self.max()
    }

    /// Occupied buckets as `(upper_edge, count)` pairs, in ascending order.
    ///
    /// Empty buckets are skipped, so this is suitable for plotting the full
    /// latency distribution without materialising ~1,900 mostly-zero rows.
    pub fn buckets(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (SimDuration::from_nanos(bucket_value(i)), c))
    }

    /// Cumulative distribution: `(upper_edge, fraction ≤ edge)` for every
    /// occupied bucket. The final fraction is exactly 1.0. Empty histogram
    /// yields an empty vector.
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (edge, c) in self.buckets() {
            seen += c;
            out.push((edge, seen as f64 / self.total as f64));
        }
        out
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// Convenience accessor for the 95th percentile.
    pub fn p95(&self) -> SimDuration {
        self.quantile(0.95)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Convenience accessor for the 99.9th percentile.
    pub fn p999(&self) -> SimDuration {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Snapshot of the headline numbers.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            p999: self.p999(),
            min: self.min(),
            max: self.max(),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// Headline latency numbers extracted from a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// Minimum.
    pub min: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} p999={} max={}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.p999, self.max
        )
    }
}

/// A plain monotonically increasing counter with a name, for bookkeeping like
/// context switches or bytes moved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets to zero and returns the old value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_error_is_bounded() {
        for &v in &[1u64, 31, 32, 33, 100, 1_000, 65_535, 1 << 20, u64::MAX / 2] {
            let b = bucket_of(v);
            let rep = bucket_value(b);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "v={v} rep={rep} err={err}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for v in (0..200_000u64).step_by(7) {
            let b = bucket_of(v);
            assert!(b >= last, "bucket index decreased at {v}");
            last = b;
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        // Exact p99 is 9 900 us; the histogram guarantees ~3% relative error.
        assert!(
            (9_600..=10_000).contains(&h.p99().as_micros()),
            "{:?}",
            h.p99()
        );
        assert!(
            (4_800..=5_200).contains(&h.p50().as_micros()),
            "{:?}",
            h.p50()
        );
        assert_eq!(h.min().as_micros(), 1);
        assert_eq!(h.max().as_micros(), 10_000);
        assert!((4_900..=5_100).contains(&h.mean().as_micros()));
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(42));
        assert_eq!(h.p50().as_micros(), 42);
        assert_eq!(h.p99().as_micros(), 42);
        assert_eq!(h.quantile(1.0).as_micros(), 42);
        assert_eq!(h.quantile(0.0).as_micros(), 42);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().as_micros(), 1000);
        assert_eq!(a.min().as_micros(), 10);
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(SimDuration::from_micros(i));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn counter_behaviour() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        Histogram::new().quantile(1.5);
    }
}
