//! The simulation driver: a [`Model`] consumes events and schedules more.
//!
//! Components below the top level (a NIC, a CPU scheduler, a link) do not see
//! the global queue. They are written as Mealy machines that return their
//! *effects* — `(delay, effect)` pairs collected in an [`Outbox`] — and the
//! composing model routes each effect either back into the global queue or
//! into a sibling component. This keeps every component unit-testable in
//! isolation.
//!
//! ```
//! use simcore::model::{Model, Simulation};
//! use simcore::time::{SimTime, SimDuration};
//! use simcore::queue::EventQueue;
//!
//! struct Countdown(u32);
//! impl Model for Countdown {
//!     type Event = ();
//!     fn handle(&mut self, _now: SimTime, _ev: (), q: &mut EventQueue<()>) {
//!         if self.0 > 0 {
//!             self.0 -= 1;
//!             q.push_after(SimDuration::from_micros(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Countdown(3));
//! sim.queue.push(SimTime::ZERO, ());
//! let steps = sim.run();
//! assert_eq!(steps, 4);
//! assert_eq!(sim.now(), SimTime::from_micros(3));
//! ```

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A top-level simulation model.
pub trait Model {
    /// The single event type flowing through the global queue.
    type Event;

    /// Reacts to one event, optionally scheduling follow-ups on `q`.
    fn handle(&mut self, now: SimTime, event: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// A model plus its event queue, with run loops.
pub struct Simulation<M: Model> {
    /// The user's state machine.
    pub model: M,
    /// The future event list.
    pub queue: EventQueue<M::Event>,
}

impl<M: Model> Simulation<M> {
    /// Wraps a model with an empty queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Runs until the queue drains. Returns the number of events processed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event would fire after
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            self.model.handle(now, ev, &mut self.queue);
            steps += 1;
        }
        steps
    }

    /// Runs at most `max_steps` events; returns how many actually ran.
    /// Useful as a watchdog against livelock in tests.
    pub fn run_steps(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps {
            match self.queue.pop() {
                Some((now, ev)) => {
                    self.model.handle(now, ev, &mut self.queue);
                    steps += 1;
                }
                None => break,
            }
        }
        steps
    }
}

/// Effects emitted by a sub-component during one `handle` call: each entry is
/// an effect that should take place `delay` after the current instant.
///
/// The composing model drains the outbox and decides where each effect goes.
#[derive(Debug)]
pub struct Outbox<T> {
    items: Vec<(SimDuration, T)>,
}

impl<T> Default for Outbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Outbox<T> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// Emits an effect after `delay`.
    pub fn emit(&mut self, delay: SimDuration, effect: T) {
        self.items.push((delay, effect));
    }

    /// Emits an effect at the current instant.
    pub fn emit_now(&mut self, effect: T) {
        self.items.push((SimDuration::ZERO, effect));
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of pending effects.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Drains all effects in emission order.
    pub fn drain(&mut self) -> impl Iterator<Item = (SimDuration, T)> + '_ {
        self.items.drain(..)
    }

    /// Consumes the outbox, yielding all effects in emission order.
    pub fn into_vec(self) -> Vec<(SimDuration, T)> {
        self.items
    }
}

impl<T> Extend<(SimDuration, T)> for Outbox<T> {
    fn extend<I: IntoIterator<Item = (SimDuration, T)>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<T> IntoIterator for Outbox<T> {
    type Item = (SimDuration, T);
    type IntoIter = std::vec::IntoIter<(SimDuration, T)>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PingPong {
        pings: u32,
        log: Vec<(SimTime, &'static str)>,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl Model for PingPong {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Ping => {
                    self.log.push((now, "ping"));
                    q.push_after(SimDuration::from_micros(1), Ev::Pong);
                }
                Ev::Pong => {
                    self.log.push((now, "pong"));
                    if self.pings > 0 {
                        self.pings -= 1;
                        q.push_after(SimDuration::from_micros(1), Ev::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_alternates() {
        let mut sim = Simulation::new(PingPong {
            pings: 2,
            log: vec![],
        });
        sim.queue.push(SimTime::ZERO, Ev::Ping);
        sim.run();
        let names: Vec<&str> = sim.model.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["ping", "pong", "ping", "pong", "ping", "pong"]);
        assert_eq!(sim.now(), SimTime::from_micros(5));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(PingPong {
            pings: 1000,
            log: vec![],
        });
        sim.queue.push(SimTime::ZERO, Ev::Ping);
        sim.run_until(SimTime::from_micros(10));
        assert!(sim.now() <= SimTime::from_micros(10));
        assert!(
            !sim.queue.is_empty(),
            "deadline should leave events pending"
        );
    }

    #[test]
    fn run_steps_bounds_work() {
        let mut sim = Simulation::new(PingPong {
            pings: 1000,
            log: vec![],
        });
        sim.queue.push(SimTime::ZERO, Ev::Ping);
        assert_eq!(sim.run_steps(5), 5);
    }

    #[test]
    fn outbox_orders_and_drains() {
        let mut ob = Outbox::new();
        ob.emit_now("a");
        ob.emit(SimDuration::from_micros(2), "b");
        assert_eq!(ob.len(), 2);
        let v: Vec<_> = ob.drain().collect();
        assert_eq!(v[0], (SimDuration::ZERO, "a"));
        assert_eq!(v[1], (SimDuration::from_micros(2), "b"));
        assert!(ob.is_empty());
    }
}
