//! # simcore — deterministic discrete-event simulation engine
//!
//! The foundation of the HyperLoop reproduction: every other crate in the
//! workspace (the RDMA NIC model, the CPU scheduler, the network fabric, the
//! storage applications) is built as a state machine driven by this engine.
//!
//! The engine is deliberately minimal:
//!
//! * [`time`] — virtual nanosecond clock ([`SimTime`], [`SimDuration`]).
//! * [`queue`] — the future event list with deterministic tie-breaking.
//! * [`model`] — the [`Model`] trait, [`Simulation`] run loops and the
//!   [`Outbox`] pattern for composing sub-components.
//! * [`rng`] — a self-contained, cross-platform deterministic PRNG.
//! * [`dist`] — YCSB-style key-choice distributions (zipfian, latest, …).
//! * [`stats`] — HDR-style histograms and latency summaries.
//! * [`simtrace`] — causal trace events, span reconstruction, Chrome
//!   trace-event export and the unified metrics registry.
//! * [`simprof`] — critical-path aggregation over trace streams, folded
//!   flamegraph stacks and Perfetto counter tracks.
//! * [`simaudit`] — online invariant auditors over the trace stream plus
//!   streaming per-shard health/SLO tracking and windowed telemetry series.
//! * [`tailprof`] — tail-latency exemplars over the trace ring: ops past
//!   the population p99 with per-stage excess breakdowns and a normative
//!   single-cause root-cause classification.
//! * [`hostprof`] — wall-clock self-profiling of the simulator itself:
//!   scoped host timers with folded-stack export, allocation counters and
//!   the per-run `host` statistics block (never perturbs the sim timeline).
//! * [`jsonw`] — the dependency-free JSON writer behind the exporters, its
//!   matching reader, and the `host.*`-stripping report canonicalizer.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//!
//! struct Arrivals {
//!     rng: SimRng,
//!     histogram: Histogram,
//!     remaining: u32,
//! }
//!
//! impl Model for Arrivals {
//!     type Event = SimTime; // carries the enqueue timestamp
//!     fn handle(&mut self, now: SimTime, sent: SimTime, q: &mut EventQueue<SimTime>) {
//!         self.histogram.record(now.since(sent));
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             let delay = SimDuration::from_nanos(self.rng.gen_range(100..200));
//!             q.push_after(delay, now);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Arrivals {
//!     rng: SimRng::new(1),
//!     histogram: Histogram::new(),
//!     remaining: 1000,
//! });
//! sim.queue.push(SimTime::ZERO, SimTime::ZERO);
//! sim.run();
//! assert_eq!(sim.model.histogram.count(), 1001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod hostprof;
pub mod jsonw;
pub mod model;
pub mod queue;
pub mod rng;
pub mod simaudit;
pub mod simprof;
pub mod simtrace;
pub mod stats;
pub mod tailprof;
pub mod time;

pub use hostprof::{HostMeter, HostProf, HostStats};
pub use model::{Model, Outbox, Simulation};
pub use queue::{EventQueue, QueueStats};
pub use rng::SimRng;
pub use simaudit::{
    Audit, Auditor, HealthMonitor, HealthState, MetricSeries, Probe, SeriesPoint, SeriesSummary,
    SloConfig, Violation,
};
pub use simprof::{CounterSampler, StageAttribution, TxnAttribution};
pub use simtrace::{MetricsRegistry, TraceEvent, TraceKind, Tracer};
pub use stats::{Counter, Histogram, LatencySummary};
pub use tailprof::{TailCause, TailExemplar, TailProfile};
pub use time::{SimDuration, SimTime};

/// One-stop imports for simulation code.
pub mod prelude {
    pub use crate::dist::{KeyChooser, Latest, ScrambledZipfian, UniformKeys, Zipfian};
    pub use crate::hostprof::{HostMeter, HostProf, HostStats};
    pub use crate::model::{Model, Outbox, Simulation};
    pub use crate::queue::{EventQueue, QueueStats};
    pub use crate::rng::SimRng;
    pub use crate::simaudit::{Audit, HealthMonitor, HealthState, Probe, SeriesSummary, SloConfig};
    pub use crate::simprof::{CounterSampler, StageAttribution, TxnAttribution};
    pub use crate::simtrace::{MetricsRegistry, TraceEvent, TraceKind, Tracer};
    pub use crate::stats::{Counter, Histogram, LatencySummary};
    pub use crate::tailprof::{TailCause, TailProfile};
    pub use crate::time::{SimDuration, SimTime};
}
