//! A minimal, dependency-free JSON writer — and the matching reader.
//!
//! The workspace builds in environments with no registry access, so machine-
//! readable output (Chrome traces, `BENCH_*.json`) is produced by this small
//! streaming writer instead of an external serialization crate. Output is
//! deterministic: field order is caller-controlled and float formatting uses
//! Rust's shortest-round-trip representation.
//!
//! [`parse`] is the reader side, used by tooling that validates what the
//! writer emitted (the `benchcheck` binary). It preserves the writer's
//! number split — unsigned integers come back as [`JsonValue::U64`], so a
//! checker can distinguish a real counter from a float that merely rounds —
//! and, being strict JSON, it has no NaN/Infinity literals: a non-finite
//! float can only appear as the `null` the writer substitutes, which is
//! exactly what validators look for.
//!
//! ```
//! use simcore::jsonw::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_obj();
//! w.field_str("name", "smoke");
//! w.begin_arr_field("values");
//! w.u64_elem(1);
//! w.u64_elem(2);
//! w.end_arr();
//! w.end_obj();
//! assert_eq!(w.finish(), r#"{"name":"smoke","values":[1,2]}"#);
//! ```

/// Streaming JSON writer with caller-driven structure.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` until the first element lands.
    first: Vec<bool>,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter {
            out: String::new(),
            first: vec![true],
        }
    }

    fn comma(&mut self) {
        if let Some(f) = self.first.last_mut() {
            if *f {
                *f = false;
            } else {
                self.out.push(',');
            }
        }
    }

    fn key(&mut self, k: &str) {
        self.comma();
        escape_into(&mut self.out, k);
        self.out.push(':');
    }

    fn f64_repr(v: f64) -> String {
        if !v.is_finite() {
            return "null".into();
        }
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still valid JSON.
        s
    }

    /// Opens an object as an array element (or as the document root).
    pub fn begin_obj(&mut self) {
        self.comma();
        self.out.push('{');
        self.first.push(true);
    }

    /// Opens an object-valued field.
    pub fn begin_obj_field(&mut self, k: &str) {
        self.key(k);
        self.out.push('{');
        self.first.push(true);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        self.out.push('}');
        self.first.pop();
    }

    /// Opens an array as an array element (or as the document root).
    pub fn begin_arr(&mut self) {
        self.comma();
        self.out.push('[');
        self.first.push(true);
    }

    /// Opens an array-valued field.
    pub fn begin_arr_field(&mut self, k: &str) {
        self.key(k);
        self.out.push('[');
        self.first.push(true);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        self.out.push(']');
        self.first.pop();
    }

    /// Writes a string field.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        escape_into(&mut self.out, v);
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer field (negative values carry the sign).
    pub fn field_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        self.out.push_str(&v.to_string());
    }

    /// Writes a float field (`null` for non-finite values).
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        let r = Self::f64_repr(v);
        self.out.push_str(&r);
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a string array element.
    pub fn str_elem(&mut self, v: &str) {
        self.comma();
        escape_into(&mut self.out, v);
    }

    /// Writes an unsigned integer array element.
    pub fn u64_elem(&mut self, v: u64) {
        self.comma();
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer array element.
    pub fn i64_elem(&mut self, v: i64) {
        self.comma();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float array element (`null` for non-finite values).
    pub fn f64_elem(&mut self, v: f64) {
        self.comma();
        let r = Self::f64_repr(v);
        self.out.push_str(&r);
    }

    /// Finishes and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what the writer emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is lexically a non-negative integer fitting in `u64`.
    U64(u64),
    /// Any other number (negative, fractional, or exponent-form).
    F64(f64),
    /// A string.
    Str(String),
    /// An array, element order preserved.
    Arr(Vec<JsonValue>),
    /// An object, field order preserved (duplicate keys kept as written).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup (first match) on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a [`JsonValue::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value of either number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a [`JsonValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`JsonValue::Arr`].
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is a [`JsonValue::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and what went wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonParseError {
        JsonParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((k, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(elems));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so in-bounds
                    // continuation bytes are guaranteed well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = next_scalar_str(rest);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral && !s.starts_with('-') {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        s.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

/// The longest prefix of `rest` that is one UTF-8 scalar. `rest` starts at
/// a char boundary of a `&str`, so the slice is always valid.
fn next_scalar_str(rest: &[u8]) -> &str {
    let len = match rest[0] {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    };
    std::str::from_utf8(&rest[..len]).expect("input was a str")
}

/// Serializes a parsed [`JsonValue`] tree back to the writer's compact,
/// deterministic format (field order preserved, non-finite floats as
/// `null`). `parse` → `to_string` is the identity on writer output up to
/// float re-formatting — both sides of a canonicalized comparison go
/// through the same path, so the representation is stable where it counts.
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::new();
    value_into(&mut out, v);
    out
}

fn value_into(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::U64(n) => out.push_str(&n.to_string()),
        JsonValue::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => escape_into(out, s),
        JsonValue::Arr(elems) => {
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                value_into(out, e);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            let mut first = true;
            for (k, val) in fields {
                if !first {
                    out.push(',');
                }
                first = false;
                escape_into(out, k);
                out.push(':');
                value_into(out, val);
            }
            out.push('}');
        }
    }
}

/// True for object keys the canonicalizer drops: the `host` block itself,
/// any flattened `host.*` key, and bare wall-clock fields — everything
/// that legitimately differs between two same-seed runs.
fn is_volatile_host_key(key: &str) -> bool {
    key == "host"
        || key.starts_with("host.")
        || matches!(
            key,
            "wall_ms" | "wall_ns" | "observed_wall_ms" | "bare_wall_ms"
        )
}

fn strip_volatile(v: JsonValue) -> JsonValue {
    match v {
        JsonValue::Obj(fields) => JsonValue::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| !is_volatile_host_key(k))
                .map(|(k, val)| (k, strip_volatile(val)))
                .collect(),
        ),
        JsonValue::Arr(elems) => JsonValue::Arr(elems.into_iter().map(strip_volatile).collect()),
        other => other,
    }
}

/// The shared report canonicalizer for same-seed byte-identity tests:
/// parses `text`, recursively drops every volatile host-side field (the
/// `host` block of `BENCH_*.json` scenarios, flattened `host.*` keys, bare
/// wall-clock fields), and re-serializes deterministically. Two same-seed
/// reports must canonicalize to identical bytes whether or not host
/// profiling ran — host wall-clock measurements are the *only* fields
/// allowed to differ.
///
/// ```
/// use simcore::jsonw::canonicalize_report;
///
/// let a = r#"{"ops":7,"host":{"wall_ms":3.2},"nested":[{"host.queue.pushed":9,"x":1}]}"#;
/// let b = r#"{"ops":7,"host":{"wall_ms":9.9},"nested":[{"host.queue.pushed":4,"x":1}]}"#;
/// assert_eq!(
///     canonicalize_report(a).unwrap(),
///     canonicalize_report(b).unwrap()
/// );
/// ```
pub fn canonicalize_report(text: &str) -> Result<String, JsonParseError> {
    let _t = crate::hostprof::scope("jsonw.export");
    Ok(to_string(&strip_volatile(parse(text)?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_escaping() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("a\"b", "line\nbreak\t\\");
        w.begin_obj_field("inner");
        w.field_u64("n", 42);
        w.field_bool("ok", true);
        w.end_obj();
        w.begin_arr_field("xs");
        w.f64_elem(1.5);
        w.f64_elem(f64::NAN);
        w.str_elem("s");
        w.end_arr();
        w.end_obj();
        assert_eq!(
            w.finish(),
            r#"{"a\"b":"line\nbreak\t\\","inner":{"n":42,"ok":true},"xs":[1.5,null,"s"]}"#
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.str_elem("\u{1}");
        w.end_arr();
        assert_eq!(w.finish(), "[\"\\u0001\"]");
    }

    #[test]
    fn reader_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("name", "smö\"ke\n");
        w.field_u64("count", u64::MAX);
        w.field_f64("mean", 1.25);
        w.field_f64("bad", f64::NAN);
        w.field_bool("ok", true);
        w.begin_arr_field("xs");
        w.u64_elem(3);
        w.f64_elem(-0.5);
        w.end_arr();
        w.begin_obj_field("inner");
        w.end_obj();
        w.end_obj();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("smö\"ke\n"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("mean").unwrap().as_f64(), Some(1.25));
        // The writer turns non-finite floats into null — the reader keeps
        // that distinction so validators can flag it.
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs[0].as_u64(), Some(3));
        assert_eq!(xs[1], JsonValue::F64(-0.5));
        assert_eq!(v.get("inner").unwrap().as_obj(), Some(&[][..]));
    }

    #[test]
    fn reader_distinguishes_integers_from_floats() {
        let v = parse(r#"[7, -7, 7.0, 7e0]"#).unwrap();
        let xs = v.as_arr().unwrap();
        assert_eq!(xs[0], JsonValue::U64(7));
        assert_eq!(xs[1], JsonValue::F64(-7.0));
        assert_eq!(xs[2], JsonValue::F64(7.0));
        assert_eq!(xs[3], JsonValue::F64(7.0));
    }

    #[test]
    fn reader_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1}x",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
        // Surrogate-pair escapes decode to one scalar.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn to_string_round_trips_writer_output_byte_for_byte() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("name", "smö\"ke\n");
        w.field_u64("count", u64::MAX);
        w.field_f64("mean", 1.25);
        w.field_f64("bad", f64::NAN);
        w.field_bool("ok", true);
        w.begin_arr_field("xs");
        w.u64_elem(3);
        w.f64_elem(-0.5);
        w.end_arr();
        w.begin_obj_field("inner");
        w.end_obj();
        w.end_obj();
        let text = w.finish();
        let reserialized = to_string(&parse(&text).unwrap());
        assert_eq!(reserialized, text);
        // Idempotent: canonical text parses back to the same tree.
        assert_eq!(to_string(&parse(&reserialized).unwrap()), reserialized);
    }

    #[test]
    fn canonicalize_strips_host_blocks_everywhere() {
        let a = r#"{"x":1,"host":{"wall_ms":1.5,"ops_per_sec":10},"scenarios":[{"n":"a","host":{"wall_ms":2}},{"host.queue.pushed":7,"wall_ms":3,"keep":true}]}"#;
        let b = r#"{"x":1,"host":{"wall_ms":8.25,"ops_per_sec":99},"scenarios":[{"n":"a","host":{"wall_ms":9}},{"host.queue.pushed":1,"wall_ms":4,"keep":true}]}"#;
        let ca = canonicalize_report(a).unwrap();
        assert_eq!(ca, canonicalize_report(b).unwrap());
        assert!(!ca.contains("host"));
        assert!(!ca.contains("wall_ms"));
        assert!(ca.contains("\"keep\":true"));
        // Non-host content still distinguishes reports.
        let c = canonicalize_report(r#"{"x":2,"host":{"wall_ms":1.5}}"#).unwrap();
        assert_ne!(canonicalize_report(r#"{"x":1}"#).unwrap(), c);
    }

    #[test]
    fn canonicalize_rejects_malformed_reports() {
        assert!(canonicalize_report("{").is_err());
    }
}
