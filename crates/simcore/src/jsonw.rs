//! A minimal, dependency-free JSON writer.
//!
//! The workspace builds in environments with no registry access, so machine-
//! readable output (Chrome traces, `BENCH_*.json`) is produced by this small
//! streaming writer instead of an external serialization crate. Output is
//! deterministic: field order is caller-controlled and float formatting uses
//! Rust's shortest-round-trip representation.
//!
//! ```
//! use simcore::jsonw::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_obj();
//! w.field_str("name", "smoke");
//! w.begin_arr_field("values");
//! w.u64_elem(1);
//! w.u64_elem(2);
//! w.end_arr();
//! w.end_obj();
//! assert_eq!(w.finish(), r#"{"name":"smoke","values":[1,2]}"#);
//! ```

/// Streaming JSON writer with caller-driven structure.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` until the first element lands.
    first: Vec<bool>,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter {
            out: String::new(),
            first: vec![true],
        }
    }

    fn comma(&mut self) {
        if let Some(f) = self.first.last_mut() {
            if *f {
                *f = false;
            } else {
                self.out.push(',');
            }
        }
    }

    fn key(&mut self, k: &str) {
        self.comma();
        escape_into(&mut self.out, k);
        self.out.push(':');
    }

    fn f64_repr(v: f64) -> String {
        if !v.is_finite() {
            return "null".into();
        }
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still valid JSON.
        s
    }

    /// Opens an object as an array element (or as the document root).
    pub fn begin_obj(&mut self) {
        self.comma();
        self.out.push('{');
        self.first.push(true);
    }

    /// Opens an object-valued field.
    pub fn begin_obj_field(&mut self, k: &str) {
        self.key(k);
        self.out.push('{');
        self.first.push(true);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        self.out.push('}');
        self.first.pop();
    }

    /// Opens an array as an array element (or as the document root).
    pub fn begin_arr(&mut self) {
        self.comma();
        self.out.push('[');
        self.first.push(true);
    }

    /// Opens an array-valued field.
    pub fn begin_arr_field(&mut self, k: &str) {
        self.key(k);
        self.out.push('[');
        self.first.push(true);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        self.out.push(']');
        self.first.pop();
    }

    /// Writes a string field.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        escape_into(&mut self.out, v);
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.out.push_str(&v.to_string());
    }

    /// Writes a float field (`null` for non-finite values).
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        let r = Self::f64_repr(v);
        self.out.push_str(&r);
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a string array element.
    pub fn str_elem(&mut self, v: &str) {
        self.comma();
        escape_into(&mut self.out, v);
    }

    /// Writes an unsigned integer array element.
    pub fn u64_elem(&mut self, v: u64) {
        self.comma();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float array element (`null` for non-finite values).
    pub fn f64_elem(&mut self, v: f64) {
        self.comma();
        let r = Self::f64_repr(v);
        self.out.push_str(&r);
    }

    /// Finishes and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_escaping() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("a\"b", "line\nbreak\t\\");
        w.begin_obj_field("inner");
        w.field_u64("n", 42);
        w.field_bool("ok", true);
        w.end_obj();
        w.begin_arr_field("xs");
        w.f64_elem(1.5);
        w.f64_elem(f64::NAN);
        w.str_elem("s");
        w.end_arr();
        w.end_obj();
        assert_eq!(
            w.finish(),
            r#"{"a\"b":"line\nbreak\t\\","inner":{"n":42,"ok":true},"xs":[1.5,null,"s"]}"#
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.str_elem("\u{1}");
        w.end_arr();
        assert_eq!(w.finish(), "[\"\\u0001\"]");
    }
}
