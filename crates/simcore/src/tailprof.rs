//! Tail-latency exemplars, per-stage excess breakdowns and single-cause
//! root-cause attribution over a trace stream.
//!
//! [`StageAttribution`](crate::simprof::StageAttribution) explains the
//! *mean*: where the average op spends its time. This module explains the
//! *tail*: which ops landed past the population p99, how their stage
//! profile differs from the typical op, and — normatively — *why*.
//!
//! Everything here runs at fold time over the captured trace ring, after
//! the simulation finished: like all of `simprof` it is a pure observer
//! and cannot perturb the timeline, so traced and untraced runs of the
//! same seed stay byte-identical.
//!
//! ## Exemplar selection
//!
//! The population is every op with a complete issue→ack window in the
//! stream. End-to-end latencies are ranked exactly (sorted vector, index
//! `ceil(q·n) − 1` — not the ~3%-error log-bucketed histogram), and an op
//! is a *tail op* iff its e2e is **at or beyond** the population p99 and
//! strictly above the population median. Inclusion at the quantile value
//! matters in a deterministic simulator: latencies are heavily quantised,
//! so the slowest ops routinely tie at exactly the p99 order statistic
//! and a strict `>` rule would report an empty tail for precisely the
//! runs (a migration pause, a lock convoy) whose tail needs explaining.
//! The median guard keeps a perfectly flat population — where p99 equals
//! the median — from classifying every op as tail. The slowest
//! [`MAX_EXEMPLARS`] tail ops are retained in full as [`TailExemplar`]s,
//! slowest first.
//!
//! ## Excess tiling contract
//!
//! For each exemplar, every stage kind the op passed through gets an
//! *excess* row: the op's total time in that kind minus the population's
//! per-kind median (median over ops that have the kind at all). The
//! signed rows plus an explicit [`TailExemplar::residual_ns`] tile
//! `e2e − median_e2e` exactly — the same closed-sum discipline as the
//! ±1 ns `StageAttribution` contract, here exact by construction because
//! the residual is computed as the difference.
//!
//! ## Root-cause classification
//!
//! [`TailCause`] is the single normative taxonomy; each tail op gets
//! exactly one cause, so the per-cause counters always sum to the
//! tail-op count (the `AbortCause` closed-sum contract, applied to
//! latency). Causes are tested in the fixed precedence order documented
//! on [`TailCause`]; the first matching signal wins.

use std::collections::BTreeMap;

use crate::jsonw::JsonWriter;
use crate::simaudit::op_id_parts;
use crate::simprof::{events_by_op, issue_ack_window, stage_kind, txn_op_links, txn_phase_streams};
use crate::simtrace::{
    breakdown_from_sorted, span_tree, SpanNode, TraceEvent, TraceKind, TXN_PHASE_ACQUIRE,
    TXN_PHASE_BACKOFF, TXN_PHASE_ROLLBACK, TXN_PHASE_UNDO,
};
use crate::time::{SimDuration, SimTime};

/// Maximum fully-materialised exemplars kept per profile (the cause
/// counters still cover *every* tail op).
pub const MAX_EXEMPLARS: usize = 16;

/// Straggler test: the dominant replica's in-op stage total must be at
/// least this multiple of the runner-up's.
const STRAGGLER_RATIO: u64 = 2;

/// Stage kinds whose dominance of the excess profile reads as queueing
/// delay (scheduler dispatch, WQE pickup, chain-release waits, link
/// serialisation).
const QUEUE_KINDS: [&str; 4] = ["wait_release", "wqe_fetch", "link_enqueue", "dispatch"];

/// Why one tail op was slow — the single normative taxonomy.
///
/// Exactly one cause is assigned per tail op, so per-cause counters sum
/// to the tail-op count. Signals are tested in this fixed precedence
/// order; the first match wins:
///
/// 1. [`TailCause::MigrationPause`] — a `migrate_*` event fired inside
///    the op's issue→ack window, on *any* shard: a pause stalls the
///    issuing client's completion loop, so in-flight ops on sibling
///    shards delayed across the window are migration victims too. A
///    shard-matched signal is preferred when choosing the epoch
///    argument.
/// 2. [`TailCause::TxnBackoff`] — the op belongs to a transaction whose
///    `backoff` phase overlaps the op's window.
/// 3. [`TailCause::LockWait`] — the op belongs to a transaction whose
///    `acquire`/`undo`/`rollback` phase covers the op's issue time.
/// 4. [`TailCause::ReplicaStraggler`] — one replica's share of the op's
///    in-window *service* time (queueing stages excluded) is ≥ 2× every
///    sibling's (and at least two replicas took part).
/// 5. [`TailCause::QueueWait`] — the largest positive per-stage excess
///    is a queueing stage (`wait_release`, `wqe_fetch`, `link_enqueue`
///    or `dispatch`).
/// 6. [`TailCause::FlowControlStall`] — the shard's in-flight occupancy
///    at the op's issue equalled the maximum occupancy ever observed on
///    that shard (and that maximum exceeds one op, i.e. the window can
///    bind at all).
/// 7. [`TailCause::Residual`] — none of the above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailCause {
    /// Dominated by queueing delay rather than service time.
    QueueWait,
    /// One replica hop dominated its siblings.
    ReplicaStraggler {
        /// The dominant (slow) replica node.
        node: u32,
    },
    /// Stuck behind a transaction's lock-acquisition pipeline.
    LockWait,
    /// Overlapped a parent transaction's contention backoff.
    TxnBackoff,
    /// Issued into a full flow-control window.
    FlowControlStall,
    /// A shard migration overlapped the op mid-flight (on the op's own
    /// shard, or stalling the shared client loop from a sibling shard).
    MigrationPause {
        /// Epoch the migration signal carried (the cutover's new epoch),
        /// falling back to the op's own epoch for begin/end signals.
        epoch: u64,
    },
    /// No specific signal matched.
    Residual,
}

/// The seven cause labels in precedence order — the closed key set of
/// the `tail.causes` report block.
pub const CAUSE_LABELS: [&str; 7] = [
    "migration_pause",
    "txn_backoff",
    "lock_wait",
    "replica_straggler",
    "queue_wait",
    "flow_control_stall",
    "residual",
];

impl TailCause {
    /// Stable snake_case label used in reports and counters.
    pub fn label(&self) -> &'static str {
        match self {
            TailCause::MigrationPause { .. } => "migration_pause",
            TailCause::TxnBackoff => "txn_backoff",
            TailCause::LockWait => "lock_wait",
            TailCause::ReplicaStraggler { .. } => "replica_straggler",
            TailCause::QueueWait => "queue_wait",
            TailCause::FlowControlStall => "flow_control_stall",
            TailCause::Residual => "residual",
        }
    }

    /// The cause's numeric argument: the straggler node, the migration
    /// epoch, and 0 for every argument-less cause. Keeps the exemplar
    /// JSON key set closed.
    pub fn arg(&self) -> u64 {
        match self {
            TailCause::ReplicaStraggler { node } => *node as u64,
            TailCause::MigrationPause { epoch } => *epoch,
            _ => 0,
        }
    }
}

/// One signed row of an exemplar's excess breakdown: the op's total time
/// in one stage kind versus the population median for that kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageExcess {
    /// Stage kind (node-suffix stripped, e.g. `wait_release`).
    pub label: String,
    /// This op's total time in the kind, ns.
    pub actual_ns: u64,
    /// Population median per-op total for the kind, ns.
    pub median_ns: u64,
    /// `actual_ns − median_ns` (negative when the op was *faster* here).
    pub excess_ns: i64,
}

/// One fully-materialised tail op: identity, cause, excess breakdown and
/// span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TailExemplar {
    /// The op id.
    pub op: u64,
    /// Shard the op ran on (from the op-id encoding).
    pub shard: u32,
    /// Issue time.
    pub start: SimTime,
    /// Issue→ack end-to-end latency.
    pub e2e: SimDuration,
    /// `e2e − median_e2e` for the population, ns.
    pub excess_ns: i64,
    /// The assigned root cause.
    pub cause: TailCause,
    /// Per-stage-kind excess rows, in the op's first-touch order.
    pub stages: Vec<StageExcess>,
    /// `excess_ns − Σ stages.excess_ns`: the part of the op's excess not
    /// explained by stage kinds it shares with the population. The rows
    /// plus this residual tile `excess_ns` exactly by construction.
    pub residual_ns: i64,
    /// The op's reconstructed span tree (artifact export only; the
    /// scenario report block omits it).
    pub span: Option<SpanNode>,
}

/// Tail-latency profile of one trace stream: exact population quantiles,
/// closed-sum cause counters over every tail op, and the slowest
/// exemplars in full.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TailProfile {
    /// Population size: ops with a complete issue→ack window.
    pub ops: u64,
    /// Ops at or beyond the population p99 (and strictly above the
    /// median; see the module docs for why the quantile is inclusive).
    pub tail_ops: u64,
    /// Exact population p99 e2e, ns.
    pub p99_ns: u64,
    /// Exact population median e2e, ns.
    pub median_e2e_ns: u64,
    /// Per-cause tail-op counts, one entry per [`CAUSE_LABELS`] label in
    /// that order (zeros included); they sum to [`TailProfile::tail_ops`].
    pub causes: Vec<(&'static str, u64)>,
    /// The ≤ [`MAX_EXEMPLARS`] slowest tail ops, slowest first (ties
    /// broken by ascending op id).
    pub exemplars: Vec<TailExemplar>,
}

/// Exact quantile over a sorted latency vector: index `ceil(q·n) − 1`
/// with `q` given as `num/den`.
fn exact_quantile(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let idx = (n * num).div_ceil(den).saturating_sub(1) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A transaction phase window `[start, end]` in phase `phase`.
struct PhaseWindow {
    start: SimTime,
    end: SimTime,
    phase: u8,
}

/// Adjacent-event pairing of a txn phase stream into windows: a
/// Begin-opened window is time in that phase (same folding rule as
/// `TxnAttribution`).
fn phase_windows(evs: &[(SimTime, bool, u8)]) -> Vec<PhaseWindow> {
    let mut out = Vec::new();
    for pair in evs.windows(2) {
        let (at, is_begin, phase) = pair[0];
        if is_begin {
            out.push(PhaseWindow {
                start: at,
                end: pair[1].0,
                phase,
            });
        }
    }
    out
}

impl TailProfile {
    /// Folds a trace stream into a tail profile.
    ///
    /// The population is every op with a complete issue→ack window
    /// (txn pseudo-ops have neither and drop out naturally). Quantiles
    /// are exact; every tail op is classified; only the slowest
    /// [`MAX_EXEMPLARS`] are materialised as [`TailExemplar`]s.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let by_op = events_by_op(events);

        // Per-op breakdowns over the issue→ack window, plus per-node
        // stage totals (node of the event *ending* each stage).
        struct OpFold {
            start: SimTime,
            end: SimTime,
            e2e_ns: u64,
            kind_totals: Vec<(String, u64)>, // first-touch order
            node_totals: BTreeMap<u32, u64>,
        }
        let mut folds: BTreeMap<u64, OpFold> = BTreeMap::new();
        for (&op, evs) in &by_op {
            let Some(win) = issue_ack_window(evs) else {
                continue;
            };
            let Some(bd) = breakdown_from_sorted(op, win, 0) else {
                continue;
            };
            let mut kind_totals: Vec<(String, u64)> = Vec::new();
            let mut node_totals: BTreeMap<u32, u64> = BTreeMap::new();
            for (stage, ev) in bd.stages.iter().zip(win.iter().skip(1)) {
                let kind = stage_kind(&stage.label);
                let ns = stage.duration().as_nanos();
                match kind_totals.iter_mut().find(|(k, _)| k == kind) {
                    Some((_, total)) => *total += ns,
                    None => kind_totals.push((kind.to_string(), ns)),
                }
                // Queue-stage time is not replica service time: keeping
                // it out of the per-node totals stops a long dispatch
                // wait from masquerading as a straggling replica.
                if ev.node != crate::simtrace::NO_NODE && !QUEUE_KINDS.contains(&kind) {
                    *node_totals.entry(ev.node).or_insert(0) += ns;
                }
            }
            folds.insert(
                op,
                OpFold {
                    start: bd.start,
                    end: bd.end,
                    e2e_ns: bd.total().as_nanos(),
                    kind_totals,
                    node_totals,
                },
            );
        }

        let mut profile = TailProfile {
            ops: folds.len() as u64,
            causes: CAUSE_LABELS.iter().map(|&l| (l, 0)).collect(),
            ..TailProfile::default()
        };
        if folds.is_empty() {
            return profile;
        }

        // Exact population quantiles over e2e and per-stage-kind totals.
        let mut e2e_sorted: Vec<u64> = folds.values().map(|f| f.e2e_ns).collect();
        e2e_sorted.sort_unstable();
        profile.p99_ns = exact_quantile(&e2e_sorted, 99, 100);
        profile.median_e2e_ns = exact_quantile(&e2e_sorted, 1, 2);
        let mut kind_pop: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for f in folds.values() {
            for (kind, ns) in &f.kind_totals {
                kind_pop.entry(kind.as_str()).or_default().push(*ns);
            }
        }
        let kind_median: BTreeMap<&str, u64> = kind_pop
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_unstable();
                (k, exact_quantile(&v, 1, 2))
            })
            .collect();

        // Cause signals shared across tail ops.
        let links = txn_op_links(events);
        let txn_windows: BTreeMap<u64, Vec<PhaseWindow>> = txn_phase_streams(events)
            .iter()
            .map(|(&txn, stream)| (txn, phase_windows(&stream.evs)))
            .collect();
        // Migration signals: (at, shard, cutover epoch if any).
        let mut migrations: Vec<(SimTime, u32, Option<u64>)> = Vec::new();
        // Flow-control occupancy: per-shard inflight at each op's issue
        // plus the per-shard maximum ever observed.
        let mut flow_evs: Vec<(SimTime, bool, u32, u64)> = Vec::new();
        for e in events {
            match e.kind {
                TraceKind::MigrateBegin { shard } => migrations.push((e.at, shard, None)),
                TraceKind::MigrateCutover { shard, epoch } => {
                    migrations.push((e.at, shard, Some(epoch)))
                }
                TraceKind::MigrateEnd { shard, .. } => migrations.push((e.at, shard, None)),
                TraceKind::OpIssue => flow_evs.push((e.at, true, op_id_parts(e.op).0, e.op)),
                TraceKind::OpAck => flow_evs.push((e.at, false, op_id_parts(e.op).0, e.op)),
                _ => {}
            }
        }
        flow_evs.sort_by_key(|&(at, is_issue, _, op)| (at, !is_issue, op));
        let mut inflight: BTreeMap<u32, u64> = BTreeMap::new();
        let mut shard_max: BTreeMap<u32, u64> = BTreeMap::new();
        let mut issue_occupancy: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, is_issue, shard, op) in flow_evs {
            let cur = inflight.entry(shard).or_insert(0);
            if is_issue {
                *cur += 1;
                issue_occupancy.insert(op, *cur);
                let max = shard_max.entry(shard).or_insert(0);
                *max = (*max).max(*cur);
            } else {
                *cur = cur.saturating_sub(1);
            }
        }

        // Classify every tail op; materialise the slowest as exemplars.
        let mut tail: Vec<(u64, &OpFold)> = folds
            .iter()
            .filter(|(_, f)| f.e2e_ns >= profile.p99_ns && f.e2e_ns > profile.median_e2e_ns)
            .map(|(&op, f)| (op, f))
            .collect();
        // Slowest first, ties by ascending op id (deterministic).
        tail.sort_by_key(|&(op, f)| (std::cmp::Reverse(f.e2e_ns), op));
        profile.tail_ops = tail.len() as u64;

        for (rank, (op, f)) in tail.iter().enumerate() {
            let (shard, op_epoch, _) = op_id_parts(*op);

            let stages: Vec<StageExcess> = f
                .kind_totals
                .iter()
                .map(|(kind, ns)| {
                    let median = kind_median.get(kind.as_str()).copied().unwrap_or(0);
                    StageExcess {
                        label: kind.clone(),
                        actual_ns: *ns,
                        median_ns: median,
                        excess_ns: *ns as i64 - median as i64,
                    }
                })
                .collect();

            let cause = classify(
                *op,
                shard,
                op_epoch,
                f.start,
                f.end,
                &f.node_totals,
                &stages,
                &migrations,
                &links,
                &txn_windows,
                &issue_occupancy,
                &shard_max,
            );
            if let Some(slot) = profile.causes.iter_mut().find(|(l, _)| *l == cause.label()) {
                slot.1 += 1;
            }

            if rank < MAX_EXEMPLARS {
                let excess_ns = f.e2e_ns as i64 - profile.median_e2e_ns as i64;
                let explained: i64 = stages.iter().map(|s| s.excess_ns).sum();
                profile.exemplars.push(TailExemplar {
                    op: *op,
                    shard,
                    start: f.start,
                    e2e: SimDuration::from_nanos(f.e2e_ns),
                    excess_ns,
                    cause,
                    stages,
                    residual_ns: excess_ns - explained,
                    span: span_tree(events, *op),
                });
            }
        }
        profile
    }

    /// The count recorded for one cause label (0 for unknown labels).
    pub fn cause_count(&self, label: &str) -> u64 {
        self.causes
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |(_, n)| *n)
    }

    /// Writes the scenario-report `tail` block as fields of an
    /// already-open JSON object (closed key set; span trees are left to
    /// [`TailProfile::to_artifact_json`]).
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("ops", self.ops);
        w.field_u64("tail_ops", self.tail_ops);
        w.field_u64("p99_ns", self.p99_ns);
        w.field_u64("median_e2e_ns", self.median_e2e_ns);
        w.begin_obj_field("causes");
        for (label, n) in &self.causes {
            w.field_u64(label, *n);
        }
        w.end_obj();
        w.begin_arr_field("exemplars");
        for ex in &self.exemplars {
            w.begin_obj();
            self.write_exemplar_fields(w, ex);
            w.end_obj();
        }
        w.end_arr();
    }

    fn write_exemplar_fields(&self, w: &mut JsonWriter, ex: &TailExemplar) {
        w.field_u64("op", ex.op);
        w.field_u64("shard", ex.shard as u64);
        w.field_u64("start_ns", ex.start.as_nanos());
        w.field_u64("e2e_ns", ex.e2e.as_nanos());
        w.field_i64("excess_ns", ex.excess_ns);
        w.field_str("cause", ex.cause.label());
        w.field_u64("cause_arg", ex.cause.arg());
        w.begin_arr_field("stages");
        for s in &ex.stages {
            w.begin_obj();
            w.field_str("label", &s.label);
            w.field_u64("actual_ns", s.actual_ns);
            w.field_u64("median_ns", s.median_ns);
            w.field_i64("excess_ns", s.excess_ns);
            w.end_obj();
        }
        w.end_arr();
        w.field_i64("residual_ns", ex.residual_ns);
    }

    /// The block as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        self.write_fields(&mut w);
        w.end_obj();
        w.finish()
    }

    /// The full-detail artifact document (`TAIL_*.json`): the report
    /// block plus each exemplar's span tree.
    pub fn to_artifact_json(&self, scenario: &str) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("scenario", scenario);
        w.field_u64("ops", self.ops);
        w.field_u64("tail_ops", self.tail_ops);
        w.field_u64("p99_ns", self.p99_ns);
        w.field_u64("median_e2e_ns", self.median_e2e_ns);
        w.begin_obj_field("causes");
        for (label, n) in &self.causes {
            w.field_u64(label, *n);
        }
        w.end_obj();
        w.begin_arr_field("exemplars");
        for ex in &self.exemplars {
            w.begin_obj();
            self.write_exemplar_fields(&mut w, ex);
            if let Some(span) = &ex.span {
                w.begin_obj_field("span");
                write_span(&mut w, span);
                w.end_obj();
            }
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

fn write_span(w: &mut JsonWriter, node: &SpanNode) {
    w.field_str("label", &node.label);
    w.field_u64("start_ns", node.start.as_nanos());
    w.field_u64("end_ns", node.end.as_nanos());
    w.begin_arr_field("children");
    for c in &node.children {
        w.begin_obj();
        write_span(w, c);
        w.end_obj();
    }
    w.end_arr();
}

/// Applies the normative precedence chain to one tail op (see
/// [`TailCause`]).
#[allow(clippy::too_many_arguments)]
fn classify(
    op: u64,
    shard: u32,
    op_epoch: u64,
    start: SimTime,
    end: SimTime,
    node_totals: &BTreeMap<u32, u64>,
    stages: &[StageExcess],
    migrations: &[(SimTime, u32, Option<u64>)],
    links: &BTreeMap<u64, u64>,
    txn_windows: &BTreeMap<u64, Vec<PhaseWindow>>,
    issue_occupancy: &BTreeMap<u64, u64>,
    shard_max: &BTreeMap<u32, u64>,
) -> TailCause {
    // 1. Migration signal inside the op's window — on any shard, since a
    //    pause stalls the issuing client's completion loop and delays
    //    sibling-shard in-flight ops across the window too. Prefer a
    //    shard-matched signal, then a signal carrying an epoch (the
    //    cutover), when picking the cause argument.
    let mut pause: Option<(bool, Option<u64>)> = None;
    for &(at, mshard, epoch) in migrations {
        if at < start || at > end {
            continue;
        }
        let matched = mshard == shard;
        let better = match pause {
            None => true,
            Some((m, e)) => (matched && !m) || (matched == m && e.is_none() && epoch.is_some()),
        };
        if better {
            pause = Some((matched, epoch));
        }
    }
    if let Some((_, epoch)) = pause {
        return TailCause::MigrationPause {
            epoch: epoch.unwrap_or(op_epoch),
        };
    }

    let windows = links.get(&op).and_then(|txn| txn_windows.get(txn));
    if let Some(windows) = windows {
        // 2. Parent txn backed off while the op was in flight.
        if windows
            .iter()
            .any(|w| w.phase == TXN_PHASE_BACKOFF && w.start <= end && w.end >= start)
        {
            return TailCause::TxnBackoff;
        }
        // 3. Op issued inside the parent txn's lock pipeline.
        if windows.iter().any(|w| {
            matches!(
                w.phase,
                TXN_PHASE_ACQUIRE | TXN_PHASE_UNDO | TXN_PHASE_ROLLBACK
            ) && w.start <= start
                && w.end >= start
        }) {
            return TailCause::LockWait;
        }
    }

    // 4. One replica dominated its siblings.
    if node_totals.len() >= 2 {
        let mut ranked: Vec<(u64, u32)> = node_totals.iter().map(|(&n, &ns)| (ns, n)).collect();
        ranked.sort_unstable_by_key(|&(ns, node)| (std::cmp::Reverse(ns), node));
        let (top_ns, top_node) = ranked[0];
        let (second_ns, _) = ranked[1];
        if second_ns > 0 && top_ns >= STRAGGLER_RATIO * second_ns {
            return TailCause::ReplicaStraggler { node: top_node };
        }
    }

    // 5. The largest positive excess is a queueing stage.
    if let Some(worst) = stages
        .iter()
        .filter(|s| s.excess_ns > 0)
        .max_by_key(|s| (s.excess_ns, std::cmp::Reverse(s.label.clone())))
    {
        if QUEUE_KINDS.contains(&worst.label.as_str()) {
            return TailCause::QueueWait;
        }
    }

    // 6. Issued into a full flow-control window.
    let max = shard_max.get(&shard).copied().unwrap_or(0);
    if max > 1 && issue_occupancy.get(&op).copied() == Some(max) {
        return TailCause::FlowControlStall;
    }

    TailCause::Residual
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simtrace::{Tracer, NO_NODE};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Emits a complete issue→ack op: issue at `start`, one
    /// `wqe_exec`-terminated hop per `(node, at)` pair, ack at `end`.
    fn emit_op(tr: &Tracer, op: u64, start: u64, hops: &[(u32, u64)], end: u64) {
        tr.emit(t(start), 0, op, TraceKind::OpIssue);
        for &(node, at) in hops {
            tr.emit(
                t(at),
                node,
                op,
                TraceKind::WqeExec {
                    qp: 0,
                    opcode: 0,
                    bytes: 64,
                },
            );
        }
        tr.emit(t(end), 0, op, TraceKind::OpAck);
    }

    fn base_population(tr: &Tracer, shard: u32, n: u64) {
        let base = crate::simaudit::op_id_base(shard, 0);
        for i in 0..n {
            let op = base | i;
            let start = 10_000 * i;
            emit_op(
                tr,
                op,
                start,
                &[(1, start + 400), (2, start + 800)],
                start + 1_000,
            );
        }
    }

    #[test]
    fn quantiles_are_exact_and_flat_population_has_no_tail() {
        let tr = Tracer::enabled(1 << 14);
        base_population(&tr, 0, 100);
        let p = TailProfile::from_events(&tr.events());
        assert_eq!(p.ops, 100);
        assert_eq!(p.median_e2e_ns, 1_000);
        assert_eq!(p.p99_ns, 1_000);
        // The median guard: when every op is identical, p99 == median and
        // nothing classifies as tail (even though e2e >= p99 everywhere).
        assert_eq!(p.tail_ops, 0);
        assert!(p.exemplars.is_empty());
        assert_eq!(p.causes.len(), CAUSE_LABELS.len());
    }

    #[test]
    fn ties_at_the_quantile_stay_in_the_tail() {
        // Deterministic sims quantise latencies, so the slowest ops often
        // tie at exactly the p99 order statistic; inclusion at the
        // quantile keeps them classifiable (a strict `>` rule would
        // report an empty tail here).
        let tr = Tracer::enabled(1 << 14);
        base_population(&tr, 0, 99);
        let base = crate::simaudit::op_id_base(0, 0);
        for (i, start) in [(990u64, 2_000_000u64), (991, 3_000_000)] {
            let op = base | i;
            emit_op(
                &tr,
                op,
                start,
                &[(1, start + 400), (2, start + 49_000)],
                start + 50_000,
            );
        }
        let p = TailProfile::from_events(&tr.events());
        assert_eq!(p.ops, 101);
        // Both slow ops share the p99 value exactly; both are tail ops.
        assert_eq!(p.p99_ns, 50_000);
        assert_eq!(p.tail_ops, 2);
        assert_eq!(p.exemplars.len(), 2);
        let total: u64 = p.causes.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 2);
        // Ties rank by ascending op id.
        assert_eq!(p.exemplars[0].op, base | 990);
        assert_eq!(p.exemplars[1].op, base | 991);
    }

    #[test]
    fn causes_sum_to_tail_ops_and_excess_tiles() {
        let tr = Tracer::enabled(1 << 14);
        base_population(&tr, 0, 99);
        // One op 50× slower than the rest: its wqe_exec hops blow out.
        let slow = crate::simaudit::op_id_base(0, 0) | 990;
        emit_op(
            &tr,
            slow,
            2_000_000,
            &[(1, 2_000_400), (2, 2_050_000)],
            2_050_200,
        );
        let p = TailProfile::from_events(&tr.events());
        assert_eq!(p.ops, 100);
        assert_eq!(p.tail_ops, 1);
        let total: u64 = p.causes.iter().map(|(_, n)| n).sum();
        assert_eq!(total, p.tail_ops);
        let ex = &p.exemplars[0];
        assert_eq!(ex.op, slow);
        assert_eq!(
            ex.excess_ns,
            ex.e2e.as_nanos() as i64 - p.median_e2e_ns as i64
        );
        let explained: i64 = ex.stages.iter().map(|s| s.excess_ns).sum();
        assert_eq!(explained + ex.residual_ns, ex.excess_ns);
        // Node 2 took ~49.6µs of the op's ~50.2µs: a straggler.
        assert_eq!(ex.cause, TailCause::ReplicaStraggler { node: 2 });
        assert!(ex.span.is_some());
    }

    #[test]
    fn migration_outranks_straggler() {
        let tr = Tracer::enabled(1 << 14);
        base_population(&tr, 3, 99);
        let slow = crate::simaudit::op_id_base(3, 0) | 990;
        emit_op(
            &tr,
            slow,
            2_000_000,
            &[(1, 2_000_400), (2, 2_050_000)],
            2_050_200,
        );
        tr.emit(
            t(2_010_000),
            NO_NODE,
            crate::simtrace::NO_OP,
            TraceKind::MigrateCutover { shard: 3, epoch: 7 },
        );
        let p = TailProfile::from_events(&tr.events());
        assert_eq!(p.exemplars[0].cause, TailCause::MigrationPause { epoch: 7 });
        assert_eq!(p.cause_count("migration_pause"), 1);
        assert_eq!(p.cause_count("replica_straggler"), 0);
    }

    #[test]
    fn sibling_shard_migration_still_reads_as_pause() {
        // The op lives on shard 0; the cutover fires on shard 9 while the
        // op is in flight. The client loop is shared, so the delay is
        // still migration-caused — and the cutover's epoch wins over the
        // op's own epoch (0).
        let tr = Tracer::enabled(1 << 14);
        base_population(&tr, 0, 99);
        let slow = crate::simaudit::op_id_base(0, 0) | 990;
        emit_op(
            &tr,
            slow,
            2_000_000,
            &[(1, 2_000_400), (2, 2_050_000)],
            2_050_200,
        );
        tr.emit(
            t(2_010_000),
            NO_NODE,
            crate::simtrace::NO_OP,
            TraceKind::MigrateCutover { shard: 9, epoch: 4 },
        );
        let p = TailProfile::from_events(&tr.events());
        assert_eq!(p.exemplars[0].cause, TailCause::MigrationPause { epoch: 4 });
        assert_eq!(p.cause_count("migration_pause"), 1);
    }

    #[test]
    fn queue_wait_when_wait_release_dominates() {
        let tr = Tracer::enabled(1 << 14);
        let base = crate::simaudit::op_id_base(0, 0);
        for i in 0..99u64 {
            let op = base | i;
            let start = 10_000 * i;
            tr.emit(t(start), 0, op, TraceKind::OpIssue);
            tr.emit(t(start + 500), 1, op, TraceKind::WaitRelease { qp: 0 });
            tr.emit(t(start + 1_000), 0, op, TraceKind::OpAck);
        }
        // Slow op: the wait_release stage alone blows out; only one node
        // participates so the straggler rule cannot fire.
        let slow = base | 990;
        tr.emit(t(2_000_000), 0, slow, TraceKind::OpIssue);
        tr.emit(t(2_090_000), 1, slow, TraceKind::WaitRelease { qp: 0 });
        tr.emit(t(2_090_500), 0, slow, TraceKind::OpAck);
        let p = TailProfile::from_events(&tr.events());
        assert_eq!(p.tail_ops, 1);
        assert_eq!(p.exemplars[0].cause, TailCause::QueueWait);
    }

    #[test]
    fn report_block_has_closed_key_set() {
        let tr = Tracer::enabled(1 << 14);
        base_population(&tr, 0, 99);
        let slow = crate::simaudit::op_id_base(0, 0) | 990;
        emit_op(
            &tr,
            slow,
            2_000_000,
            &[(1, 2_000_400), (2, 2_050_000)],
            2_050_200,
        );
        let p = TailProfile::from_events(&tr.events());
        let json = p.to_json();
        let v = crate::jsonw::parse(&json).expect("tail block parses");
        let obj = v.as_obj().unwrap();
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "ops",
                "tail_ops",
                "p99_ns",
                "median_e2e_ns",
                "causes",
                "exemplars"
            ]
        );
        let causes = v.get("causes").unwrap().as_obj().unwrap();
        let cause_keys: Vec<&str> = causes.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(cause_keys, CAUSE_LABELS);
        let artifact = p.to_artifact_json("test");
        assert!(crate::jsonw::parse(&artifact).is_ok());
        assert!(artifact.contains("\"span\""));
    }
}
