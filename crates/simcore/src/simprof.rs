//! Critical-path profiling over [`simtrace`](crate::simtrace) streams.
//!
//! `simtrace` answers "where did *this* op's latency go"; `simprof` answers
//! the same question across thousands of ops:
//!
//! * [`StageAttribution`] folds every per-op breakdown in a trace stream
//!   into per-stage latency histograms whose totals *tile* the aggregate
//!   end-to-end latency exactly — the sum of per-stage means equals the
//!   mean end-to-end latency over the same op set, by construction.
//! * [`StageAttribution::dominant_path`] reports the most common stage
//!   signature (the critical path almost every op takes) with its share.
//! * [`folded_stacks`] renders the stream in the flamegraph
//!   collapsed-stack text format (`scenario;nodeN;stage count`).
//! * [`CounterSampler`] samples [`MetricsRegistry`] values on a sim-time
//!   cadence and [`chrome_trace_with_counters`] interleaves the resulting
//!   Perfetto counter tracks (`"ph":"C"`) with the span stream, so one
//!   trace file shows *why* a latency knee happens, not just that it does.
//!
//! Everything here is deterministic: same events in, byte-identical text
//! out (BTreeMap iteration everywhere, integer nanosecond arithmetic).

use crate::jsonw::JsonWriter;
use crate::simtrace::{
    breakdown_from_sorted, ts_us, txn_mode_label, txn_phase_label, write_chrome_events,
    MetricsRegistry, TraceEvent, TraceKind, NO_OP,
};
use crate::stats::Histogram;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Synthetic Perfetto process id hosting all counter tracks (far above any
/// real node id, so it sorts to its own process group in the UI).
pub const COUNTER_PID: u64 = 9_999;

/// Synthetic Perfetto process id hosting the per-transaction phase tracks
/// (one `tid` per txn), directly below [`COUNTER_PID`] so transactions and
/// metrics group next to each other in the UI.
pub const TXN_PID: u64 = 9_998;

/// Aggregate latency of one stage kind across all ops in a stream.
#[derive(Debug, Clone, Default)]
pub struct StageAgg {
    /// How many stage instances were folded in.
    pub count: u64,
    /// Total nanoseconds spent in this stage, summed over all ops.
    pub total_ns: u64,
    /// Distribution of per-instance stage durations.
    pub hist: Histogram,
}

/// Per-stage latency attribution aggregated over every complete op in a
/// trace stream.
///
/// Stages are keyed by [`TraceKind::label`](crate::TraceKind::label) (node
/// suffixes stripped), so "wire time" on replica 1 and replica 2 fold into
/// one `link_deliver` row. Because each op's stages tile its own
/// `[issue, ack]` interval exactly, the stage totals tile the aggregate:
///
/// ```text
/// sum over stages of total_ns  ==  sum over ops of e2e_ns        (exact)
/// sum over stages of (total_ns / ops)  ==  mean e2e              (±1 ns)
/// ```
#[derive(Debug, Clone, Default)]
pub struct StageAttribution {
    /// Complete ops folded in.
    pub ops: u64,
    /// Ops without a complete `[OpIssue, OpAck]` window in the stream
    /// (never issued, still in flight, or decapitated), excluded from the
    /// fold so the tiling invariant holds over real host-observed latency.
    pub truncated: u64,
    /// End-to-end latency distribution over the folded ops.
    pub e2e: Histogram,
    /// Exact sum of end-to-end nanoseconds over the folded ops.
    pub e2e_total_ns: u64,
    /// Per-stage aggregates, stage-label-ordered.
    pub stages: BTreeMap<String, StageAgg>,
    /// Stage-signature → op count (signature = stage labels joined by `;`).
    pub paths: BTreeMap<String, u64>,
}

impl StageAttribution {
    /// Folds every op with a complete `[OpIssue, OpAck]` window in
    /// `events`. Each op is trimmed to that window first (see
    /// [`issue_ack_window`]); ops lacking one — never issued inside the
    /// captured stream, still in flight at capture end, or decapitated —
    /// are counted in `truncated` and excluded so the tiling invariant
    /// holds over host-observed latency.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut att = StageAttribution::default();
        for (op, evs) in events_by_op(events) {
            let Some(win) = issue_ack_window(&evs) else {
                att.truncated += 1;
                continue;
            };
            let Some(bd) = breakdown_from_sorted(op, win, 0) else {
                att.truncated += 1;
                continue;
            };
            att.ops += 1;
            let e2e = bd.total();
            att.e2e.record(e2e);
            att.e2e_total_ns += e2e.as_nanos();
            let mut sig = String::new();
            for s in &bd.stages {
                let label = stage_kind(&s.label);
                if !sig.is_empty() {
                    sig.push(';');
                }
                sig.push_str(label);
                let agg = att.stages.entry(label.to_string()).or_default();
                agg.count += 1;
                agg.total_ns += s.duration().as_nanos();
                agg.hist.record(s.duration());
            }
            *att.paths.entry(sig).or_insert(0) += 1;
        }
        att
    }

    /// Mean end-to-end latency in nanoseconds over the folded ops.
    pub fn mean_e2e_ns(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.e2e_total_ns as f64 / self.ops as f64
    }

    /// Sum of per-stage mean contributions in nanoseconds: each stage's
    /// total divided by the *op* count (not the stage count), so stages
    /// appearing in only some ops are weighted by their true share. Equals
    /// [`StageAttribution::mean_e2e_ns`] exactly (same numerator, same
    /// denominator) — the aggregate tiling invariant.
    pub fn stage_mean_sum_ns(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.stages
            .values()
            .map(|a| a.total_ns as f64 / self.ops as f64)
            .sum()
    }

    /// The most frequent stage signature and the fraction of ops that took
    /// it, or `None` if nothing was folded. Ties break to the
    /// lexicographically-first signature (deterministic).
    pub fn dominant_path(&self) -> Option<(&str, f64)> {
        let (sig, &n) = self.paths.iter().max_by(|a, b| {
            a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)) // prefer lexicographically smaller
        })?;
        Some((sig.as_str(), n as f64 / self.ops.max(1) as f64))
    }

    /// Writes the attribution as fields of an already-open JSON object:
    /// op counts, the e2e summary, the per-stage table (count, total,
    /// mean, p99, share-of-e2e) and the dominant path.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("ops", self.ops);
        w.field_u64("truncated", self.truncated);
        w.field_u64("e2e_total_ns", self.e2e_total_ns);
        w.field_f64("mean_e2e_ns", self.mean_e2e_ns());
        w.field_f64("stage_mean_sum_ns", self.stage_mean_sum_ns());
        let s = self.e2e.summary();
        w.begin_obj_field("e2e");
        w.field_u64("count", s.count);
        w.field_u64("mean_ns", s.mean.as_nanos());
        w.field_u64("p50_ns", s.p50.as_nanos());
        w.field_u64("p99_ns", s.p99.as_nanos());
        w.field_u64("max_ns", s.max.as_nanos());
        w.end_obj();
        w.begin_obj_field("stages");
        for (label, agg) in &self.stages {
            w.begin_obj_field(label);
            w.field_u64("count", agg.count);
            w.field_u64("total_ns", agg.total_ns);
            w.field_f64("mean_ns", agg.total_ns as f64 / agg.count.max(1) as f64);
            w.field_u64("p99_ns", agg.hist.p99().as_nanos());
            w.field_f64(
                "share",
                agg.total_ns as f64 / self.e2e_total_ns.max(1) as f64,
            );
            w.end_obj();
        }
        w.end_obj();
        if let Some((sig, share)) = self.dominant_path() {
            w.begin_obj_field("dominant_path");
            w.field_str("signature", sig);
            w.field_f64("share", share);
            w.end_obj();
        }
    }

    /// The attribution as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        self.write_fields(&mut w);
        w.end_obj();
        w.finish()
    }
}

/// Strips the `@nNODE` suffix off a stage label (`"wait_release@n2"` →
/// `"wait_release"`).
pub(crate) fn stage_kind(label: &str) -> &str {
    label.rsplit_once("@n").map_or(label, |(k, _)| k)
}

/// Groups a stream by op in one pass, each op's events time-sorted
/// (stable, so ties keep emission order — same contract as
/// `simtrace::events_for`). Bulk folds over every op are O(n log n) this
/// way instead of O(ops × n) re-filtering.
pub(crate) fn events_by_op(events: &[TraceEvent]) -> BTreeMap<u64, Vec<TraceEvent>> {
    let mut map: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.op != NO_OP {
            map.entry(e.op).or_default().push(*e);
        }
    }
    for evs in map.values_mut() {
        evs.sort_by_key(|e| e.at);
    }
    map
}

/// Trims a time-sorted per-op event slice to the host-observed window:
/// first `OpIssue` through last `OpAck`. HyperLoop preposts RECV WQEs
/// whose `wr_id` names a *future* generation, so an op's stream can open
/// with descriptor-fetch events emitted long before the client issues the
/// op; those are setup cost, not op latency, and are cut here. Returns
/// `None` when the stream never captured the op's issue or its ack.
pub(crate) fn issue_ack_window(evs: &[TraceEvent]) -> Option<&[TraceEvent]> {
    let first = evs
        .iter()
        .position(|e| matches!(e.kind, TraceKind::OpIssue))?;
    let last = evs
        .iter()
        .rposition(|e| matches!(e.kind, TraceKind::OpAck))?;
    if last <= first {
        return None;
    }
    Some(&evs[first..=last])
}

/// Renders a trace stream in the flamegraph collapsed-stack text format:
/// one `root;nodeN;stage total_ns` line per (node, stage) pair, summed
/// over all complete ops and sorted lexicographically. Feed straight into
/// `flamegraph.pl` / speedscope; byte-identical for same-seed runs.
pub fn folded_stacks(events: &[TraceEvent], root: &str) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (op, evs) in events_by_op(events) {
        let Some(win) = issue_ack_window(&evs) else {
            continue;
        };
        let Some(bd) = breakdown_from_sorted(op, win, 0) else {
            continue;
        };
        for (stage, ev) in bd.stages.iter().zip(win.iter().skip(1)) {
            let key = format!("{root};node{};{}", ev.node, stage_kind(&stage.label));
            *folded.entry(key).or_insert(0) += stage.duration().as_nanos();
        }
    }
    let mut out = String::new();
    for (k, v) in &folded {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// One sampled counter-track point.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Sample sim-time.
    pub at: SimTime,
    /// Track name (the registry metric name).
    pub track: String,
    /// Sampled value.
    pub value: f64,
}

/// Samples [`MetricsRegistry`] counters and gauges on a sim-time cadence,
/// recording only *changes* so long flat stretches cost nothing.
///
/// Call [`CounterSampler::sample`] with a freshly-exported registry at a
/// fixed cadence from the bench loop; every metric whose name starts with
/// one of the configured prefixes (or every metric, with no prefixes)
/// becomes a Perfetto counter track via [`chrome_trace_with_counters`].
#[derive(Debug, Clone, Default)]
pub struct CounterSampler {
    prefixes: Vec<String>,
    last: BTreeMap<String, f64>,
    samples: Vec<CounterSample>,
}

impl CounterSampler {
    /// A sampler tracking every metric in the registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sampler tracking only metrics whose name starts with one of the
    /// given prefixes (e.g. `["bench.shards.", "cluster.sched."]`).
    pub fn with_prefixes(prefixes: &[&str]) -> Self {
        CounterSampler {
            prefixes: prefixes.iter().map(|p| p.to_string()).collect(),
            ..CounterSampler::default()
        }
    }

    fn tracked(&self, name: &str) -> bool {
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| name.starts_with(p))
    }

    /// Records one cadence tick: every tracked counter/gauge whose value
    /// changed since the previous tick becomes a sample at `at`.
    pub fn sample(&mut self, at: SimTime, reg: &MetricsRegistry) {
        for (name, v) in reg.counters() {
            self.observe(at, name, v as f64);
        }
        for (name, v) in reg.gauges() {
            self.observe(at, name, v);
        }
    }

    fn observe(&mut self, at: SimTime, name: &str, value: f64) {
        if !self.tracked(name) {
            return;
        }
        if self.last.get(name) == Some(&value) {
            return;
        }
        self.last.insert(name.to_string(), value);
        self.samples.push(CounterSample {
            at,
            track: name.to_string(),
            value,
        });
    }

    /// The recorded samples, in recording order (time-ascending).
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Exports a trace stream *plus* counter tracks as one Chrome trace-event
/// JSON document: the span/instant stream of
/// [`chrome_trace_json`](crate::simtrace::chrome_trace_json), followed by
/// `"ph":"C"` counter events under the dedicated [`COUNTER_PID`] process.
/// Fully deterministic — byte-identical for identical inputs.
pub fn chrome_trace_with_counters(events: &[TraceEvent], samples: &[CounterSample]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.begin_arr_field("traceEvents");
    write_chrome_events(&mut w, events);
    if !samples.is_empty() {
        w.begin_obj();
        w.field_str("ph", "M");
        w.field_u64("pid", COUNTER_PID);
        w.field_str("name", "process_name");
        w.begin_obj_field("args");
        w.field_str("name", "metrics");
        w.end_obj();
        w.end_obj();
    }
    for s in samples {
        w.begin_obj();
        w.field_str("ph", "C");
        w.field_str("name", &s.track);
        w.field_u64("pid", COUNTER_PID);
        w.field_f64("ts", ts_us(s.at));
        w.begin_obj_field("args");
        w.field_f64("value", s.value);
        w.end_obj();
        w.end_obj();
    }
    w.end_arr();
    w.field_str("displayTimeUnit", "ns");
    w.end_obj();
    w.finish()
}

/// Convenience: samples a registry-exporting closure once and returns the
/// delta-only samples against `sampler`'s state. (Most callers use
/// [`CounterSampler::sample`] directly; this exists for one-shot exports.)
pub fn sample_once(
    sampler: &mut CounterSampler,
    at: SimTime,
    export: impl FnOnce(&mut MetricsRegistry),
) {
    let mut reg = MetricsRegistry::new();
    export(&mut reg);
    sampler.sample(at, &reg);
}

/// Aggregates one histogram per op over an arbitrary projection of the
/// breakdown — the building block behind scenario-level summaries that
/// need a distribution of a *derived* per-op quantity (e.g. "time before
/// the first WAIT release").
pub fn per_op_histogram(
    events: &[TraceEvent],
    mut f: impl FnMut(&crate::simtrace::OpBreakdown) -> Option<SimDuration>,
) -> Histogram {
    let mut h = Histogram::new();
    for (op, evs) in events_by_op(events) {
        if let Some(win) = issue_ack_window(&evs) {
            if let Some(bd) = breakdown_from_sorted(op, win, 0) {
                if let Some(d) = f(&bd) {
                    h.record(d);
                }
            }
        }
    }
    h
}

/// One transaction's phase windows, gathered from its
/// [`TraceKind::TxnPhaseBegin`]/[`TraceKind::TxnPhaseEnd`] events.
#[derive(Debug, Clone)]
pub(crate) struct TxnPhaseStream {
    pub(crate) mode: u8,
    /// `(at, is_begin, phase)` in time order (stable, emission-tie order).
    pub(crate) evs: Vec<(SimTime, bool, u8)>,
}

/// Groups a stream's txn phase events by txn id, each txn's events
/// time-sorted (stable). The txn id comes from the event payload, never
/// from [`TraceEvent::op`], so op-id reuse can't fold foreign events in.
pub(crate) fn txn_phase_streams(events: &[TraceEvent]) -> BTreeMap<u64, TxnPhaseStream> {
    let mut map: BTreeMap<u64, TxnPhaseStream> = BTreeMap::new();
    for e in events {
        let (txn, is_begin, mode, phase) = match e.kind {
            TraceKind::TxnPhaseBegin { txn, mode, phase } => (txn, true, mode, phase),
            TraceKind::TxnPhaseEnd { txn, mode, phase } => (txn, false, mode, phase),
            _ => continue,
        };
        map.entry(txn)
            .or_insert_with(|| TxnPhaseStream {
                mode,
                evs: Vec::new(),
            })
            .evs
            .push((e.at, is_begin, phase));
    }
    for s in map.values_mut() {
        s.evs.sort_by_key(|&(at, _, _)| at);
    }
    map
}

/// Parent-txn links for txn-issued ops: op id → txn id, gathered from
/// [`TraceKind::TxnOp`] tag events. Lets attribution split a stream into
/// txn-issued ops (lock/validate gCAS, apply gWRITE) and bare ops.
pub fn txn_op_links(events: &[TraceEvent]) -> BTreeMap<u64, u64> {
    let mut map = BTreeMap::new();
    for e in events {
        if let TraceKind::TxnOp { txn } = e.kind {
            map.insert(e.op, txn);
        }
    }
    map
}

/// Per-phase latency attribution aggregated over every complete
/// transaction in a trace stream — the txn-level sibling of
/// [`StageAttribution`].
///
/// Folds [`TraceKind::TxnPhaseBegin`]/[`TraceKind::TxnPhaseEnd`] events.
/// Each txn's consecutive events bound consecutive windows that tile its
/// `[first begin, last end]` lifetime exactly (phase changes emit End and
/// Begin at the same instant), so the same tiling identity as
/// [`StageAttribution`] holds:
///
/// ```text
/// sum over phases of total_ns  ==  sum over txns of e2e_ns        (exact)
/// sum over phases of (total_ns / txns)  ==  mean commit latency   (±1 ns)
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxnAttribution {
    /// Complete transactions folded in.
    pub txns: u64,
    /// Transactions without a well-formed `[Begin … End]` stream (still in
    /// flight at capture end, or span evicted by ring overflow), excluded
    /// from the fold so the tiling invariant holds.
    pub truncated: u64,
    /// Distinct ops carrying a [`TraceKind::TxnOp`] parent-txn tag in the
    /// stream (txn-issued gCAS/gWRITE traffic, as opposed to bare ops).
    pub linked_ops: u64,
    /// End-to-end (begin→outcome) latency distribution over folded txns.
    pub e2e: Histogram,
    /// Exact sum of end-to-end nanoseconds over the folded txns.
    pub e2e_total_ns: u64,
    /// Per-phase aggregates, phase-label-ordered.
    pub phases: BTreeMap<String, StageAgg>,
    /// Phase-signature → txn count (signature = Begin phases joined `;`).
    pub paths: BTreeMap<String, u64>,
}

impl TxnAttribution {
    /// Folds every transaction with a well-formed phase stream in
    /// `events`: at least one Begin/End pair, opening on a Begin and
    /// closing on an End. Malformed streams count as `truncated` and are
    /// excluded.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut att = TxnAttribution {
            linked_ops: txn_op_links(events).len() as u64,
            ..TxnAttribution::default()
        };
        for (_txn, stream) in txn_phase_streams(events) {
            let evs = &stream.evs;
            let well_formed = evs.len() >= 2 && evs.first().unwrap().1 && !evs.last().unwrap().1;
            if !well_formed {
                att.truncated += 1;
                continue;
            }
            att.txns += 1;
            let e2e = evs.last().unwrap().0.since(evs.first().unwrap().0);
            att.e2e.record(e2e);
            att.e2e_total_ns += e2e.as_nanos();
            let mut sig = String::new();
            // Every adjacent event pair is one window; windows tile the
            // txn lifetime by construction. A Begin-opened window is time
            // spent *in* that phase; an End-opened window is the gap to
            // the next phase, zero-length under the emission contract and
            // attributed to the phase just ended if it ever isn't.
            for w in evs.windows(2) {
                let (at0, is_begin, phase) = w[0];
                let dur = w[1].0.since(at0);
                let label = txn_phase_label(phase);
                let agg = att.phases.entry(label.to_string()).or_default();
                agg.total_ns += dur.as_nanos();
                if is_begin {
                    agg.count += 1;
                    agg.hist.record(dur);
                    if !sig.is_empty() {
                        sig.push(';');
                    }
                    sig.push_str(label);
                }
            }
            *att.paths.entry(sig).or_insert(0) += 1;
        }
        att
    }

    /// Mean commit latency (begin→outcome) in ns over the folded txns.
    pub fn mean_e2e_ns(&self) -> f64 {
        if self.txns == 0 {
            return 0.0;
        }
        self.e2e_total_ns as f64 / self.txns as f64
    }

    /// Sum of per-phase mean contributions in ns: each phase's total over
    /// the *txn* count. Equals [`TxnAttribution::mean_e2e_ns`] exactly
    /// (same numerator, same denominator) — the tiling invariant.
    pub fn phase_mean_sum_ns(&self) -> f64 {
        if self.txns == 0 {
            return 0.0;
        }
        self.phases
            .values()
            .map(|a| a.total_ns as f64 / self.txns as f64)
            .sum()
    }

    /// The most frequent phase signature and the fraction of txns that
    /// took it. Ties break to the lexicographically-first signature.
    pub fn dominant_path(&self) -> Option<(&str, f64)> {
        let (sig, &n) = self
            .paths
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))?;
        Some((sig.as_str(), n as f64 / self.txns.max(1) as f64))
    }

    /// Writes the breakdown as fields of an already-open JSON object,
    /// mirroring [`StageAttribution::write_fields`].
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("txns", self.txns);
        w.field_u64("truncated", self.truncated);
        w.field_u64("linked_ops", self.linked_ops);
        w.field_u64("e2e_total_ns", self.e2e_total_ns);
        w.field_f64("mean_e2e_ns", self.mean_e2e_ns());
        w.field_f64("phase_mean_sum_ns", self.phase_mean_sum_ns());
        let s = self.e2e.summary();
        w.begin_obj_field("e2e");
        w.field_u64("count", s.count);
        w.field_u64("mean_ns", s.mean.as_nanos());
        w.field_u64("p50_ns", s.p50.as_nanos());
        w.field_u64("p99_ns", s.p99.as_nanos());
        w.field_u64("max_ns", s.max.as_nanos());
        w.end_obj();
        w.begin_obj_field("phases");
        for (label, agg) in &self.phases {
            w.begin_obj_field(label);
            w.field_u64("count", agg.count);
            w.field_u64("total_ns", agg.total_ns);
            w.field_f64("mean_ns", agg.total_ns as f64 / agg.count.max(1) as f64);
            w.field_u64("p99_ns", agg.hist.p99().as_nanos());
            w.field_f64(
                "share",
                agg.total_ns as f64 / self.e2e_total_ns.max(1) as f64,
            );
            w.end_obj();
        }
        w.end_obj();
        if let Some((sig, share)) = self.dominant_path() {
            w.begin_obj_field("dominant_path");
            w.field_str("signature", sig);
            w.field_f64("share", share);
            w.end_obj();
        }
    }

    /// The breakdown as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        self.write_fields(&mut w);
        w.end_obj();
        w.finish()
    }
}

/// Renders a stream's txn phase windows in the flamegraph collapsed-stack
/// format, one `txn;<mode>;<phase> total_ns` line per (mode, phase) pair,
/// summed over all well-formed txns and sorted. Byte-identical for
/// same-seed runs.
pub fn txn_folded_stacks(events: &[TraceEvent]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (_txn, stream) in txn_phase_streams(events) {
        let evs = &stream.evs;
        if evs.len() < 2 || !evs.first().unwrap().1 || evs.last().unwrap().1 {
            continue;
        }
        for w in evs.windows(2) {
            let (at0, _, phase) = w[0];
            let dur = w[1].0.since(at0).as_nanos();
            let key = format!(
                "txn;{};{}",
                txn_mode_label(stream.mode),
                txn_phase_label(phase)
            );
            *folded.entry(key).or_insert(0) += dur;
        }
    }
    let mut out = String::new();
    for (k, v) in &folded {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// Exports a trace stream as Chrome trace-event JSON with first-class
/// transaction tracks: the op span/instant stream of
/// [`chrome_trace_json`](crate::simtrace::chrome_trace_json) (txn phase
/// events excluded — they get spans, not instants), one track per txn
/// (`pid` = [`TXN_PID`], `tid` = txn id, one `"X"` span per phase
/// window), and the sampled counter tracks under [`COUNTER_PID`]. Fully
/// deterministic — byte-identical for identical inputs.
pub fn txn_chrome_trace_with_counters(events: &[TraceEvent], samples: &[CounterSample]) -> String {
    let is_txn_phase = |e: &TraceEvent| {
        matches!(
            e.kind,
            TraceKind::TxnPhaseBegin { .. } | TraceKind::TxnPhaseEnd { .. }
        )
    };
    let ops: Vec<TraceEvent> = events
        .iter()
        .filter(|e| !is_txn_phase(e))
        .copied()
        .collect();
    let streams = txn_phase_streams(events);

    let mut w = JsonWriter::new();
    w.begin_obj();
    w.begin_arr_field("traceEvents");
    write_chrome_events(&mut w, &ops);
    if !streams.is_empty() {
        w.begin_obj();
        w.field_str("ph", "M");
        w.field_u64("pid", TXN_PID);
        w.field_str("name", "process_name");
        w.begin_obj_field("args");
        w.field_str("name", "transactions");
        w.end_obj();
        w.end_obj();
    }
    for (txn, stream) in &streams {
        for win in stream.evs.windows(2) {
            let (at0, is_begin, phase) = win[0];
            if !is_begin {
                continue; // End→Begin gaps are zero-length; skip.
            }
            w.begin_obj();
            w.field_str("ph", "X");
            w.field_str("name", txn_phase_label(phase));
            w.field_u64("pid", TXN_PID);
            w.field_u64("tid", *txn);
            w.field_f64("ts", ts_us(at0));
            w.field_f64("dur", ts_us(win[1].0) - ts_us(at0));
            w.begin_obj_field("args");
            w.field_u64("txn", *txn);
            w.field_str("mode", txn_mode_label(stream.mode));
            w.end_obj();
            w.end_obj();
        }
    }
    if !samples.is_empty() {
        w.begin_obj();
        w.field_str("ph", "M");
        w.field_u64("pid", COUNTER_PID);
        w.field_str("name", "process_name");
        w.begin_obj_field("args");
        w.field_str("name", "metrics");
        w.end_obj();
        w.end_obj();
    }
    for s in samples {
        w.begin_obj();
        w.field_str("ph", "C");
        w.field_str("name", &s.track);
        w.field_u64("pid", COUNTER_PID);
        w.field_f64("ts", ts_us(s.at));
        w.begin_obj_field("args");
        w.field_f64("value", s.value);
        w.end_obj();
        w.end_obj();
    }
    w.end_arr();
    w.field_str("displayTimeUnit", "ns");
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simtrace::TraceKind;

    fn ev(ns: u64, node: u32, op: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            node,
            op,
            kind,
        }
    }

    /// Two ops with identical shapes and one op with an extra DMA stage.
    fn stream() -> Vec<TraceEvent> {
        let mut evs = Vec::new();
        for (base, op) in [(0u64, 1u64), (1000, 2)] {
            evs.push(ev(base, 0, op, TraceKind::OpIssue));
            evs.push(ev(base + 100, 0, op, TraceKind::MetaSend { replica: 0 }));
            evs.push(ev(base + 300, 1, op, TraceKind::WaitRelease { qp: 0 }));
            evs.push(ev(base + 600, 0, op, TraceKind::OpAck));
        }
        evs.push(ev(2000, 0, 3, TraceKind::OpIssue));
        evs.push(ev(2100, 0, 3, TraceKind::MetaSend { replica: 0 }));
        evs.push(ev(2200, 1, 3, TraceKind::Dma { bytes: 64 }));
        evs.push(ev(2300, 1, 3, TraceKind::WaitRelease { qp: 0 }));
        evs.push(ev(2800, 0, 3, TraceKind::OpAck));
        evs
    }

    #[test]
    fn attribution_tiles_aggregate_latency_exactly() {
        let att = StageAttribution::from_events(&stream());
        assert_eq!(att.ops, 3);
        assert_eq!(att.truncated, 0);
        // e2e: 600 + 600 + 800
        assert_eq!(att.e2e_total_ns, 2000);
        // Stage totals tile the e2e total exactly.
        let stage_total: u64 = att.stages.values().map(|a| a.total_ns).sum();
        assert_eq!(stage_total, att.e2e_total_ns);
        // And the mean identity holds to the ns.
        assert!((att.stage_mean_sum_ns() - att.mean_e2e_ns()).abs() <= 1.0);
        // The odd op's extra stage is weighted by its true share.
        assert_eq!(att.stages["dma"].count, 1);
        assert_eq!(att.stages["meta_send"].count, 3);
    }

    #[test]
    fn dominant_path_is_the_common_signature() {
        let att = StageAttribution::from_events(&stream());
        let (sig, share) = att.dominant_path().expect("paths recorded");
        assert_eq!(sig, "meta_send;wait_release;op_ack");
        assert!((share - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(att.paths.len(), 2);
    }

    #[test]
    fn truncated_ops_are_excluded_not_mis_tiled() {
        // Op 9 never captured its issue: it must be counted out, leaving
        // the tiling invariant intact.
        let mut evs = stream();
        evs.push(ev(5000, 1, 9, TraceKind::Dma { bytes: 8 }));
        evs.push(ev(5100, 0, 9, TraceKind::OpAck));
        // Op 11 issued but never acked (in flight at capture end).
        evs.push(ev(6000, 0, 11, TraceKind::OpIssue));
        evs.push(ev(6100, 1, 11, TraceKind::Dma { bytes: 8 }));
        let att = StageAttribution::from_events(&evs);
        assert_eq!(att.ops, 3);
        assert_eq!(att.truncated, 2);
        let stage_total: u64 = att.stages.values().map(|a| a.total_ns).sum();
        assert_eq!(stage_total, att.e2e_total_ns);
    }

    #[test]
    fn pre_issue_prepost_events_are_trimmed_not_mistaken_for_truncation() {
        // HyperLoop preposts RECV WQEs carrying a *future* generation, so
        // an op's stream can open with a descriptor fetch long before its
        // issue. The fold must anchor at OpIssue, not at the prepost.
        let mut evs = vec![
            ev(10, 1, 5, TraceKind::WqeFetch { qp: 3, opcode: 0 }),
            ev(20, 2, 5, TraceKind::WqeFetch { qp: 3, opcode: 0 }),
        ];
        evs.push(ev(1000, 0, 5, TraceKind::OpIssue));
        evs.push(ev(1100, 0, 5, TraceKind::MetaSend { replica: 0 }));
        evs.push(ev(1300, 1, 5, TraceKind::WaitRelease { qp: 0 }));
        evs.push(ev(1600, 0, 5, TraceKind::OpAck));
        let att = StageAttribution::from_events(&evs);
        assert_eq!(att.ops, 1);
        assert_eq!(att.truncated, 0);
        // e2e measures issue→ack, not prepost→ack.
        assert_eq!(att.e2e_total_ns, 600);
        assert!(!att.stages.contains_key("wqe_fetch"));
        let (sig, _) = att.dominant_path().expect("path recorded");
        assert_eq!(sig, "meta_send;wait_release;op_ack");
    }

    #[test]
    fn attribution_json_is_deterministic_and_complete() {
        let att = StageAttribution::from_events(&stream());
        let a = att.to_json();
        let b = StageAttribution::from_events(&stream()).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"ops\":3"));
        assert!(a.contains("\"stages\":{"));
        assert!(a.contains("\"dominant_path\":{"));
        assert!(a.contains("\"signature\":\"meta_send;wait_release;op_ack\""));
    }

    #[test]
    fn folded_stacks_are_sorted_and_deterministic() {
        let evs = stream();
        let a = folded_stacks(&evs, "unit");
        assert_eq!(a, folded_stacks(&evs, "unit"));
        let lines: Vec<&str> = a.lines().collect();
        assert!(!lines.is_empty());
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "collapsed stacks must be sorted");
        // meta_send on node 0: 100ns × 3 ops.
        assert!(a.contains("unit;node0;meta_send 300\n"), "got:\n{a}");
    }

    #[test]
    fn sampler_records_only_changes() {
        let mut reg = MetricsRegistry::new();
        reg.counter_set("x.acked", 1);
        reg.set_gauge("x.pen", 0.0);
        let mut s = CounterSampler::new();
        s.sample(SimTime::from_nanos(10), &reg);
        assert_eq!(s.len(), 2);
        // Nothing changed: no new samples.
        s.sample(SimTime::from_nanos(20), &reg);
        assert_eq!(s.len(), 2);
        reg.counter_set("x.acked", 5);
        s.sample(SimTime::from_nanos(30), &reg);
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples()[2].track, "x.acked");
        assert_eq!(s.samples()[2].value, 5.0);
    }

    #[test]
    fn sampler_prefix_filter_applies() {
        let mut reg = MetricsRegistry::new();
        reg.counter_set("keep.a", 1);
        reg.counter_set("drop.b", 2);
        let mut s = CounterSampler::with_prefixes(&["keep."]);
        s.sample(SimTime::ZERO, &reg);
        assert_eq!(s.len(), 1);
        assert_eq!(s.samples()[0].track, "keep.a");
    }

    #[test]
    fn counter_trace_is_valid_and_deterministic() {
        let evs = stream();
        let mut reg = MetricsRegistry::new();
        reg.counter_set("bench.acked", 2);
        let mut s = CounterSampler::new();
        s.sample(SimTime::from_nanos(500), &reg);
        reg.counter_set("bench.acked", 3);
        s.sample(SimTime::from_nanos(1500), &reg);

        let a = chrome_trace_with_counters(&evs, s.samples());
        let b = chrome_trace_with_counters(&evs, s.samples());
        assert_eq!(a, b);
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"name\":\"metrics\""));
        assert!(a.contains("\"name\":\"bench.acked\""));
        // Without samples the output degrades to the plain span stream.
        let plain = chrome_trace_with_counters(&evs, &[]);
        assert_eq!(plain, crate::simtrace::chrome_trace_json(&evs));
    }

    #[test]
    fn per_op_histogram_projects_breakdowns() {
        let h = per_op_histogram(&stream(), |bd| Some(bd.total()));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), SimDuration::from_nanos(800));
    }

    fn txn_ev(ns: u64, txn: u64, begin: bool, phase: u8) -> TraceEvent {
        let kind = if begin {
            TraceKind::TxnPhaseBegin {
                txn,
                mode: 1,
                phase,
            }
        } else {
            TraceKind::TxnPhaseEnd {
                txn,
                mode: 1,
                phase,
            }
        };
        ev(
            ns,
            crate::simtrace::NO_NODE,
            crate::simtrace::txn_op_id(txn),
            kind,
        )
    }

    /// Two optimistic txns: one clean acquire→validate→apply→release, one
    /// with a backoff round in the middle. Phases are contiguous (End and
    /// next Begin share a timestamp), like the emitter guarantees.
    fn txn_stream() -> Vec<TraceEvent> {
        use crate::simtrace::*;
        let mut evs = Vec::new();
        // txn 0: 100ns acquire, 50ns validate, 30ns apply, 20ns release.
        for (t0, t1, p) in [
            (0u64, 100u64, TXN_PHASE_ACQUIRE),
            (100, 150, TXN_PHASE_VALIDATE),
            (150, 180, TXN_PHASE_APPLY),
            (180, 200, TXN_PHASE_RELEASE),
        ] {
            evs.push(txn_ev(t0, 0, true, p));
            evs.push(txn_ev(t1, 0, false, p));
        }
        // txn 1: acquire 40ns, backoff 60ns, acquire 40ns, release 10ns.
        for (t0, t1, p) in [
            (1000u64, 1040u64, TXN_PHASE_ACQUIRE),
            (1040, 1100, TXN_PHASE_BACKOFF),
            (1100, 1140, TXN_PHASE_ACQUIRE),
            (1140, 1150, TXN_PHASE_RELEASE),
        ] {
            evs.push(txn_ev(t0, 1, true, p));
            evs.push(txn_ev(t1, 1, false, p));
        }
        // A txn-issued op tag plus an op event, to exercise the link map.
        evs.push(ev(5, 0, 77, TraceKind::OpIssue));
        evs.push(ev(6, 0, 77, TraceKind::TxnOp { txn: 0 }));
        evs.push(ev(90, 0, 77, TraceKind::OpAck));
        evs
    }

    #[test]
    fn txn_attribution_tiles_commit_latency_exactly() {
        let att = TxnAttribution::from_events(&txn_stream());
        assert_eq!(att.txns, 2);
        assert_eq!(att.truncated, 0);
        assert_eq!(att.linked_ops, 1);
        // e2e: 200 + 150.
        assert_eq!(att.e2e_total_ns, 350);
        let phase_total: u64 = att.phases.values().map(|a| a.total_ns).sum();
        assert_eq!(phase_total, att.e2e_total_ns);
        assert!((att.phase_mean_sum_ns() - att.mean_e2e_ns()).abs() <= 1.0);
        // txn 1's two acquire rounds fold into one phase row.
        assert_eq!(att.phases["acquire"].count, 3);
        assert_eq!(att.phases["acquire"].total_ns, 180);
        assert_eq!(att.phases["backoff"].total_ns, 60);
        let (sig, share) = att.dominant_path().unwrap();
        assert_eq!(sig, "acquire;backoff;acquire;release");
        assert!((share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn txn_attribution_excludes_in_flight_txns() {
        let mut evs = txn_stream();
        // txn 9 still in a phase at capture end: Begin without End.
        evs.push(txn_ev(9000, 9, true, crate::simtrace::TXN_PHASE_ACQUIRE));
        let att = TxnAttribution::from_events(&evs);
        assert_eq!(att.txns, 2);
        assert_eq!(att.truncated, 1);
        let phase_total: u64 = att.phases.values().map(|a| a.total_ns).sum();
        assert_eq!(phase_total, att.e2e_total_ns);
    }

    #[test]
    fn txn_folded_stacks_are_rooted_and_sorted() {
        let evs = txn_stream();
        let a = txn_folded_stacks(&evs);
        assert_eq!(a, txn_folded_stacks(&evs));
        let lines: Vec<&str> = a.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert!(lines.iter().all(|l| l.starts_with("txn;optimistic;")));
        assert!(a.contains("txn;optimistic;acquire 180\n"), "got:\n{a}");
        assert!(a.contains("txn;optimistic;backoff 60\n"));
    }

    #[test]
    fn txn_chrome_trace_has_per_txn_tracks_and_is_deterministic() {
        let evs = txn_stream();
        let mut reg = MetricsRegistry::new();
        reg.counter_set("txn.contention.conflicts", 4);
        let mut s = CounterSampler::with_prefixes(&["txn."]);
        s.sample(SimTime::from_nanos(500), &reg);

        let a = txn_chrome_trace_with_counters(&evs, s.samples());
        assert_eq!(a, txn_chrome_trace_with_counters(&evs, s.samples()));
        assert!(a.contains("\"name\":\"transactions\""));
        assert!(a.contains(&format!("\"pid\":{TXN_PID}")));
        // Both txns own a track; phase spans carry mode + txn args.
        assert!(a.contains("\"tid\":0"));
        assert!(a.contains("\"tid\":1"));
        assert!(a.contains("\"name\":\"backoff\""));
        assert!(a.contains("\"mode\":\"optimistic\""));
        assert!(a.contains("\"name\":\"txn.contention.conflicts\""));
        // Txn phase events are rendered as spans only, not op instants.
        assert!(!a.contains("\"name\":\"txn_phase_begin\""));
        // The tagged op's instant stream survives untouched.
        assert!(a.contains("\"name\":\"txn_op\""));
    }
}
