//! Deterministic pseudo-random numbers for simulations.
//!
//! Experiments must be exactly reproducible across platforms and runs, so the
//! simulator carries its own small PRNG instead of depending on `rand`'s
//! version-to-version stream changes. The generator is SplitMix64 seeding a
//! 128-bit xoshiro-style state — far more than adequate statistical quality
//! for workload generation.
//!
//! ```
//! use simcore::rng::SimRng;
//!
//! let mut a = SimRng::new(42);
//! let mut b = SimRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.gen_range(10..20);
//! assert!((10..20).contains(&x));
//! ```

/// A small, fast, deterministic PRNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; used to give each component
    /// its own stream so adding draws in one place does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Lemire's debiased multiply-shift.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0..n as u64) as usize
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// A sample from the exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid mean: {mean}");
        // Inverse CDF; clamp the uniform away from 0 to keep ln finite.
        let u = self.next_f64().max(1e-18);
        -mean * u.ln()
    }

    /// An approximately normal sample (Irwin–Hall sum of 12 uniforms),
    /// adequate for latency jitter.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mean + (sum - 6.0) * std_dev
    }

    /// A sample from a bounded Pareto distribution (heavy tail for service
    /// times). `alpha` is the shape, values fall in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not satisfy `0 < min < max`, `alpha > 0`.
    pub fn bounded_pareto(&mut self, alpha: f64, min: f64, max: f64) -> f64 {
        assert!(
            min > 0.0 && max > min && alpha > 0.0,
            "invalid pareto params"
        );
        // Inverse CDF of the bounded Pareto:
        //   F(x) = (1 - (L/x)^a) / (1 - (L/H)^a)
        //   x    = L * (1 - u * (1 - (L/H)^a))^(-1/a)
        let u = self.next_f64();
        let ratio = (min / max).powf(alpha);
        min * (1.0 - u * (1.0 - ratio)).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }

    /// Fills `buf` with random bytes (for synthetic payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let x = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(99);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(100..110);
            assert!((100..110).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "observed mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::new(19);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SimRng::new(29);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(31);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
