//! The future event list: a priority queue ordered by virtual time.
//!
//! Ties are broken by insertion order so that runs are fully deterministic:
//! two events scheduled for the same instant fire in the order they were
//! pushed.
//!
//! ```
//! use simcore::queue::EventQueue;
//! use simcore::time::{SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_micros(2), "second");
//! q.push(SimTime::from_micros(1), "first");
//! q.push_after(SimDuration::from_micros(2), "tied-with-second");
//! assert_eq!(q.pop().unwrap().1, "first");
//! assert_eq!(q.pop().unwrap().1, "second");
//! assert_eq!(q.pop().unwrap().1, "tied-with-second");
//! assert!(q.pop().is_none());
//! ```

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cumulative event-flow counters of an [`EventQueue`]: the denominator of
/// `host.events_per_sec` and direct sizing evidence for the planned
/// calendar-queue swap (see ROADMAP "raw speed"). The counters are plain
/// deterministic integers — same-seed runs produce identical values — but
/// they are exported under `host.queue.*` alongside the volatile wall-clock
/// measurements, so canonicalized byte-identity comparisons skip them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled (push/push_after/push_now).
    pub pushed: u64,
    /// Events ever dispatched.
    pub popped: u64,
    /// High-water mark of pending events.
    pub max_depth: usize,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest (time, seq) out
    // first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future event list.
///
/// Tracks the current virtual time: popping an event advances the clock to
/// that event's timestamp. Scheduling into the past is a logic error and
/// panics, which catches causality bugs early.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Cumulative push/pop/depth counters (not reset by [`clear`](Self::clear)).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current virtual time.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let _t = crate::hostprof::scope("simcore.queue.push");
        self.heap.push(Entry { at, seq, event });
        self.stats.pushed += 1;
        if self.heap.len() > self.stats.max_depth {
            self.stats.max_depth = self.heap.len();
        }
    }

    /// Schedules `event` to fire `delay` after the current virtual time.
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push(self.now + delay, event);
    }

    /// Schedules `event` to fire immediately (at the current virtual time,
    /// after all already-queued events for this instant).
    pub fn push_now(&mut self, event: E) {
        self.push(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let _t = crate::hostprof::scope("simcore.queue.pop");
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.stats.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn push_now_fires_at_current_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "a");
        q.pop();
        q.push_now("b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
        assert_eq!(e, "b");
    }

    #[test]
    fn stats_count_pushes_pops_and_high_water() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        for i in 0..5u64 {
            q.push(SimTime::from_nanos(10 * i), i);
        }
        assert_eq!(q.stats().pushed, 5);
        assert_eq!(q.stats().max_depth, 5);
        q.pop();
        q.pop();
        q.push_after(SimDuration::from_nanos(1), 9);
        assert_eq!(q.stats().popped, 2);
        assert_eq!(q.stats().pushed, 6);
        // High-water mark does not shrink as the queue drains.
        assert_eq!(q.stats().max_depth, 5);
        // clear() drops pending events but keeps the cumulative counters.
        q.clear();
        assert_eq!(q.stats().pushed, 6);
        assert_eq!(q.stats().popped, 2);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push_after(SimDuration::from_nanos(1), ());
        q.push_after(SimDuration::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_are_globally_time_ordered_and_fifo_within_instants() {
        for case in 0..64u64 {
            let mut rng = SimRng::new(0x51EE0 + case);
            let n = 1 + rng.gen_index(199);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime::from_nanos(rng.gen_range(0..1000)), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut popped = 0;
            while let Some((t, id)) = q.pop() {
                popped += 1;
                if let Some((lt, lid)) = last {
                    assert!(t >= lt, "time went backwards");
                    if t == lt {
                        assert!(id > lid, "same-instant FIFO violated");
                    }
                }
                assert_eq!(q.now(), t);
                last = Some((t, id));
            }
            assert_eq!(popped, n);
        }
    }

    #[test]
    fn interleaved_push_pop_never_loses_events() {
        for case in 0..64u64 {
            let mut rng = SimRng::new(0xBADC0DE + case);
            let steps = 1 + rng.gen_index(299);
            let mut q = EventQueue::new();
            let (mut pushed, mut popped) = (0u64, 0u64);
            for _ in 0..steps {
                if rng.gen_bool(0.5) {
                    if q.pop().is_some() {
                        popped += 1;
                    }
                } else {
                    q.push_after(SimDuration::from_nanos(rng.gen_range(0..500)), ());
                    pushed += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            assert_eq!(pushed, popped);
        }
    }
}
