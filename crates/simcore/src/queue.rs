//! The future event list: a hierarchical timer wheel ordered by virtual time.
//!
//! Ties are broken by insertion order so that runs are fully deterministic:
//! two events scheduled for the same instant fire in the order they were
//! pushed.
//!
//! The implementation is the classic discrete-event-simulation fastpath: a
//! hierarchical timer wheel ([`WHEEL_LEVELS`] levels of [`WHEEL_SLOTS`]
//! slots, [`WHEEL_BITS`] bits per level) with a calendar-queue overflow
//! list for events beyond the wheel horizon. Near-future events — the
//! overwhelming majority in a NIC/network simulation, where hops are
//! nanoseconds to microseconds ahead — insert and pop in O(1) instead of
//! the `BinaryHeap`'s O(log n). The pop order is *exactly* the `(time,
//! seq)` total order the original heap produced (pinned by the property
//! tests below against a retained heap reference implementation), so every
//! same-seed timeline stays byte-identical across the swap.
//!
//! ```
//! use simcore::queue::EventQueue;
//! use simcore::time::{SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_micros(2), "second");
//! q.push(SimTime::from_micros(1), "first");
//! q.push_after(SimDuration::from_micros(2), "tied-with-second");
//! assert_eq!(q.pop().unwrap().1, "first");
//! assert_eq!(q.pop().unwrap().1, "second");
//! assert_eq!(q.pop().unwrap().1, "tied-with-second");
//! assert!(q.pop().is_none());
//! ```

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::VecDeque;

/// Cumulative event-flow counters of an [`EventQueue`]: the denominator of
/// `host.events_per_sec` and direct sizing evidence for the calendar-queue
/// layout (see ROADMAP "raw speed"). The counters are plain deterministic
/// integers — same-seed runs produce identical values — but they are
/// exported under `host.queue.*` alongside the volatile wall-clock
/// measurements, so canonicalized byte-identity comparisons skip them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled (push/push_after/push_now).
    pub pushed: u64,
    /// Events ever dispatched.
    pub popped: u64,
    /// High-water mark of pending events.
    pub max_depth: usize,
}

/// Bits of virtual time consumed per wheel level (64 slots each).
pub const WHEEL_BITS: u32 = 6;
/// Slots per wheel level.
pub const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Number of wheel levels; events further than `2^(BITS*LEVELS)` ns ahead
/// of the wheel clock (~73 simulated minutes) go to the overflow list.
pub const WHEEL_LEVELS: usize = 7;

const SLOT_MASK: u64 = (WHEEL_SLOTS as u64) - 1;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest (time, seq) out
    // first. Retained for the heap reference implementation the property
    // tests compare the wheel against.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future event list.
///
/// Tracks the current virtual time: popping an event advances the clock to
/// that event's timestamp. Scheduling into the past is a logic error and
/// panics, which catches causality bugs early.
///
/// # Determinism contract
///
/// Pops come out in ascending `(time, seq)` order where `seq` is the
/// per-queue insertion counter — the exact order the seed-era `BinaryHeap`
/// produced. Internally the wheel may visit events out of seq order while
/// cascading a higher-level slot down, so the level-0 drain sorts each
/// same-instant batch by `seq` before it becomes poppable; nothing about
/// wheel geometry is observable from the outside.
pub struct EventQueue<E> {
    /// `WHEEL_LEVELS * WHEEL_SLOTS` buckets, flattened level-major. Level
    /// `l` buckets events whose time differs from the wheel clock first in
    /// bits `[l*BITS, (l+1)*BITS)`.
    levels: Box<[Vec<Entry<E>>]>,
    /// Per-level occupancy bitmap: bit `s` set iff `levels[l*SLOTS + s]`
    /// is non-empty.
    occ: [u64; WHEEL_LEVELS],
    /// Events beyond the wheel horizon (calendar-queue overflow). Promoted
    /// back into the wheel when it drains.
    overflow: Vec<Entry<E>>,
    /// The drained current-instant batch, in final pop (seq) order. All
    /// entries share one timestamp; same-instant `push_now` appends here.
    ready: VecDeque<Entry<E>>,
    /// Reusable drain buffer so steady-state cascades allocate nothing.
    scratch: Vec<Entry<E>>,
    /// Wheel placement clock in ns. Invariant: `cur <= now <=` every
    /// pending timestamp; all bucketed events are placed relative to it.
    cur: u64,
    seq: u64,
    now: SimTime,
    len: usize,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        // Slot buffers are conserved (drains swap them with `scratch`, never
        // drop them), so seeding each with a little capacity means a
        // steady-state run performs no fresh slot allocations at all —
        // first-push allocs would otherwise trickle in for as long as cold
        // slots keep being hit.
        let mut levels = Vec::with_capacity(WHEEL_LEVELS * WHEEL_SLOTS);
        levels.resize_with(WHEEL_LEVELS * WHEEL_SLOTS, || Vec::with_capacity(4));
        EventQueue {
            levels: levels.into_boxed_slice(),
            occ: [0; WHEEL_LEVELS],
            overflow: Vec::new(),
            ready: VecDeque::new(),
            scratch: Vec::new(),
            cur: 0,
            seq: 0,
            now: SimTime::ZERO,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    /// Cumulative push/pop/depth counters (not reset by [`clear`](Self::clear)).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel level an event at `t` ns belongs to, given the placement
    /// clock: the level covering the highest bit in which `t` differs.
    #[inline]
    fn level_of(&self, t: u64) -> usize {
        let diff = t ^ self.cur;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / WHEEL_BITS) as usize
        }
    }

    /// Buckets an entry (already counted in `len`/`stats`) into the wheel
    /// or the overflow list. Requires `entry.at >= cur`.
    #[inline]
    fn bucket(&mut self, entry: Entry<E>) {
        let t = entry.at.as_nanos();
        debug_assert!(t >= self.cur);
        let level = self.level_of(t);
        if level >= WHEEL_LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = ((t >> (WHEEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level * WHEEL_SLOTS + slot].push(entry);
        self.occ[level] |= 1 << slot;
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current virtual time.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let _t = crate::hostprof::scope("simcore.queue.push");
        let entry = Entry { at, seq, event };
        // Same-instant events behind an already-drained batch append to it
        // directly: `seq` is monotonic, so FIFO order is preserved.
        if let Some(front) = self.ready.front() {
            if front.at == at {
                self.ready.push_back(entry);
            } else {
                self.bucket(entry);
            }
        } else {
            self.bucket(entry);
        }
        self.stats.pushed += 1;
        self.len += 1;
        if self.len > self.stats.max_depth {
            self.stats.max_depth = self.len;
        }
    }

    /// Schedules `event` to fire `delay` after the current virtual time.
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push(self.now + delay, event);
    }

    /// Schedules `event` to fire immediately (at the current virtual time,
    /// after all already-queued events for this instant).
    pub fn push_now(&mut self, event: E) {
        self.push(self.now, event);
    }

    /// Drains the earliest pending instant into `ready`, cascading
    /// higher-level slots down and promoting overflow as needed. Leaves
    /// `ready` empty only if the queue is empty.
    fn refill(&mut self) {
        loop {
            let Some(level) = self.occ.iter().position(|&b| b != 0) else {
                if self.overflow.is_empty() {
                    return;
                }
                self.promote_overflow();
                continue;
            };
            // Within a level, slot index order is time order (all bucketed
            // events share the bits above the level with `cur`), so the
            // lowest occupied slot of the lowest occupied level holds the
            // earliest pending instant(s).
            let slot = self.occ[level].trailing_zeros() as usize;
            self.occ[level] &= !(1 << slot);
            debug_assert!(self.scratch.is_empty());
            std::mem::swap(
                &mut self.levels[level * WHEEL_SLOTS + slot],
                &mut self.scratch,
            );
            if level == 0 {
                // A level-0 slot holds exactly one timestamp. Events may
                // have arrived via different cascade paths, so restore seq
                // (push) order before exposing the batch.
                let t = (self.cur >> WHEEL_BITS << WHEEL_BITS) | slot as u64;
                debug_assert!(self.scratch.iter().all(|e| e.at.as_nanos() == t));
                self.cur = t;
                self.scratch.sort_unstable_by_key(|e| e.seq);
                self.ready.extend(self.scratch.drain(..));
                return;
            }
            // Cascade: advance the placement clock to the slot's base time
            // and re-bucket its events into the levels below.
            let width = WHEEL_BITS * level as u32;
            let base =
                (self.cur & !((1u64 << (width + WHEEL_BITS)) - 1)) | ((slot as u64) << width);
            debug_assert!(base >= self.cur);
            self.cur = base;
            while let Some(e) = self.scratch.pop() {
                self.bucket(e);
            }
        }
    }

    /// Re-anchors the wheel at the earliest overflow timestamp and pulls
    /// every overflow event now within the horizon back into the wheel.
    fn promote_overflow(&mut self) {
        let min_t = self
            .overflow
            .iter()
            .map(|e| e.at.as_nanos())
            .min()
            .expect("promote_overflow on empty overflow");
        debug_assert!(min_t >= self.cur);
        self.cur = min_t;
        debug_assert!(self.scratch.is_empty());
        std::mem::swap(&mut self.overflow, &mut self.scratch);
        // Re-bucket order is free to differ from push order: the level-0
        // drain sorts every same-instant batch by seq before it pops.
        while let Some(e) = self.scratch.pop() {
            let t = e.at.as_nanos();
            if self.level_of(t) >= WHEEL_LEVELS {
                self.overflow.push(e);
            } else {
                self.bucket(e);
            }
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let _t = crate::hostprof::scope("simcore.queue.pop");
        if self.ready.is_empty() {
            self.refill();
        }
        let entry = self.ready.pop_front()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.len -= 1;
        self.stats.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(front) = self.ready.front() {
            return Some(front.at);
        }
        if let Some(level) = self.occ.iter().position(|&b| b != 0) {
            let slot = self.occ[level].trailing_zeros() as usize;
            if level == 0 {
                let t = (self.cur >> WHEEL_BITS << WHEEL_BITS) | slot as u64;
                return Some(SimTime::from_nanos(t));
            }
            // Higher-level slots bucket a span of timestamps: the earliest
            // pending instant is the slot's minimum.
            return self.levels[level * WHEEL_SLOTS + slot]
                .iter()
                .map(|e| e.at)
                .min();
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        for slot in self.levels.iter_mut() {
            slot.clear();
        }
        self.occ = [0; WHEEL_LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.len = 0;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len)
            .finish()
    }
}

/// The seed-era `BinaryHeap` future event list, retained as the ordering
/// oracle for the timer wheel's property tests: both structures must
/// produce the identical `(time, seq)` pop order and [`QueueStats`] on any
/// workload.
#[cfg(test)]
mod reference {
    use super::*;
    use std::collections::BinaryHeap;

    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        seq: u64,
        now: SimTime,
        stats: QueueStats,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                seq: 0,
                now: SimTime::ZERO,
                stats: QueueStats::default(),
            }
        }

        pub fn stats(&self) -> QueueStats {
            self.stats
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn push(&mut self, at: SimTime, event: E) {
            assert!(at >= self.now, "scheduling into the past");
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, event });
            self.stats.pushed += 1;
            if self.heap.len() > self.stats.max_depth {
                self.stats.max_depth = self.heap.len();
            }
        }

        pub fn push_after(&mut self, delay: SimDuration, event: E) {
            self.push(self.now + delay, event);
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let entry = self.heap.pop()?;
            self.now = entry.at;
            self.stats.popped += 1;
            Some((entry.at, entry.event))
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.at)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn push_now_fires_at_current_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "a");
        q.pop();
        q.push_now("b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
        assert_eq!(e, "b");
    }

    #[test]
    fn push_now_behind_drained_batch_stays_fifo() {
        // Two events share an instant; after popping the first, a push_now
        // lands at the same instant and must fire after the second.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push_now("c");
        assert_eq!(q.pop().unwrap(), (t, "b"));
        assert_eq!(q.pop().unwrap(), (t, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stats_count_pushes_pops_and_high_water() {
        let mut q = EventQueue::new();
        assert_eq!(q.stats(), QueueStats::default());
        for i in 0..5u64 {
            q.push(SimTime::from_nanos(10 * i), i);
        }
        assert_eq!(q.stats().pushed, 5);
        assert_eq!(q.stats().max_depth, 5);
        q.pop();
        q.pop();
        q.push_after(SimDuration::from_nanos(1), 9);
        assert_eq!(q.stats().popped, 2);
        assert_eq!(q.stats().pushed, 6);
        // High-water mark does not shrink as the queue drains.
        assert_eq!(q.stats().max_depth, 5);
        // clear() drops pending events but keeps the cumulative counters.
        q.clear();
        assert_eq!(q.stats().pushed, 6);
        assert_eq!(q.stats().popped, 2);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push_after(SimDuration::from_nanos(1), ());
        q.push_after(SimDuration::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_survive_overflow() {
        // Beyond the wheel horizon (2^42 ns ≈ 73 min): lands in the
        // overflow list and must promote back in order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10_000), "far");
        q.push(SimTime::from_secs(9_999), "near-far");
        q.push(SimTime::from_nanos(5), "soon");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.pop().unwrap().1, "soon");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9_999)));
        assert_eq!(q.pop().unwrap().1, "near-far");
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10_000), "far"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_next_pop_across_levels() {
        let mut q = EventQueue::new();
        // One event per level distance, plus overflow.
        for shift in [0u64, 7, 13, 20, 27, 35, 41, 50] {
            q.push(SimTime::from_nanos(1 << shift), shift);
        }
        while let Some(t) = q.peek_time() {
            let (pt, _) = q.pop().unwrap();
            assert_eq!(pt, t);
        }
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_are_globally_time_ordered_and_fifo_within_instants() {
        for case in 0..64u64 {
            let mut rng = SimRng::new(0x51EE0 + case);
            let n = 1 + rng.gen_index(199);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime::from_nanos(rng.gen_range(0..1000)), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut popped = 0;
            while let Some((t, id)) = q.pop() {
                popped += 1;
                if let Some((lt, lid)) = last {
                    assert!(t >= lt, "time went backwards");
                    if t == lt {
                        assert!(id > lid, "same-instant FIFO violated");
                    }
                }
                assert_eq!(q.now(), t);
                last = Some((t, id));
            }
            assert_eq!(popped, n);
        }
    }

    #[test]
    fn interleaved_push_pop_never_loses_events() {
        for case in 0..64u64 {
            let mut rng = SimRng::new(0xBADC0DE + case);
            let steps = 1 + rng.gen_index(299);
            let mut q = EventQueue::new();
            let (mut pushed, mut popped) = (0u64, 0u64);
            for _ in 0..steps {
                if rng.gen_bool(0.5) {
                    if q.pop().is_some() {
                        popped += 1;
                    }
                } else {
                    q.push_after(SimDuration::from_nanos(rng.gen_range(0..500)), ());
                    pushed += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            assert_eq!(pushed, popped);
        }
    }
}

/// Property tests pinning the wheel to the retained heap oracle: identical
/// pop order (including same-instant seq tie-breaks), identical clock
/// advancement, identical `QueueStats`, across pure-pop, interleaved, and
/// far-future overflow workloads.
#[cfg(test)]
mod wheel_vs_heap {
    use super::reference::HeapQueue;
    use super::*;
    use crate::rng::SimRng;

    /// Drives the wheel and the heap through an identical randomized
    /// push/pop schedule and asserts lock-step equivalence.
    fn lockstep(seed: u64, steps: usize, max_delay_ns: u64, tie_bias: bool) {
        let mut rng = SimRng::new(seed);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut id = 0u64;
        for _ in 0..steps {
            if rng.gen_bool(0.45) {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "pop divergence (seed {seed:#x})");
                assert_eq!(wheel.now(), heap.now());
            } else {
                let delay = if tie_bias && rng.gen_bool(0.5) {
                    // Heavy same-instant load: many events collide on the
                    // few buckets, exercising the seq tie-break.
                    SimDuration::from_nanos(rng.gen_range(0..4) * 100)
                } else {
                    SimDuration::from_nanos(rng.gen_range(0..max_delay_ns))
                };
                wheel.push_after(delay, id);
                heap.push_after(delay, id);
                id += 1;
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek_time(), heap.peek_time());
            assert_eq!(wheel.stats(), heap.stats());
        }
        // Drain both to the end.
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "drain divergence (seed {seed:#x})");
            assert_eq!(wheel.stats(), heap.stats());
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_matches_heap_near_future() {
        for case in 0..48u64 {
            lockstep(0x77EE1 + case, 400, 2_000, false);
        }
    }

    #[test]
    fn wheel_matches_heap_with_same_instant_storms() {
        for case in 0..48u64 {
            lockstep(0x7E1E5 + case, 400, 800, true);
        }
    }

    #[test]
    fn wheel_matches_heap_across_level_boundaries() {
        // Delays spanning every wheel level (up to ~2^36 ns) so cascades
        // from deep levels happen constantly.
        for case in 0..24u64 {
            lockstep(0xCA5CADE + case, 250, 1u64 << 36, false);
        }
    }

    #[test]
    fn wheel_matches_heap_through_overflow_promotion() {
        // Delays beyond the 2^42 ns horizon force the calendar-queue
        // overflow path and its promotion back into the wheel.
        for case in 0..16u64 {
            let seed = 0x0F10 + case;
            let mut rng = SimRng::new(seed);
            let mut wheel: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapQueue<u64> = HeapQueue::new();
            for id in 0..120u64 {
                let delay = if rng.gen_bool(0.3) {
                    // Far side of the horizon (up to ~2^44 ns ≈ 4.9 h).
                    SimDuration::from_nanos((1u64 << 42) + rng.gen_range(0..(1u64 << 44)))
                } else {
                    SimDuration::from_nanos(rng.gen_range(0..1_000_000))
                };
                wheel.push_after(delay, id);
                heap.push_after(delay, id);
                if rng.gen_bool(0.4) {
                    assert_eq!(wheel.pop(), heap.pop());
                }
            }
            loop {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "overflow divergence (seed {seed:#x})");
                assert_eq!(wheel.stats(), heap.stats());
                if w.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn wheel_matches_heap_same_instant_pop_then_push() {
        // Pin the subtle case: pop one of several same-instant events,
        // push more at that exact instant, and require global FIFO.
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        let t = SimTime::from_nanos(777);
        for i in 0..5 {
            wheel.push(t, i);
            heap.push(t, i);
        }
        assert_eq!(wheel.pop(), heap.pop());
        for i in 5..8 {
            wheel.push(t, i);
            heap.push(t, i);
        }
        for _ in 0..7 {
            assert_eq!(wheel.pop(), heap.pop());
        }
        assert_eq!(wheel.pop(), None);
        assert_eq!(heap.pop(), None);
    }
}
