//! Virtual time for the discrete-event simulator.
//!
//! All simulated clocks count nanoseconds from the start of the run. Two
//! newtypes keep instants and durations from being confused:
//!
//! * [`SimTime`] — an absolute instant on the virtual clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! ```
//! use simcore::time::{SimTime, SimDuration};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_micros(5);
//! assert_eq!(later - start, SimDuration::from_micros(5));
//! assert_eq!(later.as_nanos(), 5_000);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// beginning of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "since() with a later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (never wraps past [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Truncated microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero nanoseconds long.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a dimensionless float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d).as_micros(), 15);
        assert_eq!((t - d).as_micros(), 5);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_micros(15));
        assert_eq!(d / 5, SimDuration::from_micros(1));
    }

    #[test]
    fn since_and_saturation() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b.since(a).as_nanos(), 150);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert!((SimDuration::from_micros(1500).as_secs_f64() - 0.0015).abs() < 1e-12);
        assert_eq!(SimDuration::from_micros(10).mul_f64(2.5).as_micros(), 25);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(17).to_string(), "17.000us");
        assert_eq!(SimDuration::from_millis(17).to_string(), "17.000ms");
        assert_eq!(SimDuration::from_secs(17).to_string(), "17.000s");
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
