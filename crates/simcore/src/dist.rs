//! Key-choice distributions used by storage benchmarks.
//!
//! These mirror the generators in the YCSB core package:
//!
//! * [`Zipfian`] — classic zipf over `0..n` with the YCSB constant 0.99.
//! * [`ScrambledZipfian`] — zipf popularity spread over the keyspace by
//!   hashing, so hot keys are not clustered at low indices.
//! * [`Latest`] — skewed towards the most recently inserted item.
//! * [`UniformKeys`] — uniform over `0..n`.
//!
//! ```
//! use simcore::dist::{KeyChooser, Zipfian};
//! use simcore::rng::SimRng;
//!
//! let mut rng = SimRng::new(1);
//! let mut zipf = Zipfian::new(1000);
//! let k = zipf.next_key(&mut rng);
//! assert!(k < 1000);
//! ```

use crate::rng::SimRng;

/// Anything that can pick the next key index for a workload.
pub trait KeyChooser {
    /// Draws the next key in `[0, item_count)`.
    fn next_key(&mut self, rng: &mut SimRng) -> u64;
    /// Number of items currently covered by the distribution.
    fn item_count(&self) -> u64;
    /// Informs the distribution that the keyspace has grown (after inserts).
    fn grow(&mut self, new_count: u64);
}

/// The YCSB zipfian constant.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipf-distributed key chooser (Gray et al.'s rejection-free method, as in
/// YCSB's `ZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// Incrementally extends `zeta(old_n)` to `zeta(new_n)`.
fn zeta_incr(old_n: u64, new_n: u64, theta: f64, old_zeta: f64) -> f64 {
    old_zeta
        + ((old_n + 1)..=new_n)
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum::<f64>()
}

impl Zipfian {
    /// A zipfian chooser over `items` keys with the standard YCSB skew.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> Self {
        Self::with_theta(items, YCSB_ZIPFIAN_CONSTANT)
    }

    /// A zipfian chooser with an explicit skew parameter `theta ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta` is not in `(0, 1)`.
    pub fn with_theta(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian over empty keyspace");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1): {theta}"
        );
        let zeta_n = zeta(items, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            items,
            theta,
            zeta_n,
            zeta2,
            alpha,
            eta,
        }
    }
}

impl KeyChooser for Zipfian {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64) * spread) as u64
    }

    fn item_count(&self) -> u64 {
        self.items
    }

    fn grow(&mut self, new_count: u64) {
        if new_count <= self.items {
            return;
        }
        self.zeta_n = zeta_incr(self.items, new_count, self.theta, self.zeta_n);
        self.items = new_count;
        self.eta = (1.0 - (2.0 / self.items as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2 / self.zeta_n);
    }
}

/// Zipf popularity with the hot keys scattered across the keyspace by a
/// 64-bit mix hash (YCSB `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

fn fnv_mix(mut x: u64) -> u64 {
    // fmix64 from MurmurHash3 with a pre-offset: fmix64(0) == 0, and key 0 is
    // the zipfian hot key, so without the offset the hot key would stay at
    // index 0 — defeating the scramble.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

impl ScrambledZipfian {
    /// A scrambled-zipfian chooser over `items` keys.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(items),
        }
    }

    /// A scrambled-zipfian chooser with an explicit skew `theta ∈ (0, 1)`
    /// (contention knob: higher theta concentrates more traffic on fewer
    /// keys).
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta` is outside `(0, 1)`.
    pub fn with_theta(items: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::with_theta(items, theta),
        }
    }
}

impl KeyChooser for ScrambledZipfian {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        fnv_mix(self.inner.next_key(rng)) % self.inner.item_count()
    }

    fn item_count(&self) -> u64 {
        self.inner.item_count()
    }

    fn grow(&mut self, new_count: u64) {
        self.inner.grow(new_count);
    }
}

/// Skews towards recently inserted keys: key = newest − zipf_draw
/// (YCSB `SkewedLatestGenerator`). Used by workload D.
#[derive(Debug, Clone)]
pub struct Latest {
    inner: Zipfian,
}

impl Latest {
    /// A latest-skewed chooser over `items` keys.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> Self {
        Latest {
            inner: Zipfian::new(items),
        }
    }
}

impl KeyChooser for Latest {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let n = self.inner.item_count();
        let offset = self.inner.next_key(rng).min(n - 1);
        n - 1 - offset
    }

    fn item_count(&self) -> u64 {
        self.inner.item_count()
    }

    fn grow(&mut self, new_count: u64) {
        self.inner.grow(new_count);
    }
}

/// Uniform key chooser.
#[derive(Debug, Clone)]
pub struct UniformKeys {
    items: u64,
}

impl UniformKeys {
    /// A uniform chooser over `items` keys.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> Self {
        assert!(items > 0, "uniform over empty keyspace");
        UniformKeys { items }
    }
}

impl KeyChooser for UniformKeys {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        rng.gen_range(0..self.items)
    }

    fn item_count(&self) -> u64 {
        self.items
    }

    fn grow(&mut self, new_count: u64) {
        self.items = self.items.max(new_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_counts<C: KeyChooser>(chooser: &mut C, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = SimRng::new(seed);
        let mut counts = vec![0usize; chooser.item_count() as usize];
        for _ in 0..draws {
            let k = chooser.next_key(&mut rng) as usize;
            assert!(k < counts.len(), "key {k} out of range");
            counts[k] += 1;
        }
        counts
    }

    #[test]
    fn zipfian_is_skewed_towards_low_keys() {
        let mut z = Zipfian::new(1000);
        let counts = draw_counts(&mut z, 100_000, 1);
        // Key 0 should be far more popular than key 500.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Top-10 keys should hold a large share of all draws.
        let top10: usize = counts[..10].iter().sum();
        assert!(top10 > 30_000, "top-10 share too small: {top10}");
    }

    #[test]
    fn zipfian_grow_extends_range() {
        let mut z = Zipfian::new(100);
        z.grow(200);
        assert_eq!(z.item_count(), 200);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(z.next_key(&mut rng) < 200);
        }
    }

    #[test]
    fn zipfian_grow_matches_fresh_zeta() {
        let mut z = Zipfian::new(100);
        z.grow(500);
        let fresh = Zipfian::new(500);
        assert!((z.zeta_n - fresh.zeta_n).abs() < 1e-9);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut s = ScrambledZipfian::new(1000);
        let counts = draw_counts(&mut s, 100_000, 3);
        // The most popular key should NOT be key 0 after scrambling
        // (fmix64(0) % 1000 != 0), but some key must still be very hot.
        let max = *counts.iter().max().unwrap();
        assert!(max > 5_000, "no hot key after scrambling: {max}");
        assert!(counts[0] < max, "hot key unexpectedly at index 0");
    }

    #[test]
    fn latest_prefers_newest() {
        let mut l = Latest::new(1000);
        let counts = draw_counts(&mut l, 100_000, 4);
        assert!(counts[999] > 20 * counts[10].max(1));
    }

    #[test]
    fn uniform_is_flat() {
        let mut u = UniformKeys::new(10);
        let counts = draw_counts(&mut u, 100_000, 5);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c));
        }
    }

    #[test]
    fn latest_tracks_growth() {
        let mut l = Latest::new(10);
        l.grow(1000);
        let counts = draw_counts(&mut l, 50_000, 6);
        assert!(counts[999] > counts[5], "latest ignored growth");
    }

    #[test]
    #[should_panic]
    fn zipfian_empty_panics() {
        let _ = Zipfian::new(0);
    }
}
