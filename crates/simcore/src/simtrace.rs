//! Causal tracing and unified metrics for the whole simulator stack.
//!
//! `simtrace` is the observability spine of the reproduction. Every layer
//! (NIC model, network, CPU scheduler, group-operation client) can emit
//! [`TraceEvent`]s — sim-time-stamped records carrying a causal op id — into
//! a shared, bounded ring buffer owned by a [`Tracer`] handle. From the
//! collected stream, [`op_breakdown`] rebuilds a single operation's stage
//! timeline ("where did my p999 go"), [`span_tree`] groups it per node, and
//! [`chrome_trace_json`] exports the whole run as Chrome trace-event JSON
//! that opens directly in Perfetto or `chrome://tracing`.
//!
//! Tracing is **disabled by default**: a disabled [`Tracer`] is a `None`
//! handle and [`Tracer::emit`] is a single branch, so the instrumented hot
//! paths cost nothing measurable when tracing is off.
//!
//! The second half of the module is [`MetricsRegistry`]: a named
//! counter/gauge/histogram store that the per-crate stats structs
//! (`FabricStats`, `NvmStats`, `SchedStats`, `LinkStats`) snapshot into, so
//! benches can serialise one uniform registry instead of four ad-hoc
//! structs.
//!
//! ```
//! use simcore::prelude::*;
//! use simcore::simtrace::{TraceKind, NO_OP};
//!
//! let tracer = Tracer::enabled(1024);
//! let t0 = SimTime::from_nanos(100);
//! tracer.emit(t0, 0, 7, TraceKind::OpIssue);
//! tracer.emit(t0 + SimDuration::from_nanos(50), 0, 7, TraceKind::MetaSend { replica: 1 });
//! tracer.emit(t0 + SimDuration::from_nanos(400), 0, 7, TraceKind::OpAck);
//!
//! let events = tracer.events();
//! let bd = simcore::simtrace::op_breakdown(&events, 7).unwrap();
//! assert_eq!(bd.total(), SimDuration::from_nanos(400));
//! let stage_sum: u64 = bd.stages.iter().map(|s| s.duration().as_nanos()).sum();
//! assert_eq!(stage_sum, bd.total().as_nanos());
//! assert_eq!(tracer.emit(t0, 0, NO_OP, TraceKind::OpAck), ());
//! ```

use crate::jsonw::JsonWriter;
use crate::stats::Histogram;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Sentinel op id for events that cannot be attributed to one operation
/// (e.g. responder-side cache maintenance, background link traffic).
pub const NO_OP: u64 = u64::MAX;

/// Sentinel node id for events not tied to a node.
pub const NO_NODE: u32 = u32::MAX;

/// Base of the transaction-id op space. Transaction ids are small integers
/// (0, 1, 2, …) in a counter space of their own, while op ids carry the
/// `shard | epoch | seq` encoding of `simaudit::op_id_base` — the two
/// would collide in a shared trace stream. Txn-scoped events therefore
/// carry [`txn_op_id`]`(txn)` in [`TraceEvent::op`]: bit 62 is far above
/// any real shard encoding, so the two id spaces stay disjoint.
pub const TXN_OP_BASE: u64 = 1 << 62;

/// The trace-stream op id parenting all of transaction `txn`'s phase
/// events (see [`TXN_OP_BASE`]).
pub fn txn_op_id(txn: u64) -> u64 {
    TXN_OP_BASE | txn
}

/// Phase codes carried by [`TraceKind::TxnPhaseBegin`] /
/// [`TraceKind::TxnPhaseEnd`]. The taxonomy mirrors the commit state
/// machine in `hyperloop::txn`: lock acquisition, partial-acquisition
/// undo, held-lock rollback, read validation, buffered-write apply, lock
/// release, plus the parked backoff wait between acquisition rounds.
pub const TXN_PHASE_ACQUIRE: u8 = 0;
/// Undoing a partially acquired lock (some replicas swapped, some not).
pub const TXN_PHASE_UNDO: u8 = 1;
/// Releasing every held lock after a failed acquisition round.
pub const TXN_PHASE_ROLLBACK: u8 = 2;
/// Checking every buffered read's version word.
pub const TXN_PHASE_VALIDATE: u8 = 3;
/// Writing the buffered data and version bumps.
pub const TXN_PHASE_APPLY: u8 = 4;
/// Releasing the held locks on the way to commit or abort.
pub const TXN_PHASE_RELEASE: u8 = 5;
/// Parked on the jittered backoff delay between acquisition rounds.
pub const TXN_PHASE_BACKOFF: u8 = 6;

/// Stable snake_case name of a transaction phase code.
pub fn txn_phase_label(code: u8) -> &'static str {
    match code {
        TXN_PHASE_ACQUIRE => "acquire",
        TXN_PHASE_UNDO => "undo",
        TXN_PHASE_ROLLBACK => "rollback",
        TXN_PHASE_VALIDATE => "validate",
        TXN_PHASE_APPLY => "apply",
        TXN_PHASE_RELEASE => "release",
        TXN_PHASE_BACKOFF => "backoff",
        _ => "unknown",
    }
}

/// Stable label of a commit-mode code carried by txn phase events
/// (`0` = locking, `1` = optimistic).
pub fn txn_mode_label(code: u8) -> &'static str {
    match code {
        0 => "locking",
        1 => "optimistic",
        _ => "unknown",
    }
}

/// What happened, with the per-kind payload.
///
/// Every variant is `Copy` and fixed-size so the ring buffer stays flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// NIC engine fetched a WQE descriptor from host memory.
    WqeFetch {
        /// Queue pair the WQE came from.
        qp: u32,
        /// Raw opcode byte of the fetched WQE.
        opcode: u8,
    },
    /// NIC engine started executing a WQE.
    WqeExec {
        /// Queue pair the WQE belongs to.
        qp: u32,
        /// Raw opcode byte.
        opcode: u8,
        /// Payload length in bytes.
        bytes: u64,
    },
    /// A `WAIT` WQE observed its CQ semaphore and released the chain.
    WaitRelease {
        /// Queue pair whose chain was released.
        qp: u32,
    },
    /// DMA transfer between host memory and the NIC.
    Dma {
        /// Bytes moved.
        bytes: u64,
    },
    /// A gFLUSH (0-byte READ) forced NIC-cached data down to durable media.
    GFlush {
        /// Bytes drained from the NIC volatile cache.
        bytes: u64,
        /// Number of distinct dirty ranges drained.
        ranges: u32,
    },
    /// Incoming write payload landed in the NIC volatile cache.
    CacheFill {
        /// Bytes added to the dirty set.
        bytes: u64,
    },
    /// NIC volatile cache contents were written back to durable media.
    CacheEvict {
        /// Bytes evicted.
        bytes: u64,
    },
    /// A completion queue entry was delivered.
    Cqe {
        /// Completion queue index.
        cq: u32,
        /// Whether the completion carried a success status.
        ok: bool,
    },
    /// A message was accepted onto a link's egress port.
    LinkEnqueue {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Message size in bytes.
        bytes: u64,
    },
    /// A message finished transit and was delivered to its destination.
    LinkDeliver {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
    /// The CPU scheduler placed a task on a core.
    Dispatch {
        /// Task id.
        task: u64,
    },
    /// The CPU scheduler preempted a running task at the end of its slice.
    Preempt {
        /// Task id.
        task: u64,
    },
    /// A group operation was issued by the client.
    OpIssue,
    /// The client posted the metadata SEND that triggers a replica's chain.
    MetaSend {
        /// Replica index the SEND targets.
        replica: u32,
    },
    /// Client-visible progress of one replica's pre-posted chain.
    ReplicaProgress {
        /// Replica index.
        replica: u32,
    },
    /// The client observed the final acknowledgement for the operation.
    OpAck,
    /// A shard migration started: writes to the shard are paused.
    MigrateBegin {
        /// The migrating shard.
        shard: u32,
    },
    /// The migrating shard's transport was atomically swapped to the new
    /// chain.
    MigrateCutover {
        /// The migrating shard.
        shard: u32,
        /// The epoch the shard serves after the swap.
        epoch: u64,
    },
    /// The migration finished: writes to the shard resumed.
    MigrateEnd {
        /// The migrating shard.
        shard: u32,
        /// Dirty ranges replayed onto the new chain (the WAL tail that
        /// raced the bulk copy).
        replayed: u64,
    },
    /// A shard's health state changed (emitted by
    /// [`crate::simaudit::HealthMonitor`]); shows up as a Perfetto
    /// instant so SLO breaches line up with the op spans around them.
    HealthBreach {
        /// The shard whose state changed.
        shard: u32,
        /// New state code ([`crate::simaudit::HealthState::code`]).
        state: u8,
    },
    /// A transaction entered a commit-pipeline phase. The event's
    /// [`TraceEvent::op`] is [`txn_op_id`]`(txn)`, so all of one txn's
    /// phase events share a single parent id in the stream. Consecutive
    /// Begin/End pairs tile the txn's lifetime exactly: a phase change
    /// emits the old phase's End and the new phase's Begin at the same
    /// instant.
    TxnPhaseBegin {
        /// Transaction id (the manager's own counter space).
        txn: u64,
        /// Commit-mode code (see [`txn_mode_label`]).
        mode: u8,
        /// Phase code (see [`txn_phase_label`]).
        phase: u8,
    },
    /// A transaction left a commit-pipeline phase (see
    /// [`TraceKind::TxnPhaseBegin`]).
    TxnPhaseEnd {
        /// Transaction id.
        txn: u64,
        /// Commit-mode code.
        mode: u8,
        /// Phase code.
        phase: u8,
    },
    /// A group op (lock gCAS, validate gCAS, apply gWRITE, …) was issued
    /// on behalf of a transaction. The event's [`TraceEvent::op`] is the
    /// *op's* id (the client generation), and the payload names the
    /// parent txn — the link that lets attribution group txn-issued ops
    /// apart from bare ops.
    TxnOp {
        /// Parent transaction id.
        txn: u64,
    },
}

impl TraceKind {
    /// Stable snake_case name used in exports and span labels.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::WqeFetch { .. } => "wqe_fetch",
            TraceKind::WqeExec { .. } => "wqe_exec",
            TraceKind::WaitRelease { .. } => "wait_release",
            TraceKind::Dma { .. } => "dma",
            TraceKind::GFlush { .. } => "gflush",
            TraceKind::CacheFill { .. } => "cache_fill",
            TraceKind::CacheEvict { .. } => "cache_evict",
            TraceKind::Cqe { .. } => "cqe",
            TraceKind::LinkEnqueue { .. } => "link_enqueue",
            TraceKind::LinkDeliver { .. } => "link_deliver",
            TraceKind::Dispatch { .. } => "dispatch",
            TraceKind::Preempt { .. } => "preempt",
            TraceKind::OpIssue => "op_issue",
            TraceKind::MetaSend { .. } => "meta_send",
            TraceKind::ReplicaProgress { .. } => "replica_progress",
            TraceKind::OpAck => "op_ack",
            TraceKind::MigrateBegin { .. } => "migrate_begin",
            TraceKind::MigrateCutover { .. } => "migrate_cutover",
            TraceKind::MigrateEnd { .. } => "migrate_end",
            TraceKind::HealthBreach { .. } => "health_breach",
            TraceKind::TxnPhaseBegin { .. } => "txn_phase_begin",
            TraceKind::TxnPhaseEnd { .. } => "txn_phase_end",
            TraceKind::TxnOp { .. } => "txn_op",
        }
    }

    fn write_args(&self, w: &mut JsonWriter) {
        match *self {
            TraceKind::WqeFetch { qp, opcode } => {
                w.field_u64("qp", qp as u64);
                w.field_u64("opcode", opcode as u64);
            }
            TraceKind::WqeExec { qp, opcode, bytes } => {
                w.field_u64("qp", qp as u64);
                w.field_u64("opcode", opcode as u64);
                w.field_u64("bytes", bytes);
            }
            TraceKind::WaitRelease { qp } => w.field_u64("qp", qp as u64),
            TraceKind::Dma { bytes } => w.field_u64("bytes", bytes),
            TraceKind::GFlush { bytes, ranges } => {
                w.field_u64("bytes", bytes);
                w.field_u64("ranges", ranges as u64);
            }
            TraceKind::CacheFill { bytes } => w.field_u64("bytes", bytes),
            TraceKind::CacheEvict { bytes } => w.field_u64("bytes", bytes),
            TraceKind::Cqe { cq, ok } => {
                w.field_u64("cq", cq as u64);
                w.field_bool("ok", ok);
            }
            TraceKind::LinkEnqueue { src, dst, bytes } => {
                w.field_u64("src", src as u64);
                w.field_u64("dst", dst as u64);
                w.field_u64("bytes", bytes);
            }
            TraceKind::LinkDeliver { src, dst } => {
                w.field_u64("src", src as u64);
                w.field_u64("dst", dst as u64);
            }
            TraceKind::Dispatch { task } => w.field_u64("task", task),
            TraceKind::Preempt { task } => w.field_u64("task", task),
            TraceKind::OpIssue | TraceKind::OpAck => {}
            TraceKind::MetaSend { replica } => w.field_u64("replica", replica as u64),
            TraceKind::ReplicaProgress { replica } => w.field_u64("replica", replica as u64),
            TraceKind::MigrateBegin { shard } => w.field_u64("shard", shard as u64),
            TraceKind::MigrateCutover { shard, epoch } => {
                w.field_u64("shard", shard as u64);
                w.field_u64("epoch", epoch);
            }
            TraceKind::MigrateEnd { shard, replayed } => {
                w.field_u64("shard", shard as u64);
                w.field_u64("replayed", replayed);
            }
            TraceKind::HealthBreach { shard, state } => {
                w.field_u64("shard", shard as u64);
                w.field_u64("state", state as u64);
            }
            TraceKind::TxnPhaseBegin { txn, mode, phase }
            | TraceKind::TxnPhaseEnd { txn, mode, phase } => {
                w.field_u64("txn", txn);
                w.field_str("mode", txn_mode_label(mode));
                w.field_str("phase", txn_phase_label(phase));
            }
            TraceKind::TxnOp { txn } => w.field_u64("txn", txn),
        }
    }
}

/// One sim-time-stamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened on the virtual clock.
    pub at: SimTime,
    /// Node the event is attributed to ([`NO_NODE`] if none).
    pub node: u32,
    /// Causal operation id ([`NO_OP`] if unattributable). For group
    /// operations this is the client generation number, which doubles as the
    /// WQE `wr_id` and CQE id on every hop.
    pub op: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Bounded ring of trace events with whole-span eviction.
///
/// When the ring is full, the op owning the *oldest* buffered event is
/// evicted in its entirety (every buffered event of that op, plus any late
/// stragglers it emits afterwards). Surviving ops therefore always keep
/// their complete span — head included — so per-op breakdowns over an
/// overflowed ring never mis-tile: an op is either whole or gone.
/// Unattributable [`NO_OP`] events are evicted singly, oldest first.
#[derive(Debug)]
struct TraceBuffer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    dropped_ops: u64,
    evicted: BTreeSet<u64>,
}

impl TraceBuffer {
    fn push(&mut self, ev: TraceEvent) {
        // Late events of an already-evicted op would resurrect a headless
        // partial span: discard them outright.
        if ev.op != NO_OP && self.evicted.contains(&ev.op) {
            self.dropped += 1;
            return;
        }
        if self.buf.len() >= self.capacity {
            // Evict in bulk: mark oldest events until at least a quarter of
            // the ring is reclaimable, then remove every event of the marked
            // ops in ONE retain pass. One O(n) sweep buys capacity/4 pushes,
            // so eviction stays amortized O(1) even when a throughput run
            // saturates the ring continuously.
            let to_mark = self.capacity / 4 + 1;
            let mut victims: BTreeSet<u64> = BTreeSet::new();
            let mut noop_prefix = 0usize;
            for (marked, e) in self.buf.iter().enumerate() {
                if marked >= to_mark {
                    break;
                }
                if e.op == NO_OP {
                    noop_prefix += 1;
                } else {
                    victims.insert(e.op);
                }
            }
            let before = self.buf.len();
            let mut noop_left = noop_prefix;
            self.buf.retain(|e| {
                if e.op == NO_OP {
                    if noop_left > 0 {
                        noop_left -= 1;
                        return false;
                    }
                    true
                } else {
                    !victims.contains(&e.op)
                }
            });
            self.dropped += (before - self.buf.len()) as u64;
            self.dropped_ops += victims.len() as u64;
            self.evicted.extend(victims.iter().copied());
            if ev.op != NO_OP && victims.contains(&ev.op) {
                // The incoming event belongs to an op just evicted.
                self.dropped += 1;
                return;
            }
        }
        self.buf.push_back(ev);
    }
}

/// Cheap, cloneable handle to a shared trace buffer.
///
/// A default-constructed (or [`Tracer::disabled`]) handle carries no buffer:
/// [`Tracer::emit`] is then a single `is_some` branch, which is the
/// always-compiled-in fast path. Clones of an enabled handle share one
/// buffer, so a tracer can be handed to the NIC model, the network, the
/// schedulers and the client while the test harness keeps a reading clone.
///
/// A tracer can additionally carry an [`Audit`](crate::simaudit::Audit)
/// tap ([`Tracer::with_audit`]): every emitted event is then also fed to
/// the online auditors, buffered or not. A buffer-less tracer with an
/// audit attached still counts as enabled, so instrumented hot paths emit
/// for the auditors even when nothing is being recorded.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuffer>>>,
    audit: crate::simaudit::Audit,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .field("audit", &self.audit.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that discards everything (the default).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer collecting up to `capacity` events in a ring buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be non-zero");
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuffer {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
                dropped_ops: 0,
                evicted: BTreeSet::new(),
            }))),
            audit: crate::simaudit::Audit::disabled(),
        }
    }

    /// Attaches an [`Audit`](crate::simaudit::Audit) tap: every event
    /// emitted through this tracer (and its clones) is also fed to the
    /// auditors, whether or not a ring buffer is attached.
    pub fn with_audit(mut self, audit: crate::simaudit::Audit) -> Self {
        self.audit = audit;
        self
    }

    /// The attached audit tap (disabled unless [`Tracer::with_audit`]
    /// was used).
    pub fn audit(&self) -> &crate::simaudit::Audit {
        &self.audit
    }

    /// True if this handle records events or feeds an audit tap.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some() || self.audit.is_enabled()
    }

    /// Records one event. No-op (one branch) when disabled.
    #[inline]
    pub fn emit(&self, at: SimTime, node: u32, op: u64, kind: TraceKind) {
        let _t = crate::hostprof::scope("simtrace.tap");
        let ev = TraceEvent { at, node, op, kind };
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push(ev);
        }
        self.audit.on_event(&ev);
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.borrow().buf.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// How many events were discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// How many operations had their whole span evicted by ring overflow.
    /// Ops still buffered are complete: the overflow policy evicts whole
    /// spans, never a span's head alone.
    pub fn dropped_ops(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped_ops)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().buf.len())
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all buffered events and resets the drop counters and the
    /// evicted-op suppression set.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut b = inner.borrow_mut();
            b.buf.clear();
            b.dropped = 0;
            b.dropped_ops = 0;
            b.evicted.clear();
        }
    }

    /// Overflow-aware [`op_breakdown_with_drops`] over this tracer's
    /// buffered events. Under the whole-span eviction policy an op is
    /// either completely buffered or completely evicted, so the result is
    /// never [`OpBreakdown::truncated`]; the flag remains for streams
    /// captured from other sources.
    pub fn op_breakdown(&self, op: u64) -> Option<OpBreakdown> {
        op_breakdown_with_drops(&self.events(), op, self.dropped())
    }
}

/// One contiguous stage of an operation's timeline.
///
/// Stages are labelled by the event that *ends* them, so "wait_release@n2"
/// reads as "the time spent waiting until replica 2's chain was released".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// `label@nNODE` of the event ending this stage.
    pub label: String,
    /// Stage start (previous event's timestamp).
    pub start: SimTime,
    /// Stage end (this event's timestamp).
    pub end: SimTime,
}

impl Stage {
    /// How long the stage took.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Per-stage latency breakdown of one operation.
///
/// The stages partition `[start, end]` exactly: consecutive events bound
/// consecutive stages, so the stage durations always sum to [`Self::total`].
/// When [`Self::truncated`] is set the partition is only of the *surviving*
/// span: the ring dropped the op's head events, so `start` is not the issue
/// time and `total` under-reports the true end-to-end latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBreakdown {
    /// The operation id.
    pub op: u64,
    /// Timestamp of the first event attributed to the op.
    pub start: SimTime,
    /// Timestamp of the last event attributed to the op.
    pub end: SimTime,
    /// The stages, in time order.
    pub stages: Vec<Stage>,
    /// Overflow discarded this op's head events: the breakdown is a
    /// partial tail, not the full op. A [`Tracer`]'s whole-span eviction
    /// never produces this; it guards streams from other sources.
    pub truncated: bool,
}

impl OpBreakdown {
    /// End-to-end latency of the operation as seen by the trace.
    pub fn total(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A node in a reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Human-readable span name.
    pub label: String,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Child spans, in time order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Renders the tree as an indented text report (for logs and debugging).
    pub fn render(&self) -> String {
        fn go(n: &SpanNode, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} [{} .. {}] {}\n",
                n.label,
                n.start,
                n.end,
                n.duration()
            ));
            for c in &n.children {
                go(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }
}

pub(crate) fn events_for(events: &[TraceEvent], op: u64) -> Vec<TraceEvent> {
    let mut evs: Vec<TraceEvent> = events.iter().filter(|e| e.op == op).copied().collect();
    // Emission order is not time order: a send emits its future delivery
    // event immediately. Stable-sort so ties keep emission order.
    evs.sort_by_key(|e| e.at);
    evs
}

/// All distinct operation ids present in the stream, ascending, excluding
/// [`NO_OP`].
pub fn ops(events: &[TraceEvent]) -> Vec<u64> {
    let set: BTreeSet<u64> = events
        .iter()
        .map(|e| e.op)
        .filter(|&o| o != NO_OP)
        .collect();
    set.into_iter().collect()
}

/// Rebuilds the per-stage latency breakdown for one operation.
///
/// Returns `None` if fewer than two events mention the op (no interval to
/// split). By construction the returned stage durations sum exactly to the
/// op's end-to-end latency.
///
/// This slice-only form cannot see the tracer ring's overflow counter, so
/// it assumes the stream is complete (`truncated` is never set). When the
/// events came from a [`Tracer`] that may have overflowed, use
/// [`op_breakdown_with_drops`] (or [`Tracer::op_breakdown`]) so a
/// decapitated op is flagged instead of silently mis-summed.
pub fn op_breakdown(events: &[TraceEvent], op: u64) -> Option<OpBreakdown> {
    op_breakdown_with_drops(events, op, 0)
}

/// [`op_breakdown`], overflow-aware: `dropped` is the tracer ring's
/// [`Tracer::dropped`] count for the stream `events` was captured from.
///
/// If the stream overflowed (`dropped > 0`) and the op's earliest surviving
/// event is not its `op_issue`, the op's head was discarded: the result is
/// marked [`OpBreakdown::truncated`] and covers only the surviving tail.
/// A [`Tracer`]'s whole-span eviction keeps surviving ops complete, so
/// streams captured from a tracer never trip this.
pub fn op_breakdown_with_drops(
    events: &[TraceEvent],
    op: u64,
    dropped: u64,
) -> Option<OpBreakdown> {
    breakdown_from_sorted(op, &events_for(events, op), dropped)
}

/// [`op_breakdown_with_drops`] over one op's already-gathered, time-sorted
/// events — the shared core, so bulk folds (simprof) can group a stream
/// once instead of re-scanning it per op.
pub(crate) fn breakdown_from_sorted(
    op: u64,
    evs: &[TraceEvent],
    dropped: u64,
) -> Option<OpBreakdown> {
    if evs.len() < 2 {
        return None;
    }
    let start = evs.first().unwrap().at;
    let end = evs.last().unwrap().at;
    let truncated = dropped > 0 && !matches!(evs[0].kind, TraceKind::OpIssue);
    let stages = evs
        .windows(2)
        .map(|w| Stage {
            label: format!("{}@n{}", w[1].kind.label(), w[1].node),
            start: w[0].at,
            end: w[1].at,
        })
        .collect();
    Some(OpBreakdown {
        op,
        start,
        end,
        stages,
        truncated,
    })
}

/// Rebuilds one operation's span tree: the op root, one child per
/// contiguous run of stages on the same node, and the stages as leaves.
pub fn span_tree(events: &[TraceEvent], op: u64) -> Option<SpanNode> {
    let evs = events_for(events, op);
    let bd = op_breakdown(events, op)?;
    let mut children: Vec<SpanNode> = Vec::new();
    for (stage, ev) in bd.stages.iter().zip(evs.iter().skip(1)) {
        let leaf = SpanNode {
            label: stage.label.clone(),
            start: stage.start,
            end: stage.end,
            children: Vec::new(),
        };
        let node_label = format!("node{}", ev.node);
        match children.last_mut() {
            Some(group) if group.label == node_label => {
                group.end = leaf.end;
                group.children.push(leaf);
            }
            _ => children.push(SpanNode {
                label: node_label,
                start: leaf.start,
                end: leaf.end,
                children: vec![leaf],
            }),
        }
    }
    Some(SpanNode {
        label: format!("op {}", op),
        start: bd.start,
        end: bd.end,
        children,
    })
}

pub(crate) fn ts_us(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1e3
}

/// Exports a trace stream as Chrome trace-event JSON (Perfetto-compatible).
///
/// Per-op stage spans become `"X"` complete events (`pid` = node, `tid` =
/// op), raw events become `"i"` instants with their payload in `args`.
/// Iteration order is fully deterministic, so same-seed runs produce
/// byte-identical output.
///
/// To interleave registry-sampled counter tracks with the span stream, use
/// [`crate::simprof::chrome_trace_with_counters`].
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.begin_arr_field("traceEvents");
    write_chrome_events(&mut w, events);
    w.end_arr();
    w.field_str("displayTimeUnit", "ns");
    w.end_obj();
    w.finish()
}

/// Writes the span/instant event stream into an already-open
/// `traceEvents` array (shared by [`chrome_trace_json`] and the
/// counter-track export in [`crate::simprof`]).
pub(crate) fn write_chrome_events(w: &mut JsonWriter, events: &[TraceEvent]) {
    let nodes: BTreeSet<u32> = events
        .iter()
        .map(|e| e.node)
        .filter(|&n| n != NO_NODE)
        .collect();
    for n in &nodes {
        w.begin_obj();
        w.field_str("ph", "M");
        w.field_u64("pid", *n as u64);
        w.field_str("name", "process_name");
        w.begin_obj_field("args");
        w.field_str("name", &format!("node{n}"));
        w.end_obj();
        w.end_obj();
    }

    for op in ops(events) {
        let evs = events_for(events, op);
        if let Some(bd) = op_breakdown(events, op) {
            for (stage, ev) in bd.stages.iter().zip(evs.iter().skip(1)) {
                w.begin_obj();
                w.field_str("ph", "X");
                w.field_str("name", ev.kind.label());
                w.field_u64("pid", ev.node as u64);
                w.field_u64("tid", op);
                w.field_f64("ts", ts_us(stage.start));
                w.field_f64("dur", ts_us(stage.end) - ts_us(stage.start));
                w.begin_obj_field("args");
                w.field_u64("op", op);
                ev.kind.write_args(w);
                w.end_obj();
                w.end_obj();
            }
        }
    }

    for ev in events {
        w.begin_obj();
        w.field_str("ph", "i");
        w.field_str("s", "t");
        w.field_str("name", ev.kind.label());
        w.field_u64("pid", ev.node as u64);
        w.field_u64("tid", if ev.op == NO_OP { 0 } else { ev.op });
        w.field_f64("ts", ts_us(ev.at));
        w.begin_obj_field("args");
        if ev.op != NO_OP {
            w.field_u64("op", ev.op);
        }
        ev.kind.write_args(w);
        w.end_obj();
        w.end_obj();
    }
}

/// A unified, named metrics store: counters, gauges and latency histograms.
///
/// Each simulator crate exposes an `export_into(&self, reg, prefix)` method
/// on its stats struct that snapshots into a registry under a dotted prefix
/// (`"fabric.wqes_executed"`, `"sched.preemptions"`, …). Benches then
/// serialise the registry once, uniformly, instead of hand-formatting four
/// different structs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter (creating it at zero).
    ///
    /// For *deltas*. An `export_into` impl snapshotting a cumulative total
    /// must use [`MetricsRegistry::counter_set`] instead — adding a
    /// snapshot double-counts as soon as the exporter runs twice.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the named counter to an absolute value, overwriting any
    /// previous sample. Re-exporting the same snapshot is idempotent.
    pub fn counter_set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records one latency sample into the named histogram.
    pub fn record(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Merges a whole histogram into the named histogram.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Counter value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serialises the registry as one JSON object (deterministic order).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.begin_obj_field("counters");
        for (k, v) in &self.counters {
            w.field_u64(k, *v);
        }
        w.end_obj();
        w.begin_obj_field("gauges");
        for (k, v) in &self.gauges {
            w.field_f64(k, *v);
        }
        w.end_obj();
        w.begin_obj_field("histograms");
        for (k, h) in &self.histograms {
            w.begin_obj_field(k);
            let s = h.summary();
            w.field_u64("count", s.count);
            w.field_u64("mean_ns", s.mean.as_nanos());
            w.field_u64("p50_ns", s.p50.as_nanos());
            w.field_u64("p95_ns", s.p95.as_nanos());
            w.field_u64("p99_ns", s.p99.as_nanos());
            w.field_u64("p999_ns", s.p999.as_nanos());
            w.field_u64("min_ns", s.min.as_nanos());
            w.field_u64("max_ns", s.max.as_nanos());
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
    }

    /// The registry as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let _t = crate::hostprof::scope("jsonw.export");
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, node: u32, op: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            node,
            op,
            kind,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.emit(SimTime::ZERO, 0, 1, TraceKind::OpIssue);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::enabled(2);
        for i in 0..5u64 {
            t.emit(SimTime::from_nanos(i), 0, i, TraceKind::OpIssue);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let evs = t.events();
        assert_eq!(evs[0].op, 3);
        assert_eq!(evs[1].op, 4);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = Tracer::enabled(16);
        let b = a.clone();
        b.emit(SimTime::ZERO, 1, 9, TraceKind::OpAck);
        assert_eq!(a.len(), 1);
        assert_eq!(a.events()[0].node, 1);
    }

    #[test]
    fn breakdown_partitions_the_op_interval() {
        let evs = vec![
            ev(100, 0, 5, TraceKind::OpIssue),
            ev(130, 0, 5, TraceKind::MetaSend { replica: 0 }),
            ev(250, 1, 5, TraceKind::WaitRelease { qp: 3 }),
            ev(400, 1, 5, TraceKind::Dma { bytes: 64 }),
            ev(700, 0, 5, TraceKind::OpAck),
            ev(710, 2, 8, TraceKind::OpIssue), // different op, ignored
        ];
        let bd = op_breakdown(&evs, 5).unwrap();
        assert_eq!(bd.total(), SimDuration::from_nanos(600));
        assert_eq!(bd.stages.len(), 4);
        let sum: u64 = bd.stages.iter().map(|s| s.duration().as_nanos()).sum();
        assert_eq!(sum, 600);
        assert_eq!(bd.stages[0].label, "meta_send@n0");
        assert_eq!(bd.stages[1].label, "wait_release@n1");
        assert_eq!(bd.stages[3].label, "op_ack@n0");
        assert!(!bd.truncated, "a complete op must not be flagged");
        assert!(op_breakdown(&evs, 8).is_none());
        assert!(op_breakdown(&evs, 999).is_none());
        assert_eq!(ops(&evs), vec![5, 8]);
    }

    #[test]
    fn overflowed_ring_evicts_whole_spans_never_heads() {
        // A 4-slot ring sees two ops; op 2's traffic overflows the ring
        // while op 1's four events fill it. Whole-span eviction removes op
        // 1 entirely instead of decapitating it.
        let t = Tracer::enabled(4);
        t.emit(SimTime::from_nanos(0), 0, 1, TraceKind::OpIssue);
        t.emit(
            SimTime::from_nanos(10),
            0,
            1,
            TraceKind::MetaSend { replica: 0 },
        );
        t.emit(SimTime::from_nanos(40), 1, 1, TraceKind::Dma { bytes: 64 });
        t.emit(SimTime::from_nanos(90), 0, 1, TraceKind::OpAck);
        t.emit(SimTime::from_nanos(100), 0, 2, TraceKind::OpIssue);
        t.emit(SimTime::from_nanos(190), 0, 2, TraceKind::OpAck);
        assert_eq!(t.dropped(), 4, "all four op-1 events were evicted");
        assert_eq!(t.dropped_ops(), 1);

        // Op 1 is gone entirely: no headless partial span to mis-sum.
        assert!(t.op_breakdown(1).is_none(), "evicted op must not resurface");

        // Op 2 survives whole, with its op_issue head.
        let bd2 = t.op_breakdown(2).unwrap();
        assert!(!bd2.truncated);
        assert_eq!(bd2.total(), SimDuration::from_nanos(90));
        assert!(matches!(t.events()[0].kind, TraceKind::OpIssue));

        // A late straggler from the evicted op stays suppressed.
        t.emit(SimTime::from_nanos(200), 1, 1, TraceKind::Dma { bytes: 8 });
        assert!(t.op_breakdown(1).is_none());
        assert_eq!(t.dropped(), 5);
        assert_eq!(t.len(), 2);

        // Every surviving op starts at its op_issue: nothing is truncated.
        for op in ops(&t.events()) {
            assert!(!t.op_breakdown(op).unwrap().truncated);
        }
    }

    #[test]
    fn span_tree_groups_consecutive_stages_by_node() {
        let evs = vec![
            ev(0, 0, 1, TraceKind::OpIssue),
            ev(10, 0, 1, TraceKind::MetaSend { replica: 0 }),
            ev(30, 1, 1, TraceKind::WaitRelease { qp: 0 }),
            ev(50, 1, 1, TraceKind::Dma { bytes: 8 }),
            ev(90, 0, 1, TraceKind::OpAck),
        ];
        let tree = span_tree(&evs, 1).unwrap();
        assert_eq!(tree.label, "op 1");
        assert_eq!(tree.duration(), SimDuration::from_nanos(90));
        let groups: Vec<&str> = tree.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(groups, vec!["node0", "node1", "node0"]);
        assert_eq!(tree.children[1].children.len(), 2);
        // The node groups tile the op interval.
        assert_eq!(tree.children.first().unwrap().start, tree.start);
        assert_eq!(tree.children.last().unwrap().end, tree.end);
        for w in tree.children.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let text = tree.render();
        assert!(text.contains("op 1"));
        assert!(text.contains("  node1"));
    }

    #[test]
    fn chrome_export_is_valid_shape_and_deterministic() {
        let evs = vec![
            ev(1000, 0, 2, TraceKind::OpIssue),
            ev(1500, 1, 2, TraceKind::Cqe { cq: 0, ok: true }),
            ev(1600, 1, NO_OP, TraceKind::CacheEvict { bytes: 128 }),
        ];
        let a = chrome_trace_json(&evs);
        let b = chrome_trace_json(&evs);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"name\":\"cqe\""));
        assert!(a.contains("\"ts\":1"));
        assert!(a.ends_with("\"displayTimeUnit\":\"ns\"}"));
    }

    #[test]
    fn registry_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("fabric.wqes", 3);
        r.counter_add("fabric.wqes", 2);
        r.set_gauge("sched.util", 0.75);
        r.record("op.latency", SimDuration::from_micros(5));
        r.record("op.latency", SimDuration::from_micros(7));
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(100));
        r.merge_histogram("op.latency", &h);

        assert_eq!(r.counter("fabric.wqes"), Some(5));
        assert_eq!(r.gauge("sched.util"), Some(0.75));
        assert_eq!(r.histogram("op.latency").unwrap().count(), 3);
        assert_eq!(r.counter("missing"), None);

        let json = r.to_json();
        assert!(json.contains("\"fabric.wqes\":5"));
        assert!(json.contains("\"sched.util\":0.75"));
        assert!(json.contains("\"op.latency\":{\"count\":3"));
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn counter_set_is_idempotent_where_add_accumulates() {
        let mut r = MetricsRegistry::new();
        r.counter_set("snap.total", 7);
        r.counter_set("snap.total", 7);
        assert_eq!(r.counter("snap.total"), Some(7));
        r.counter_set("snap.total", 9);
        assert_eq!(r.counter("snap.total"), Some(9));
        r.counter_add("snap.total", 1);
        assert_eq!(r.counter("snap.total"), Some(10));
    }
}
