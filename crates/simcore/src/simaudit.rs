//! Online invariant auditing and streaming health tracking.
//!
//! `simtrace` records what happened and `simprof` explains where the time
//! went; `simaudit` *verifies* the run while it executes. An [`Audit`]
//! handle rides along inside a [`Tracer`] (see [`Tracer::with_audit`]) and
//! sees every trace event the instant it is emitted, plus out-of-band
//! [`Probe`]s from instrumented call sites (ack-time durability checks,
//! holding-pen depth, flow-control windows). A set of [`Auditor`]s checks
//! the paper's core invariants online and reports structured [`Violation`]
//! records — offending op id, sim time, human-readable detail and a causal
//! event excerpt — instead of letting a silent protocol bug masquerade as
//! a performance artifact.
//!
//! The standard auditor set ([`Audit::standard`]):
//!
//! * **durability** — in durable mode, every acked gWRITE's bytes must be
//!   flushed past the NIC-volatile-cache boundary before the client
//!   observes the ack (fed by [`Probe::AckDurability`] from the group
//!   client's ack path).
//! * **chain_order** — per (shard, epoch), generations are issued and
//!   acked contiguously and monotonically, and no completion precedes its
//!   op's issue.
//! * **flow_control** — issued − acked never exceeds the advertised
//!   window; the migration holding pen never exceeds its bound.
//! * **migration** — no in-flight op is lost across a cutover, the pause
//!   window stays bounded, and every penned op is reissued on the new
//!   epoch before the migration ends.
//! * **txn** — committed transactions applied exactly their staged writes,
//!   aborted transactions left no residue, no write lands without the
//!   covering lock, no two txns hold the same lock site, and every lock a
//!   txn acquired is released by the time it finishes (fed by the
//!   [`Probe::TxnBegin`] .. [`Probe::TxnAbort`] lifecycle probes).
//!
//! The second half of the module is streaming health: [`HealthMonitor`]
//! keeps a sliding window (ring of histograms) of per-shard ack latency,
//! classifies each shard as [`HealthState::Healthy`] / `Degraded` /
//! `Stalled` against a [`SloConfig`], and emits every state transition as
//! a [`TraceKind::HealthBreach`] Perfetto instant plus a serialisable
//! [`HealthSummary`] block for bench reports.
//!
//! Everything is deterministic: BTreeMap iteration, integer-nanosecond
//! arithmetic, and same-seed runs produce byte-identical violation and
//! health output.
//!
//! ```
//! use simcore::prelude::*;
//! use simcore::simaudit::{op_id_base, Audit, Probe};
//! use simcore::simtrace::TraceKind;
//!
//! let audit = Audit::standard();
//! let tracer = Tracer::disabled().with_audit(audit.clone());
//! let op = op_id_base(0, 0); // shard 0, epoch 0, seq 0
//! tracer.emit(SimTime::from_nanos(100), 0, op, TraceKind::OpIssue);
//! tracer.emit(SimTime::from_nanos(400), 0, op, TraceKind::OpAck);
//! audit.probe(
//!     SimTime::from_nanos(400),
//!     Probe::AckDurability { op, node: 1, durable: true },
//! );
//! assert_eq!(audit.violation_count(), 0);
//! ```

use crate::jsonw::JsonWriter;
use crate::simtrace::{
    txn_phase_label, MetricsRegistry, TraceEvent, TraceKind, Tracer, NO_NODE, NO_OP,
};
use crate::stats::Histogram;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Epoch-qualified op identity
// ---------------------------------------------------------------------------

/// Bit position of the shard index inside an op id / generation number.
///
/// Group generation numbers double as causal op ids on every hop, so the
/// id layout is the one contract every observability layer shares:
///
/// ```text
/// 63 ........ 40 39 ........ 20 19 ......... 0
///  shard index    shard epoch     sequence
/// ```
///
/// A shard's `first_gen` is `op_id_base(shard, epoch)`, which keeps ids
/// unique across shards *and* across migration cutovers: the replacement
/// chain continues at the next epoch instead of restarting generation
/// numbers, so trace spans survive a cutover.
pub const SHARD_GEN_SHIFT: u32 = 40;

/// Bit position of the shard epoch inside an op id (see
/// [`SHARD_GEN_SHIFT`] for the layout).
pub const EPOCH_GEN_SHIFT: u32 = 20;

/// Largest epoch representable in the 20-bit epoch field.
pub const EPOCH_GEN_MAX: u64 = (1 << (SHARD_GEN_SHIFT - EPOCH_GEN_SHIFT)) - 1;

/// Mask selecting the per-epoch sequence number of an op id.
pub const SEQ_GEN_MASK: u64 = (1 << EPOCH_GEN_SHIFT) - 1;

/// First generation number of `shard`'s chain at `epoch`.
///
/// The result is a multiple of any power-of-two `meta_slots ≤ 2^20`, so it
/// satisfies the group-config alignment rule for every supported layout.
///
/// # Panics
///
/// Panics if `epoch` exceeds [`EPOCH_GEN_MAX`].
pub fn op_id_base(shard: u32, epoch: u64) -> u64 {
    assert!(
        epoch <= EPOCH_GEN_MAX,
        "epoch {epoch} exceeds the {EPOCH_GEN_SHIFT}-bit op-id epoch field"
    );
    ((shard as u64) << SHARD_GEN_SHIFT) | (epoch << EPOCH_GEN_SHIFT)
}

/// Splits an op id into `(shard, epoch, seq)` (see [`SHARD_GEN_SHIFT`]).
pub fn op_id_parts(op: u64) -> (u32, u64, u64) {
    (
        (op >> SHARD_GEN_SHIFT) as u32,
        (op >> EPOCH_GEN_SHIFT) & EPOCH_GEN_MAX,
        op & SEQ_GEN_MASK,
    )
}

// ---------------------------------------------------------------------------
// Violations, probes and the auditor trait
// ---------------------------------------------------------------------------

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the auditor that fired ([`Auditor::name`]).
    pub auditor: &'static str,
    /// The offending op id ([`NO_OP`] when the violation is not
    /// attributable to a single op, e.g. a migration pause overrun).
    pub op: u64,
    /// Sim time at which the violation was detected.
    pub at: SimTime,
    /// Human-readable description of what was violated.
    pub detail: String,
    /// Causal excerpt: the most recent trace events mentioning the
    /// offending op (or the most recent events overall for [`NO_OP`]),
    /// oldest first.
    pub excerpt: Vec<TraceEvent>,
}

/// Out-of-band facts fed to auditors from instrumented call sites —
/// things the trace stream alone cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Ack-path durability check: at the moment the client observed the
    /// ack for a flushed write, were the write's bytes durable on this
    /// replica (past the NIC volatile cache)?
    AckDurability {
        /// The acked op.
        op: u64,
        /// Replica node that was checked.
        node: u32,
        /// Whether the full byte range was durable at ack time.
        durable: bool,
    },
    /// Holding-pen occupancy after a deferred op was penned.
    PenDepth {
        /// Shard whose pen was sampled.
        shard: u32,
        /// Current pen depth (ops).
        depth: u64,
        /// Configured pen capacity.
        capacity: u64,
    },
    /// Advertises a shard's flow-control window to the auditors
    /// (typically probed once at setup).
    Window {
        /// Shard the window applies to.
        shard: u32,
        /// Maximum allowed issued − acked.
        window: u64,
    },
    /// A multi-key transaction began.
    TxnBegin {
        /// Transaction id (the txn layer's own counter space).
        txn: u64,
    },
    /// A transaction acquired a write-lock site group-wide.
    TxnLock {
        /// Acquiring transaction.
        txn: u64,
        /// Shard owning the lock word.
        shard: u32,
        /// Lock id within that shard's table.
        lock: u32,
    },
    /// A transaction released a write-lock site.
    TxnUnlock {
        /// Releasing transaction.
        txn: u64,
        /// Shard owning the lock word.
        shard: u32,
        /// Lock id within that shard's table.
        lock: u32,
    },
    /// One buffered write of a transaction was applied (its durable gWRITE
    /// acknowledged), attributed to the lock site covering the key.
    TxnWrite {
        /// Writing transaction.
        txn: u64,
        /// Shard the write landed on.
        shard: u32,
        /// Lock id covering the written key.
        lock: u32,
    },
    /// A transaction finished committed.
    TxnCommit {
        /// The committed transaction.
        txn: u64,
        /// Writes the transaction staged (all must have applied).
        writes: u64,
    },
    /// A transaction finished aborted.
    TxnAbort {
        /// The aborted transaction.
        txn: u64,
    },
}

/// Reporting context handed to auditors: collects violations and carries
/// the recent-event history the excerpts are cut from.
pub struct AuditCtx<'a> {
    history: &'a VecDeque<TraceEvent>,
    violations: &'a mut Vec<Violation>,
    by_auditor: &'a mut BTreeMap<&'static str, u64>,
    total: &'a mut u64,
}

/// Cap on fully-materialised violation records; the total count keeps
/// incrementing past it so gates still see the true number.
const MAX_RECORDED: usize = 1024;

/// Events kept in the excerpt-history ring.
const HISTORY_CAP: usize = 256;

/// Events included in a violation's causal excerpt.
const EXCERPT_LEN: usize = 8;

impl AuditCtx<'_> {
    /// Records one violation, attaching a causal excerpt of the most
    /// recent events mentioning `op` (or the most recent events overall
    /// when `op` is [`NO_OP`]).
    pub fn report(&mut self, auditor: &'static str, op: u64, at: SimTime, detail: String) {
        *self.total += 1;
        *self.by_auditor.entry(auditor).or_insert(0) += 1;
        if self.violations.len() >= MAX_RECORDED {
            return;
        }
        let mut excerpt: Vec<TraceEvent> = self
            .history
            .iter()
            .rev()
            .filter(|e| op == NO_OP || e.op == op)
            .take(EXCERPT_LEN)
            .copied()
            .collect();
        excerpt.reverse();
        self.violations.push(Violation {
            auditor,
            op,
            at,
            detail,
            excerpt,
        });
    }
}

/// An online invariant checker.
///
/// Auditors are registered with an [`Audit`] handle and receive every
/// trace event (via the tracer tap) and every [`Probe`] the instrumented
/// code fires. They must not emit trace events themselves — the tap runs
/// inside [`Tracer::emit`].
pub trait Auditor {
    /// Stable snake_case name used in reports and metric keys.
    fn name(&self) -> &'static str;

    /// Observes one trace event, in emission order.
    fn on_event(&mut self, _ctx: &mut AuditCtx<'_>, _ev: &TraceEvent) {}

    /// Observes one out-of-band probe.
    fn on_probe(&mut self, _ctx: &mut AuditCtx<'_>, _at: SimTime, _probe: &Probe) {}
}

// ---------------------------------------------------------------------------
// The Audit handle
// ---------------------------------------------------------------------------

struct AuditInner {
    auditors: Vec<Box<dyn Auditor>>,
    history: VecDeque<TraceEvent>,
    violations: Vec<Violation>,
    by_auditor: BTreeMap<&'static str, u64>,
    total: u64,
}

impl AuditInner {
    fn on_event(&mut self, ev: &TraceEvent) {
        if self.history.len() >= HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(*ev);
        let mut ctx = AuditCtx {
            history: &self.history,
            violations: &mut self.violations,
            by_auditor: &mut self.by_auditor,
            total: &mut self.total,
        };
        for a in &mut self.auditors {
            a.on_event(&mut ctx, ev);
        }
    }

    fn on_probe(&mut self, at: SimTime, probe: &Probe) {
        let mut ctx = AuditCtx {
            history: &self.history,
            violations: &mut self.violations,
            by_auditor: &mut self.by_auditor,
            total: &mut self.total,
        };
        for a in &mut self.auditors {
            a.on_probe(&mut ctx, at, probe);
        }
    }
}

/// Cheap, cloneable handle to a shared set of online auditors.
///
/// A default-constructed (or [`Audit::disabled`]) handle carries no
/// auditors and costs one branch per event. Clones share one state, so
/// the same handle can ride inside every [`Tracer`] clone handed to the
/// fabric, the schedulers and the clients while the bench keeps a
/// reading clone for the final report.
#[derive(Clone, Default)]
pub struct Audit {
    inner: Option<Rc<RefCell<AuditInner>>>,
}

impl fmt::Debug for Audit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Audit")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Audit {
    /// An audit handle that checks nothing (the default).
    pub fn disabled() -> Self {
        Audit { inner: None }
    }

    /// An audit handle running the given auditors.
    pub fn new(auditors: Vec<Box<dyn Auditor>>) -> Self {
        Audit {
            inner: Some(Rc::new(RefCell::new(AuditInner {
                auditors,
                history: VecDeque::with_capacity(HISTORY_CAP),
                violations: Vec::new(),
                by_auditor: BTreeMap::new(),
                total: 0,
            }))),
        }
    }

    /// The standard auditor set: durability, chain order, flow control,
    /// migration safety (with the default pause bound) and transactional
    /// atomicity/isolation.
    pub fn standard() -> Self {
        Audit::new(vec![
            Box::new(DurabilityAuditor),
            Box::new(ChainOrderAuditor::default()),
            Box::new(FlowControlAuditor::default()),
            Box::new(MigrationAuditor::default()),
            Box::new(TxnAuditor::default()),
        ])
    }

    /// True if this handle runs auditors.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Feeds one trace event to every auditor. No-op (one branch) when
    /// disabled. Called by the [`Tracer`] tap; call directly only when
    /// replaying a captured stream.
    #[inline]
    pub fn on_event(&self, ev: &TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().on_event(ev);
        }
    }

    /// Feeds one out-of-band probe to every auditor. No-op when disabled.
    #[inline]
    pub fn probe(&self, at: SimTime, probe: Probe) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().on_probe(at, &probe);
        }
    }

    /// Total violations detected so far (including any past the record
    /// cap).
    pub fn violation_count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().total)
    }

    /// Snapshot of the recorded violation records, oldest first.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().violations.clone())
    }

    /// Snapshots violation totals into a registry under `prefix`:
    /// `{prefix}.violations` plus one `{prefix}.{auditor}.violations` per
    /// registered auditor (zero included). Uses absolute
    /// [`MetricsRegistry::counter_set`] writes, so re-export is
    /// idempotent.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let Some(inner) = &self.inner else { return };
        let inner = inner.borrow();
        reg.counter_set(&format!("{prefix}.violations"), inner.total);
        for a in &inner.auditors {
            let name = a.name();
            let n = inner.by_auditor.get(name).copied().unwrap_or(0);
            reg.counter_set(&format!("{prefix}.{name}.violations"), n);
        }
    }

    /// Renders the violations as a human-readable report (empty string
    /// when clean).
    pub fn report(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let inner = inner.borrow();
        if inner.total == 0 {
            return String::new();
        }
        let mut out = format!("{} violation(s) detected\n", inner.total);
        for v in &inner.violations {
            let (shard, epoch, seq) = op_id_parts(v.op);
            if v.op == NO_OP {
                out.push_str(&format!("[{}] at {}: {}\n", v.auditor, v.at, v.detail));
            } else {
                out.push_str(&format!(
                    "[{}] op {:#x} (shard {shard}, epoch {epoch}, seq {seq}) at {}: {}\n",
                    v.auditor, v.op, v.at, v.detail
                ));
            }
            for e in &v.excerpt {
                out.push_str(&format!("    {} n{} {}\n", e.at, e.node, e.kind.label()));
            }
        }
        out
    }

    /// Serialises the audit state as one deterministic JSON object:
    /// total, per-auditor counts and the recorded violation records with
    /// their causal excerpts.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        match &self.inner {
            None => {
                w.field_bool("enabled", false);
                w.field_u64("violations", 0);
            }
            Some(inner) => {
                let inner = inner.borrow();
                w.field_bool("enabled", true);
                w.field_u64("violations", inner.total);
                w.begin_obj_field("by_auditor");
                for a in &inner.auditors {
                    let name = a.name();
                    w.field_u64(name, inner.by_auditor.get(name).copied().unwrap_or(0));
                }
                w.end_obj();
                w.begin_arr_field("records");
                for v in &inner.violations {
                    w.begin_obj();
                    w.field_str("auditor", v.auditor);
                    w.field_u64("op", v.op);
                    w.field_u64("at_ns", v.at.as_nanos());
                    w.field_str("detail", &v.detail);
                    w.begin_arr_field("excerpt");
                    for e in &v.excerpt {
                        w.begin_obj();
                        w.field_u64("at_ns", e.at.as_nanos());
                        w.field_u64("node", e.node as u64);
                        w.field_u64("op", e.op);
                        w.field_str("kind", e.kind.label());
                        w.end_obj();
                    }
                    w.end_arr();
                    w.end_obj();
                }
                w.end_arr();
            }
        }
        w.end_obj();
        w.finish()
    }
}

// ---------------------------------------------------------------------------
// Concrete auditors
// ---------------------------------------------------------------------------

/// Checks that every acked flushed write was durable (past the NIC
/// volatile cache) on every replica at the moment the client observed
/// the ack. Fed by [`Probe::AckDurability`] from the group client's ack
/// path; the trace stream alone cannot see media state.
#[derive(Debug, Default)]
pub struct DurabilityAuditor;

impl Auditor for DurabilityAuditor {
    fn name(&self) -> &'static str {
        "durability"
    }

    fn on_probe(&mut self, ctx: &mut AuditCtx<'_>, at: SimTime, probe: &Probe) {
        if let Probe::AckDurability { op, node, durable } = *probe {
            if !durable {
                ctx.report(
                    self.name(),
                    op,
                    at,
                    format!("acked flushed write not durable on node {node} at ack time"),
                );
            }
        }
    }
}

#[derive(Debug, Default)]
struct ChainState {
    issued: u64,
    acked: u64,
    issue_at: BTreeMap<u64, SimTime>,
}

/// Checks per-(shard, epoch) ordering: generations are issued and acked
/// contiguously from sequence 0, every ack matches a prior issue, and no
/// completion-queue entry for a tracked op precedes that op's issue.
#[derive(Debug, Default)]
pub struct ChainOrderAuditor {
    chains: BTreeMap<(u32, u64), ChainState>,
}

impl Auditor for ChainOrderAuditor {
    fn name(&self) -> &'static str {
        "chain_order"
    }

    fn on_event(&mut self, ctx: &mut AuditCtx<'_>, ev: &TraceEvent) {
        if ev.op == NO_OP {
            return;
        }
        let name = self.name();
        let (shard, epoch, seq) = op_id_parts(ev.op);
        match ev.kind {
            TraceKind::OpIssue => {
                let st = self.chains.entry((shard, epoch)).or_default();
                if seq != st.issued {
                    ctx.report(
                        name,
                        ev.op,
                        ev.at,
                        format!(
                            "issue out of order on shard {shard} epoch {epoch}: \
                             expected seq {}, got {seq}",
                            st.issued
                        ),
                    );
                }
                st.issued = st.issued.max(seq + 1);
                st.issue_at.insert(seq, ev.at);
            }
            TraceKind::OpAck => {
                let st = self.chains.entry((shard, epoch)).or_default();
                if !st.issue_at.contains_key(&seq) {
                    ctx.report(
                        name,
                        ev.op,
                        ev.at,
                        format!("acked op was never issued on shard {shard} epoch {epoch}"),
                    );
                }
                if seq != st.acked {
                    ctx.report(
                        name,
                        ev.op,
                        ev.at,
                        format!(
                            "ack out of order on shard {shard} epoch {epoch}: \
                             expected seq {}, got {seq}",
                            st.acked
                        ),
                    );
                }
                st.acked = st.acked.max(seq + 1);
            }
            TraceKind::Cqe { .. } => {
                // Only tracked ops: pre-posted RECVs complete with wr_id 0
                // and migration copy WQEs with NO_OP, neither of which maps
                // to an issued generation.
                if let Some(st) = self.chains.get(&(shard, epoch)) {
                    if let Some(&t0) = st.issue_at.get(&seq) {
                        if ev.at < t0 {
                            ctx.report(
                                name,
                                ev.op,
                                ev.at,
                                format!("completion at {} precedes its op's issue at {t0}", ev.at),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Checks flow control: per shard, issued − acked never exceeds the
/// window advertised via [`Probe::Window`], and the migration holding
/// pen never exceeds its capacity ([`Probe::PenDepth`]).
#[derive(Debug, Default)]
pub struct FlowControlAuditor {
    windows: BTreeMap<u32, u64>,
    in_flight: BTreeMap<u32, u64>,
}

impl Auditor for FlowControlAuditor {
    fn name(&self) -> &'static str {
        "flow_control"
    }

    fn on_event(&mut self, ctx: &mut AuditCtx<'_>, ev: &TraceEvent) {
        if ev.op == NO_OP {
            return;
        }
        let name = self.name();
        let (shard, _, _) = op_id_parts(ev.op);
        match ev.kind {
            TraceKind::OpIssue => {
                let fl = self.in_flight.entry(shard).or_insert(0);
                *fl += 1;
                if let Some(&w) = self.windows.get(&shard) {
                    if *fl > w {
                        ctx.report(
                            name,
                            ev.op,
                            ev.at,
                            format!("window overrun on shard {shard}: {fl} in flight > window {w}"),
                        );
                    }
                }
            }
            TraceKind::OpAck => {
                let fl = self.in_flight.entry(shard).or_insert(0);
                *fl = fl.saturating_sub(1);
            }
            _ => {}
        }
    }

    fn on_probe(&mut self, ctx: &mut AuditCtx<'_>, at: SimTime, probe: &Probe) {
        match *probe {
            Probe::Window { shard, window } => {
                self.windows.insert(shard, window);
            }
            Probe::PenDepth {
                shard,
                depth,
                capacity,
            } if depth > capacity => {
                ctx.report(
                    self.name(),
                    NO_OP,
                    at,
                    format!(
                        "holding pen overflow on shard {shard}: depth {depth} > capacity {capacity}"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Default bound on the write-pause window of a migration before the
/// migration auditor flags it.
pub const DEFAULT_MAX_PAUSE: SimDuration = SimDuration::from_millis(250);

#[derive(Debug)]
struct MigState {
    begin_at: SimTime,
    pen_peak: u64,
    new_epoch: Option<u64>,
}

/// Checks migration safety: no in-flight op outstanding at the cutover
/// (nothing acked can be lost), the write-pause window stays under a
/// configurable bound, and by the time the migration ends the new epoch
/// has reissued at least as many ops as the pen held at cutover (no
/// penned op silently dropped).
#[derive(Debug)]
pub struct MigrationAuditor {
    max_pause: SimDuration,
    issued: BTreeMap<(u32, u64), u64>,
    acked: BTreeMap<(u32, u64), u64>,
    active_epoch: BTreeMap<u32, u64>,
    migrating: BTreeMap<u32, MigState>,
}

impl Default for MigrationAuditor {
    fn default() -> Self {
        MigrationAuditor::with_max_pause(DEFAULT_MAX_PAUSE)
    }
}

impl MigrationAuditor {
    /// A migration auditor flagging pauses longer than `max_pause`.
    pub fn with_max_pause(max_pause: SimDuration) -> Self {
        MigrationAuditor {
            max_pause,
            issued: BTreeMap::new(),
            acked: BTreeMap::new(),
            active_epoch: BTreeMap::new(),
            migrating: BTreeMap::new(),
        }
    }
}

impl Auditor for MigrationAuditor {
    fn name(&self) -> &'static str {
        "migration"
    }

    fn on_event(&mut self, ctx: &mut AuditCtx<'_>, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::OpIssue if ev.op != NO_OP => {
                let (shard, epoch, _) = op_id_parts(ev.op);
                *self.issued.entry((shard, epoch)).or_insert(0) += 1;
                let e = self.active_epoch.entry(shard).or_insert(epoch);
                *e = (*e).max(epoch);
            }
            TraceKind::OpAck if ev.op != NO_OP => {
                let (shard, epoch, _) = op_id_parts(ev.op);
                *self.acked.entry((shard, epoch)).or_insert(0) += 1;
            }
            TraceKind::MigrateBegin { shard } => {
                self.migrating.insert(
                    shard,
                    MigState {
                        begin_at: ev.at,
                        pen_peak: 0,
                        new_epoch: None,
                    },
                );
            }
            TraceKind::MigrateCutover { shard, epoch } => {
                if let Some(st) = self.migrating.get_mut(&shard) {
                    let pause = ev.at.since(st.begin_at);
                    if pause > self.max_pause {
                        ctx.report(
                            "migration",
                            NO_OP,
                            ev.at,
                            format!(
                                "pause window {pause} on shard {shard} exceeds bound {}",
                                self.max_pause
                            ),
                        );
                    }
                    let old = self.active_epoch.get(&shard).copied().unwrap_or(0);
                    let outstanding = self.issued.get(&(shard, old)).copied().unwrap_or(0)
                        - self.acked.get(&(shard, old)).copied().unwrap_or(0);
                    if outstanding != 0 {
                        ctx.report(
                            "migration",
                            NO_OP,
                            ev.at,
                            format!(
                                "{outstanding} in-flight op(s) on shard {shard} epoch {old} \
                                 lost at cutover to epoch {epoch}"
                            ),
                        );
                    }
                    st.new_epoch = Some(epoch);
                }
                self.active_epoch.insert(shard, epoch);
            }
            TraceKind::MigrateEnd { shard, .. } => {
                if let Some(st) = self.migrating.remove(&shard) {
                    if let Some(ne) = st.new_epoch {
                        let reissued = self.issued.get(&(shard, ne)).copied().unwrap_or(0);
                        if reissued < st.pen_peak {
                            ctx.report(
                                "migration",
                                NO_OP,
                                ev.at,
                                format!(
                                    "penned op dropped on shard {shard}: only {reissued} \
                                     reissued on epoch {ne} of {} penned at cutover",
                                    st.pen_peak
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_probe(&mut self, _ctx: &mut AuditCtx<'_>, _at: SimTime, probe: &Probe) {
        if let Probe::PenDepth { shard, depth, .. } = *probe {
            if let Some(st) = self.migrating.get_mut(&shard) {
                st.pen_peak = st.pen_peak.max(depth);
            }
        }
    }
}

#[derive(Debug, Default)]
struct TxnState {
    applied: u64,
    locks: Vec<(u32, u32)>,
}

/// Checks transactional atomicity and isolation from the txn lifecycle
/// probes ([`Probe::TxnBegin`] .. [`Probe::TxnAbort`]):
///
/// * a committed txn applied exactly the writes it staged (a dropped write
///   is blamed on the txn that committed without it);
/// * an aborted txn applied none — aborts leave no residue;
/// * a write is applied only while its txn holds the covering lock site,
///   and no two txns hold the same site at once — so no committed txn can
///   observe another's partial writes;
/// * every lock a txn acquired is released by the time it reports
///   committed or aborted (no lock-word leak);
/// * txn phase spans pair up: every [`TraceKind::TxnPhaseBegin`] closes
///   with a matching [`TraceKind::TxnPhaseEnd`] before the next opens, so
///   downstream phase attribution tiles without guesswork.
#[derive(Debug, Default)]
pub struct TxnAuditor {
    /// Lock site → holding txn.
    held: BTreeMap<(u32, u32), u64>,
    /// Live txns.
    txns: BTreeMap<u64, TxnState>,
    /// Txn → phase code of its currently open trace span.
    phase: BTreeMap<u64, u8>,
}

impl TxnAuditor {
    fn finish(&mut self, ctx: &mut AuditCtx<'_>, at: SimTime, txn: u64) -> TxnState {
        let st = self.txns.remove(&txn).unwrap_or_default();
        for site in &st.locks {
            ctx.report(
                "txn",
                NO_OP,
                at,
                format!(
                    "lock leak: txn {txn} finished still holding lock {} on shard {}",
                    site.1, site.0
                ),
            );
            self.held.remove(site);
        }
        st
    }
}

impl Auditor for TxnAuditor {
    fn name(&self) -> &'static str {
        "txn"
    }

    fn on_event(&mut self, ctx: &mut AuditCtx<'_>, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::TxnPhaseBegin { txn, phase, .. } => {
                if let Some(open) = self.phase.insert(txn, phase) {
                    ctx.report(
                        "txn",
                        ev.op,
                        ev.at,
                        format!(
                            "phase pairing: txn {txn} opened {} while {} is still open",
                            txn_phase_label(phase),
                            txn_phase_label(open)
                        ),
                    );
                }
            }
            TraceKind::TxnPhaseEnd { txn, phase, .. } => match self.phase.remove(&txn) {
                Some(open) if open == phase => {}
                Some(open) => ctx.report(
                    "txn",
                    ev.op,
                    ev.at,
                    format!(
                        "phase pairing: txn {txn} closed {} but {} is open",
                        txn_phase_label(phase),
                        txn_phase_label(open)
                    ),
                ),
                None => ctx.report(
                    "txn",
                    ev.op,
                    ev.at,
                    format!(
                        "phase pairing: txn {txn} closed {} with no span open",
                        txn_phase_label(phase)
                    ),
                ),
            },
            _ => {}
        }
    }

    fn on_probe(&mut self, ctx: &mut AuditCtx<'_>, at: SimTime, probe: &Probe) {
        match *probe {
            Probe::TxnBegin { txn } => {
                let reused = self.txns.insert(txn, TxnState::default()).is_some();
                if reused {
                    ctx.report("txn", NO_OP, at, format!("txn id {txn} reused while live"));
                }
            }
            Probe::TxnLock { txn, shard, lock } => {
                let site = (shard, lock);
                if let Some(&holder) = self.held.get(&site) {
                    ctx.report(
                        "txn",
                        NO_OP,
                        at,
                        format!(
                            "isolation: txn {txn} acquired lock {lock} on shard {shard} \
                             already held by txn {holder}"
                        ),
                    );
                }
                self.held.insert(site, txn);
                self.txns.entry(txn).or_default().locks.push(site);
            }
            Probe::TxnUnlock { txn, shard, lock } => {
                let site = (shard, lock);
                let st = self.txns.entry(txn).or_default();
                match st.locks.iter().position(|s| *s == site) {
                    Some(i) => {
                        st.locks.swap_remove(i);
                        self.held.remove(&site);
                    }
                    None => ctx.report(
                        "txn",
                        NO_OP,
                        at,
                        format!("txn {txn} released lock {lock} on shard {shard} it never held"),
                    ),
                }
            }
            Probe::TxnWrite { txn, shard, lock } => {
                let site = (shard, lock);
                let st = self.txns.entry(txn).or_default();
                st.applied += 1;
                if !st.locks.contains(&site) {
                    ctx.report(
                        "txn",
                        NO_OP,
                        at,
                        format!(
                            "isolation: txn {txn} applied a write to shard {shard} without \
                             holding lock {lock}"
                        ),
                    );
                }
            }
            Probe::TxnCommit { txn, writes } => {
                let st = self.finish(ctx, at, txn);
                if st.applied != writes {
                    ctx.report(
                        "txn",
                        NO_OP,
                        at,
                        format!(
                            "atomicity: txn {txn} committed with {} of {writes} staged \
                             write(s) applied",
                            st.applied
                        ),
                    );
                }
            }
            Probe::TxnAbort { txn } => {
                let st = self.finish(ctx, at, txn);
                if st.applied != 0 {
                    ctx.report(
                        "txn",
                        NO_OP,
                        at,
                        format!(
                            "atomicity: aborted txn {txn} left residue — {} write(s) applied",
                            st.applied
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming health / SLO tracking
// ---------------------------------------------------------------------------

/// Health classification of one shard against its [`SloConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Sliding-window latency within the SLO and acks flowing.
    Healthy = 0,
    /// Window p50 or p99 above the SLO threshold.
    Degraded = 1,
    /// Ops in flight but no ack for longer than the stall bound.
    Stalled = 2,
}

impl HealthState {
    /// Stable lowercase name used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Stalled => "stalled",
        }
    }

    /// Numeric code carried in [`TraceKind::HealthBreach`] and gauges.
    pub fn code(self) -> u8 {
        self as u8
    }
}

/// Service-level objective thresholds for the [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Width of one sliding-window bucket.
    pub bucket: SimDuration,
    /// Number of buckets in the sliding window (window span =
    /// `bucket × buckets`).
    pub buckets: usize,
    /// Window p50 above this ⇒ [`HealthState::Degraded`].
    pub p50_max: SimDuration,
    /// Window p99 above this ⇒ [`HealthState::Degraded`].
    pub p99_max: SimDuration,
    /// No ack for this long while ops are in flight ⇒
    /// [`HealthState::Stalled`].
    pub stall_after: SimDuration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            bucket: SimDuration::from_micros(50),
            buckets: 8,
            p50_max: SimDuration::from_micros(50),
            p99_max: SimDuration::from_micros(200),
            stall_after: SimDuration::from_micros(500),
        }
    }
}

/// One health-state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// When the transition was detected (a [`HealthMonitor::tick`] time).
    pub at: SimTime,
    /// The shard that changed state.
    pub shard: u32,
    /// State before the transition.
    pub from: HealthState,
    /// State after the transition.
    pub to: HealthState,
}

#[derive(Debug)]
struct ShardTrack {
    ring: Vec<Option<(u64, Histogram)>>,
    overall: Histogram,
    state: HealthState,
    acks: u64,
    issued: u64,
    last_progress: SimTime,
    breaches: u64,
    /// First time the shard was seen (throughput interval anchor).
    born: SimTime,
    /// Latest holding-pen depth reported via
    /// [`HealthMonitor::record_pen_depth`].
    pen: u64,
    /// `(time, cumulative acks)` of the previous series sample.
    last_sample: Option<(SimTime, u64)>,
    /// Windowed telemetry ring, oldest point evicted past the cap.
    series: VecDeque<SeriesPoint>,
}

impl ShardTrack {
    fn new(buckets: usize, at: SimTime) -> Self {
        ShardTrack {
            ring: (0..buckets).map(|_| None).collect(),
            overall: Histogram::new(),
            state: HealthState::Healthy,
            acks: 0,
            issued: 0,
            last_progress: at,
            breaches: 0,
            born: at,
            pen: 0,
            last_sample: None,
            series: VecDeque::new(),
        }
    }

    fn record(&mut self, idx: u64, lat: SimDuration) {
        let slot = (idx as usize) % self.ring.len();
        match &mut self.ring[slot] {
            Some((i, h)) if *i == idx => h.record(lat),
            other => {
                let mut h = Histogram::new();
                h.record(lat);
                *other = Some((idx, h));
            }
        }
    }

    fn window(&self, cur_idx: u64) -> Histogram {
        let lo = cur_idx.saturating_sub(self.ring.len() as u64 - 1);
        let mut merged = Histogram::new();
        for slot in self.ring.iter().flatten() {
            if slot.0 >= lo && slot.0 <= cur_idx {
                merged.merge(&slot.1);
            }
        }
        merged
    }
}

/// Per-shard health summary row (see [`HealthSummary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: u32,
    /// Health state at summary time.
    pub state: HealthState,
    /// Total acks observed.
    pub acks: u64,
    /// Cumulative ack-latency p50.
    pub p50: SimDuration,
    /// Cumulative ack-latency p99.
    pub p99: SimDuration,
    /// Transitions into a non-healthy state.
    pub breaches: u64,
}

/// Serialisable health block for bench reports: per-shard states and
/// latency, total SLO breaches, and the audit violation total (filled in
/// by the bench from its [`Audit`] handle).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthSummary {
    /// Total invariant violations ([`Audit::violation_count`]).
    pub violations: u64,
    /// Total transitions into a non-healthy state, across shards.
    pub breaches: u64,
    /// Per-shard rows, shard-ordered.
    pub shards: Vec<ShardHealth>,
}

impl HealthSummary {
    /// Writes the block as fields of an already-open JSON object.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("violations", self.violations);
        w.field_u64("breaches", self.breaches);
        w.begin_arr_field("shards");
        for s in &self.shards {
            w.begin_obj();
            w.field_u64("shard", s.shard as u64);
            w.field_str("state", s.state.label());
            w.field_u64("acks", s.acks);
            w.field_u64("p50_ns", s.p50.as_nanos());
            w.field_u64("p99_ns", s.p99.as_nanos());
            w.field_u64("breaches", s.breaches);
            w.end_obj();
        }
        w.end_arr();
    }

    /// The block as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        self.write_fields(&mut w);
        w.end_obj();
        w.finish()
    }
}

/// One sampled point of a shard's windowed telemetry series, taken at a
/// [`HealthMonitor::tick`] boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Sample time (the tick time).
    pub at: SimTime,
    /// Acks per second over the interval since the previous point.
    pub ops_per_sec: f64,
    /// Sliding-window ack-latency p50 at sample time.
    pub p50: SimDuration,
    /// Sliding-window ack-latency p99 at sample time.
    pub p99: SimDuration,
    /// Window occupancy: ops issued but not yet acked at sample time.
    pub inflight: u64,
    /// Latest holding-pen depth reported via
    /// [`HealthMonitor::record_pen_depth`] (0 when never reported).
    pub pen: u64,
}

/// One shard's windowed telemetry series (time-ascending, strictly
/// increasing timestamps; the ring evicts the oldest point past the cap).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Shard index.
    pub shard: u32,
    /// The sampled points, oldest first.
    pub points: Vec<SeriesPoint>,
}

/// Serialisable `series` block for bench reports: per-shard windowed
/// telemetry sampled at [`HealthMonitor::tick`] boundaries — the substrate
/// an SLO-driven placement planner watches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSummary {
    /// The monitor's sliding-window bucket width (context for readers).
    pub bucket: SimDuration,
    /// Per-shard series, shard-ordered.
    pub shards: Vec<MetricSeries>,
}

impl SeriesSummary {
    /// Writes the block as fields of an already-open JSON object.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("bucket_ns", self.bucket.as_nanos());
        w.begin_arr_field("shards");
        for s in &self.shards {
            w.begin_obj();
            w.field_u64("shard", s.shard as u64);
            w.begin_arr_field("points");
            for p in &s.points {
                w.begin_obj();
                w.field_u64("t_ns", p.at.as_nanos());
                w.field_f64("ops_per_sec", p.ops_per_sec);
                w.field_u64("p50_ns", p.p50.as_nanos());
                w.field_u64("p99_ns", p.p99.as_nanos());
                w.field_u64("inflight", p.inflight);
                w.field_u64("pen", p.pen);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_arr();
    }

    /// The block as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        self.write_fields(&mut w);
        w.end_obj();
        w.finish()
    }

    /// The series as Perfetto counter-track samples
    /// (`series.shard{N}.{ops_per_sec,p99_ns,inflight,pen}`), ready to
    /// append to a [`crate::simprof::chrome_trace_with_counters`] export.
    pub fn counter_samples(&self) -> Vec<crate::simprof::CounterSample> {
        let mut out = Vec::new();
        for s in &self.shards {
            for p in &s.points {
                for (key, value) in [
                    ("ops_per_sec", p.ops_per_sec),
                    ("p99_ns", p.p99.as_nanos() as f64),
                    ("inflight", p.inflight as f64),
                    ("pen", p.pen as f64),
                ] {
                    out.push(crate::simprof::CounterSample {
                        at: p.at,
                        track: format!("series.shard{}.{key}", s.shard),
                        value,
                    });
                }
            }
        }
        out
    }
}

/// Default cap on retained series points per shard; the ring evicts the
/// oldest point beyond it.
pub const SERIES_CAP: usize = 512;

#[derive(Debug)]
struct HealthInner {
    slo: SloConfig,
    tracer: Tracer,
    shards: BTreeMap<u32, ShardTrack>,
    events: Vec<HealthEvent>,
    series_cap: usize,
}

impl HealthInner {
    fn track(&mut self, shard: u32, at: SimTime) -> &mut ShardTrack {
        let buckets = self.slo.buckets;
        self.shards
            .entry(shard)
            .or_insert_with(|| ShardTrack::new(buckets, at))
    }
}

/// Streaming per-shard health monitor.
///
/// Benches feed it issues and acks ([`HealthMonitor::record_issue`],
/// [`HealthMonitor::record_ack`]) and call [`HealthMonitor::tick`] on
/// their sampling cadence; the monitor classifies each shard against the
/// [`SloConfig`] over a sliding window (ring of histograms) and emits
/// every state transition as a [`TraceKind::HealthBreach`] instant
/// through the attached tracer — Perfetto shows breaches inline with the
/// op spans and counter tracks. Each tick also samples one
/// [`SeriesPoint`] per shard (throughput, window p50/p99, occupancy, pen
/// depth) into a bounded [`MetricSeries`] ring.
///
/// The monitor is a cheaply clonable shared handle (like [`Tracer`] and
/// [`Audit`]): drivers embedded in the simulated cluster record
/// issues/acks through their clone while the bench loop ticks and
/// summarises through another. It is a pure observer — it never feeds
/// the event queue or the RNG.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    inner: Rc<RefCell<HealthInner>>,
}

impl HealthMonitor {
    /// A monitor with the given SLO thresholds and no tracer attached.
    pub fn new(slo: SloConfig) -> Self {
        assert!(slo.buckets > 0, "health window needs at least one bucket");
        assert!(
            slo.bucket > SimDuration::ZERO,
            "health bucket width must be non-zero"
        );
        HealthMonitor {
            inner: Rc::new(RefCell::new(HealthInner {
                slo,
                tracer: Tracer::disabled(),
                shards: BTreeMap::new(),
                events: Vec::new(),
                series_cap: SERIES_CAP,
            })),
        }
    }

    /// Attaches a tracer; subsequent state transitions emit
    /// [`TraceKind::HealthBreach`] instants through it.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// The configured SLO thresholds.
    pub fn slo(&self) -> SloConfig {
        self.inner.borrow().slo
    }

    /// Records one issued op on `shard` (for stall detection).
    pub fn record_issue(&self, at: SimTime, shard: u32) {
        self.inner.borrow_mut().track(shard, at).issued += 1;
    }

    /// Records one acked op on `shard` with its end-to-end latency.
    pub fn record_ack(&self, at: SimTime, shard: u32, latency: SimDuration) {
        let mut inner = self.inner.borrow_mut();
        let idx = at.as_nanos() / inner.slo.bucket.as_nanos();
        let tr = inner.track(shard, at);
        tr.acks += 1;
        tr.last_progress = at;
        tr.overall.record(latency);
        tr.record(idx, latency);
    }

    /// Records `shard`'s current holding-pen depth; the latest value is
    /// sampled into the shard's series at the next [`HealthMonitor::tick`].
    pub fn record_pen_depth(&self, at: SimTime, shard: u32, depth: u64) {
        self.inner.borrow_mut().track(shard, at).pen = depth;
    }

    /// Re-evaluates every shard's state at `at`, recording transitions
    /// and emitting breach instants, then samples one series point per
    /// shard. Call on the bench sampling cadence. Repeated ticks at the
    /// same instant re-evaluate state but sample no duplicate point, so
    /// per-shard series timestamps are strictly increasing.
    pub fn tick(&self, at: SimTime) {
        let mut inner = self.inner.borrow_mut();
        let cur_idx = at.as_nanos() / inner.slo.bucket.as_nanos();
        let (slo, series_cap) = (inner.slo, inner.series_cap);
        let mut transitions = Vec::new();
        for (&shard, tr) in &mut inner.shards {
            let next = if tr.issued > tr.acks && at.since(tr.last_progress) > slo.stall_after {
                HealthState::Stalled
            } else {
                let win = tr.window(cur_idx);
                if !win.is_empty() && (win.p99() > slo.p99_max || win.p50() > slo.p50_max) {
                    HealthState::Degraded
                } else {
                    HealthState::Healthy
                }
            };
            if next != tr.state {
                if next != HealthState::Healthy {
                    tr.breaches += 1;
                }
                transitions.push(HealthEvent {
                    at,
                    shard,
                    from: tr.state,
                    to: next,
                });
                tr.state = next;
            }
            let (prev_at, prev_acks) = tr.last_sample.unwrap_or((tr.born, 0));
            if at > prev_at {
                let win = tr.window(cur_idx);
                let ops_per_sec =
                    (tr.acks - prev_acks) as f64 / at.since(prev_at).as_secs_f64().max(1e-12);
                tr.last_sample = Some((at, tr.acks));
                if tr.series.len() >= series_cap {
                    tr.series.pop_front();
                }
                tr.series.push_back(SeriesPoint {
                    at,
                    ops_per_sec,
                    p50: win.p50(),
                    p99: win.p99(),
                    inflight: tr.issued.saturating_sub(tr.acks),
                    pen: tr.pen,
                });
            }
        }
        for t in transitions {
            inner.tracer.emit(
                t.at,
                NO_NODE,
                NO_OP,
                TraceKind::HealthBreach {
                    shard: t.shard,
                    state: t.to.code(),
                },
            );
            inner.events.push(t);
        }
    }

    /// All recorded state transitions, in detection order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.borrow().events.clone()
    }

    /// Current state of `shard` ([`HealthState::Healthy`] if the shard
    /// has never been seen).
    pub fn state(&self, shard: u32) -> HealthState {
        self.inner
            .borrow()
            .shards
            .get(&shard)
            .map_or(HealthState::Healthy, |t| t.state)
    }

    /// Snapshot of the health block (with `violations` left at zero for
    /// the caller to fill from its [`Audit`] handle).
    pub fn summary(&self) -> HealthSummary {
        let inner = self.inner.borrow();
        let mut out = HealthSummary::default();
        for (&shard, tr) in &inner.shards {
            out.breaches += tr.breaches;
            out.shards.push(ShardHealth {
                shard,
                state: tr.state,
                acks: tr.acks,
                p50: tr.overall.p50(),
                p99: tr.overall.p99(),
                breaches: tr.breaches,
            });
        }
        out
    }

    /// Snapshot of the windowed telemetry series of every shard (the
    /// `series` block of bench reports).
    pub fn series(&self) -> SeriesSummary {
        let inner = self.inner.borrow();
        SeriesSummary {
            bucket: inner.slo.bucket,
            shards: inner
                .shards
                .iter()
                .map(|(&shard, tr)| MetricSeries {
                    shard,
                    points: tr.series.iter().cloned().collect(),
                })
                .collect(),
        }
    }

    /// Snapshots health state into a registry under `prefix` using only
    /// absolute writes, so re-export is idempotent:
    /// `{prefix}.breaches` plus per-shard `state` (gauge, numeric code),
    /// `acks`, `breaches`, `p50_ns` and `p99_ns`.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let inner = self.inner.borrow();
        let mut total = 0;
        for (&shard, tr) in &inner.shards {
            total += tr.breaches;
            reg.set_gauge(
                &format!("{prefix}.shard{shard}.state"),
                tr.state.code() as f64,
            );
            reg.counter_set(&format!("{prefix}.shard{shard}.acks"), tr.acks);
            reg.counter_set(&format!("{prefix}.shard{shard}.breaches"), tr.breaches);
            reg.set_gauge(
                &format!("{prefix}.shard{shard}.p50_ns"),
                tr.overall.p50().as_nanos() as f64,
            );
            reg.set_gauge(
                &format!("{prefix}.shard{shard}.p99_ns"),
                tr.overall.p99().as_nanos() as f64,
            );
        }
        reg.counter_set(&format!("{prefix}.breaches"), total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, node: u32, op: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            node,
            op,
            kind,
        }
    }

    #[test]
    fn op_id_round_trips_and_aligns() {
        let base = op_id_base(3, 7);
        assert_eq!(op_id_parts(base), (3, 7, 0));
        assert_eq!(op_id_parts(base + 41), (3, 7, 41));
        // Epoch-qualified bases stay aligned to power-of-two meta rings.
        assert_eq!(base % 64, 0);
        assert_eq!(op_id_base(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn op_id_base_rejects_oversized_epoch() {
        op_id_base(0, EPOCH_GEN_MAX + 1);
    }

    #[test]
    fn disabled_audit_is_a_noop() {
        let a = Audit::disabled();
        assert!(!a.is_enabled());
        a.on_event(&ev(0, 0, 1, TraceKind::OpIssue));
        a.probe(
            SimTime::ZERO,
            Probe::AckDurability {
                op: 1,
                node: 0,
                durable: false,
            },
        );
        assert_eq!(a.violation_count(), 0);
        assert!(a.violations().is_empty());
        assert!(a.report().is_empty());
        let mut reg = MetricsRegistry::new();
        a.export_into(&mut reg, "audit");
        assert_eq!(reg.counter("audit.violations"), None);
    }

    /// A clean single-shard stream: issues and acks in order, CQEs after
    /// issue, all durable. The standard set must stay silent.
    #[test]
    fn clean_stream_reports_zero_violations() {
        let a = Audit::standard();
        a.probe(
            SimTime::ZERO,
            Probe::Window {
                shard: 0,
                window: 4,
            },
        );
        for seq in 0..8u64 {
            let op = op_id_base(0, 0) + seq;
            let t = 100 * seq;
            a.on_event(&ev(t, 0, op, TraceKind::OpIssue));
            a.on_event(&ev(t + 30, 1, op, TraceKind::Cqe { cq: 0, ok: true }));
            a.on_event(&ev(t + 60, 0, op, TraceKind::OpAck));
            a.probe(
                SimTime::from_nanos(t + 60),
                Probe::AckDurability {
                    op,
                    node: 1,
                    durable: true,
                },
            );
        }
        assert_eq!(a.violation_count(), 0, "report:\n{}", a.report());
    }

    /// Mutation: suppress the flush, so the ack-path probe observes
    /// volatile bytes. The durability auditor must fire with the op id.
    #[test]
    fn durability_auditor_detects_unflushed_ack() {
        let a = Audit::standard();
        let op = op_id_base(0, 0);
        a.on_event(&ev(0, 0, op, TraceKind::OpIssue));
        a.on_event(&ev(500, 0, op, TraceKind::OpAck));
        a.probe(
            SimTime::from_nanos(500),
            Probe::AckDurability {
                op,
                node: 2,
                durable: false,
            },
        );
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "durability");
        assert_eq!(vs[0].op, op);
        assert_eq!(vs[0].at, SimTime::from_nanos(500));
        assert!(vs[0].detail.contains("node 2"));
        // The causal excerpt carries the op's trace tail.
        assert!(vs[0]
            .excerpt
            .iter()
            .any(|e| matches!(e.kind, TraceKind::OpIssue)));
    }

    /// Mutation: swap the completion order of two generations. The chain
    /// auditor must flag the early ack by its op id.
    #[test]
    fn chain_order_auditor_detects_swapped_acks() {
        let a = Audit::standard();
        let base = op_id_base(1, 0);
        a.on_event(&ev(0, 0, base, TraceKind::OpIssue));
        a.on_event(&ev(10, 0, base + 1, TraceKind::OpIssue));
        // Generation 1 acks before generation 0: out of order.
        a.on_event(&ev(200, 0, base + 1, TraceKind::OpAck));
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "chain_order");
        assert_eq!(vs[0].op, base + 1);
        assert!(vs[0].detail.contains("ack out of order"));
        assert!(vs[0].detail.contains("expected seq 0, got 1"));
    }

    /// Mutation: a CQE delivered before its op was issued.
    #[test]
    fn chain_order_auditor_detects_cqe_before_issue() {
        let a = Audit::standard();
        let op = op_id_base(0, 2);
        a.on_event(&ev(1000, 0, op, TraceKind::OpIssue));
        // A replayed CQE stamped before the issue.
        a.on_event(&ev(900, 1, op, TraceKind::Cqe { cq: 3, ok: true }));
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].op, op);
        assert!(vs[0].detail.contains("precedes"));
    }

    /// Untracked CQEs (pre-posted RECVs completing with wr_id 0 before
    /// the matching generation is issued) must not false-positive.
    #[test]
    fn chain_order_auditor_ignores_untracked_cqes() {
        let a = Audit::standard();
        a.on_event(&ev(5, 0, 0, TraceKind::Cqe { cq: 0, ok: true }));
        a.on_event(&ev(10, 0, op_id_base(0, 0), TraceKind::OpIssue));
        assert_eq!(a.violation_count(), 0);
    }

    /// Mutation: issue window + 1 ops with no acks. The flow-control
    /// auditor must flag the overflowing issue.
    #[test]
    fn flow_control_auditor_detects_window_overrun() {
        let a = Audit::standard();
        a.probe(
            SimTime::ZERO,
            Probe::Window {
                shard: 2,
                window: 2,
            },
        );
        let base = op_id_base(2, 0);
        a.on_event(&ev(0, 0, base, TraceKind::OpIssue));
        a.on_event(&ev(10, 0, base + 1, TraceKind::OpIssue));
        assert_eq!(a.violation_count(), 0);
        a.on_event(&ev(20, 0, base + 2, TraceKind::OpIssue));
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "flow_control");
        assert_eq!(vs[0].op, base + 2);
        assert!(vs[0].detail.contains("3 in flight > window 2"));
    }

    /// Mutation: overfill the migration holding pen.
    #[test]
    fn flow_control_auditor_detects_pen_overflow() {
        let a = Audit::standard();
        a.probe(
            SimTime::from_nanos(50),
            Probe::PenDepth {
                shard: 0,
                depth: 4,
                capacity: 4,
            },
        );
        assert_eq!(a.violation_count(), 0);
        a.probe(
            SimTime::from_nanos(60),
            Probe::PenDepth {
                shard: 0,
                depth: 5,
                capacity: 4,
            },
        );
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "flow_control");
        assert!(vs[0].detail.contains("pen overflow"));
    }

    /// Mutation: cut over while an old-epoch op is still in flight.
    #[test]
    fn migration_auditor_detects_inflight_loss_at_cutover() {
        let a = Audit::standard();
        let base = op_id_base(0, 0);
        a.on_event(&ev(0, 0, base, TraceKind::OpIssue));
        a.on_event(&ev(50, 0, base + 1, TraceKind::OpIssue));
        a.on_event(&ev(100, 0, base, TraceKind::OpAck));
        a.on_event(&ev(150, 0, NO_OP, TraceKind::MigrateBegin { shard: 0 }));
        a.on_event(&ev(
            200,
            0,
            NO_OP,
            TraceKind::MigrateCutover { shard: 0, epoch: 1 },
        ));
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "migration");
        assert!(vs[0].detail.contains("1 in-flight op(s)"));
        assert!(vs[0].detail.contains("lost at cutover"));
    }

    /// Mutation: pen holds 3 ops at cutover but only 2 reissue on the new
    /// epoch before the migration ends — a penned op was dropped.
    #[test]
    fn migration_auditor_detects_dropped_penned_op() {
        let a = Audit::standard();
        a.on_event(&ev(0, 0, NO_OP, TraceKind::MigrateBegin { shard: 0 }));
        a.probe(
            SimTime::from_nanos(10),
            Probe::PenDepth {
                shard: 0,
                depth: 3,
                capacity: 8,
            },
        );
        a.on_event(&ev(
            100,
            0,
            NO_OP,
            TraceKind::MigrateCutover { shard: 0, epoch: 1 },
        ));
        let nb = op_id_base(0, 1);
        a.on_event(&ev(110, 0, nb, TraceKind::OpIssue));
        a.on_event(&ev(120, 0, nb + 1, TraceKind::OpIssue));
        a.on_event(&ev(
            200,
            0,
            NO_OP,
            TraceKind::MigrateEnd {
                shard: 0,
                replayed: 0,
            },
        ));
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "migration");
        assert!(vs[0].detail.contains("penned op dropped"));
        assert!(vs[0].detail.contains("only 2 reissued"));
    }

    /// Mutation: the write pause exceeds the configured bound.
    #[test]
    fn migration_auditor_detects_pause_overrun() {
        let a = Audit::new(vec![Box::new(MigrationAuditor::with_max_pause(
            SimDuration::from_nanos(100),
        ))]);
        a.on_event(&ev(0, 0, NO_OP, TraceKind::MigrateBegin { shard: 1 }));
        a.on_event(&ev(
            500,
            0,
            NO_OP,
            TraceKind::MigrateCutover { shard: 1, epoch: 1 },
        ));
        a.on_event(&ev(
            510,
            0,
            NO_OP,
            TraceKind::MigrateEnd {
                shard: 1,
                replayed: 0,
            },
        ));
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("pause window"));
        assert!(vs[0].detail.contains("exceeds bound"));
    }

    /// A clean migration (drained before cutover, pen fully reissued)
    /// must stay silent.
    #[test]
    fn migration_auditor_accepts_clean_cutover() {
        let a = Audit::standard();
        let base = op_id_base(0, 0);
        a.on_event(&ev(0, 0, base, TraceKind::OpIssue));
        a.on_event(&ev(50, 0, base, TraceKind::OpAck));
        a.on_event(&ev(60, 0, NO_OP, TraceKind::MigrateBegin { shard: 0 }));
        a.probe(
            SimTime::from_nanos(70),
            Probe::PenDepth {
                shard: 0,
                depth: 1,
                capacity: 8,
            },
        );
        a.on_event(&ev(
            100,
            0,
            NO_OP,
            TraceKind::MigrateCutover { shard: 0, epoch: 1 },
        ));
        let nb = op_id_base(0, 1);
        a.on_event(&ev(110, 0, nb, TraceKind::OpIssue));
        a.on_event(&ev(
            150,
            0,
            NO_OP,
            TraceKind::MigrateEnd {
                shard: 0,
                replayed: 1,
            },
        ));
        a.on_event(&ev(160, 0, nb, TraceKind::OpAck));
        assert_eq!(a.violation_count(), 0, "report:\n{}", a.report());
    }

    #[test]
    fn audit_export_and_json_are_deterministic_and_idempotent() {
        let run = || {
            let a = Audit::standard();
            let op = op_id_base(0, 0);
            a.on_event(&ev(0, 0, op, TraceKind::OpIssue));
            a.probe(
                SimTime::from_nanos(10),
                Probe::AckDurability {
                    op,
                    node: 1,
                    durable: false,
                },
            );
            a
        };
        let a = run();
        assert_eq!(a.to_json(), run().to_json(), "same input, same bytes");
        assert!(a.to_json().contains("\"violations\":1"));
        assert!(a.to_json().contains("\"durability\":1"));
        assert!(a.to_json().contains("\"chain_order\":0"));
        let mut reg = MetricsRegistry::new();
        a.export_into(&mut reg, "audit");
        let once = reg.to_json();
        a.export_into(&mut reg, "audit");
        assert_eq!(reg.to_json(), once, "re-export must be idempotent");
        assert_eq!(reg.counter("audit.violations"), Some(1));
        assert_eq!(reg.counter("audit.durability.violations"), Some(1));
        assert_eq!(reg.counter("audit.migration.violations"), Some(0));
        let rep = a.report();
        assert!(rep.contains("[durability]"));
        assert!(rep.contains("shard 0, epoch 0, seq 0"));
    }

    #[test]
    fn tracer_tap_feeds_the_audit() {
        let audit = Audit::standard();
        // Audit-only tracer: no ring buffer, but enabled for emitters.
        let t = Tracer::disabled().with_audit(audit.clone());
        assert!(t.is_enabled());
        assert!(t.events().is_empty());
        let base = op_id_base(0, 0);
        t.emit(SimTime::ZERO, 0, base + 1, TraceKind::OpIssue);
        assert_eq!(audit.violation_count(), 1, "tap must see the bad issue");
        // Clones share the audit; a buffered tracer taps too.
        let t2 = Tracer::enabled(64).with_audit(audit.clone());
        t2.emit(SimTime::from_nanos(5), 0, base + 7, TraceKind::OpIssue);
        assert_eq!(audit.violation_count(), 2);
        assert_eq!(t2.len(), 1);
        assert!(t2.audit().is_enabled());
    }

    fn acked(h: &HealthMonitor, ns: u64, shard: u32, lat_ns: u64) {
        h.record_issue(SimTime::from_nanos(ns.saturating_sub(lat_ns)), shard);
        h.record_ack(
            SimTime::from_nanos(ns),
            shard,
            SimDuration::from_nanos(lat_ns),
        );
    }

    fn test_slo() -> SloConfig {
        SloConfig {
            bucket: SimDuration::from_nanos(1000),
            buckets: 4,
            p50_max: SimDuration::from_nanos(500),
            p99_max: SimDuration::from_nanos(900),
            stall_after: SimDuration::from_nanos(5000),
        }
    }

    #[test]
    fn health_monitor_classifies_and_recovers() {
        let h = HealthMonitor::new(test_slo());
        let tracer = Tracer::enabled(64);
        h.set_tracer(tracer.clone());

        acked(&h, 1000, 0, 100);
        h.tick(SimTime::from_nanos(1000));
        assert_eq!(h.state(0), HealthState::Healthy);
        assert!(h.events().is_empty());

        // Latency blows the p50 SLO: Degraded, with a breach instant.
        acked(&h, 2000, 0, 800);
        acked(&h, 2100, 0, 800);
        h.tick(SimTime::from_nanos(2200));
        assert_eq!(h.state(0), HealthState::Degraded);
        assert_eq!(h.events().len(), 1);
        assert_eq!(h.events()[0].to, HealthState::Degraded);
        let breach = tracer
            .events()
            .iter()
            .copied()
            .find(|e| matches!(e.kind, TraceKind::HealthBreach { .. }))
            .expect("breach instant emitted");
        assert_eq!(
            breach.kind,
            TraceKind::HealthBreach {
                shard: 0,
                state: HealthState::Degraded.code()
            }
        );

        // The window slides past the slow acks: recovery to Healthy.
        acked(&h, 9000, 0, 100);
        h.tick(SimTime::from_nanos(9000));
        assert_eq!(h.state(0), HealthState::Healthy);
        assert_eq!(h.events().len(), 2);

        // In-flight op with no progress: Stalled.
        h.record_issue(SimTime::from_nanos(9100), 0);
        h.tick(SimTime::from_nanos(20000));
        assert_eq!(h.state(0), HealthState::Stalled);
        let s = h.summary();
        assert_eq!(s.shards.len(), 1);
        assert_eq!(s.shards[0].breaches, 2, "degraded + stalled");
        assert_eq!(s.breaches, 2);
        assert_eq!(s.shards[0].acks, 4);
    }

    #[test]
    fn health_export_and_summary_are_idempotent_and_deterministic() {
        let h = HealthMonitor::new(test_slo());
        acked(&h, 1000, 0, 100);
        acked(&h, 1100, 1, 800);
        acked(&h, 1200, 1, 800);
        h.tick(SimTime::from_nanos(1300));
        assert_eq!(h.state(1), HealthState::Degraded);

        let mut s = h.summary();
        s.violations = 3;
        let json = s.to_json();
        assert_eq!(json, {
            let mut s2 = h.summary();
            s2.violations = 3;
            s2.to_json()
        });
        assert!(json.contains("\"violations\":3"));
        assert!(json.contains("\"state\":\"degraded\""));
        assert!(json.contains("\"state\":\"healthy\""));

        let mut reg = MetricsRegistry::new();
        h.export_into(&mut reg, "health");
        let once = reg.to_json();
        h.export_into(&mut reg, "health");
        assert_eq!(reg.to_json(), once, "re-export must be idempotent");
        assert_eq!(reg.counter("health.breaches"), Some(1));
        assert_eq!(reg.counter("health.shard1.breaches"), Some(1));
        assert_eq!(reg.gauge("health.shard1.state"), Some(1.0));
        assert_eq!(reg.gauge("health.shard0.state"), Some(0.0));
    }

    #[test]
    fn health_breach_instant_survives_chrome_export() {
        let h = HealthMonitor::new(test_slo());
        let tracer = Tracer::enabled(16);
        h.set_tracer(tracer.clone());
        acked(&h, 1000, 2, 800);
        acked(&h, 1050, 2, 800);
        h.tick(SimTime::from_nanos(1100));
        let json = crate::simtrace::chrome_trace_json(&tracer.events());
        assert!(json.contains("\"name\":\"health_breach\""));
        assert!(json.contains("\"shard\":2"));
    }

    /// The sliding-window ring must actually evict old samples: with no
    /// new acks at all, a degraded shard turns healthy once the window
    /// slides past the slow samples.
    #[test]
    fn health_window_evicts_old_samples() {
        let h = HealthMonitor::new(test_slo());
        acked(&h, 1000, 0, 800);
        acked(&h, 1100, 0, 800);
        h.tick(SimTime::from_nanos(1200));
        assert_eq!(h.state(0), HealthState::Degraded);

        // No new acks, issued == acks (no stall): only ring eviction can
        // change the verdict. 4 buckets × 1000 ns have slid past t=1100.
        h.tick(SimTime::from_nanos(9000));
        assert_eq!(h.state(0), HealthState::Healthy);

        // The overall histogram still remembers the slow acks — only the
        // *window* evicted.
        let s = h.summary();
        assert_eq!(s.shards[0].acks, 2);
        assert!(s.shards[0].p50 >= SimDuration::from_nanos(700));
    }

    /// A full degraded→healthy→degraded cycle records each edge exactly
    /// once, no matter how many ticks happen while a state holds.
    #[test]
    fn recovery_cycle_emits_each_edge_exactly_once() {
        let h = HealthMonitor::new(test_slo());
        acked(&h, 1000, 0, 800);
        acked(&h, 1100, 0, 800);
        for ns in [1200, 1300, 1400] {
            h.tick(SimTime::from_nanos(ns));
        }
        assert_eq!(h.events().len(), 1, "degrade edge emitted once");

        acked(&h, 9000, 0, 100);
        for ns in [9100, 9200, 9300] {
            h.tick(SimTime::from_nanos(ns));
        }
        assert_eq!(h.events().len(), 2, "recovery edge emitted once");

        acked(&h, 10_000, 0, 800);
        acked(&h, 10_100, 0, 800);
        for ns in [10_200, 10_300] {
            h.tick(SimTime::from_nanos(ns));
        }
        let evs = h.events();
        assert_eq!(evs.len(), 3, "second degrade edge emitted once");
        let edges: Vec<(HealthState, HealthState)> = evs.iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(
            edges,
            vec![
                (HealthState::Healthy, HealthState::Degraded),
                (HealthState::Degraded, HealthState::Healthy),
                (HealthState::Healthy, HealthState::Degraded),
            ]
        );
        assert_eq!(
            h.summary().shards[0].breaches,
            2,
            "only degrade edges count"
        );
    }

    /// Every tick samples one series point per shard; timestamps are
    /// strictly increasing even under same-instant re-ticks, and pen
    /// depth and occupancy ride along.
    #[test]
    fn tick_samples_series_with_strict_timestamps() {
        let h = HealthMonitor::new(test_slo());
        h.record_issue(SimTime::from_nanos(500), 0);
        acked(&h, 1000, 0, 100);
        h.record_pen_depth(SimTime::from_nanos(1100), 0, 3);
        h.tick(SimTime::from_nanos(2000));
        h.tick(SimTime::from_nanos(2000)); // same instant: no new point
        acked(&h, 3000, 0, 100);
        h.tick(SimTime::from_nanos(4000));

        let s = h.series();
        assert_eq!(s.bucket, test_slo().bucket);
        assert_eq!(s.shards.len(), 1);
        let pts = &s.shards[0].points;
        assert_eq!(pts.len(), 2);
        assert!(pts[0].at < pts[1].at, "strictly increasing timestamps");
        assert_eq!(pts[0].inflight, 1, "one op issued, never acked");
        assert_eq!(pts[0].pen, 3);
        // First interval is anchored at the shard's first-seen time
        // (500 ns): 1 ack over 1.5 µs.
        assert!((pts[0].ops_per_sec - 1.0 / 1.5e-6).abs() < 1.0);
        // Second interval: 1 ack over 2 µs.
        assert!((pts[1].ops_per_sec - 1.0 / 2.0e-6).abs() < 1.0);

        let json = s.to_json();
        for key in [
            "bucket_ns",
            "t_ns",
            "ops_per_sec",
            "p50_ns",
            "p99_ns",
            "inflight",
            "pen",
        ] {
            assert!(json.contains(key), "series json missing {key}: {json}");
        }
        let tracks = s.counter_samples();
        assert!(tracks
            .iter()
            .any(|c| c.track == "series.shard0.ops_per_sec"));
        assert!(tracks.iter().any(|c| c.track == "series.shard0.pen"));
    }

    /// The series ring is bounded: past the cap the oldest point goes.
    #[test]
    fn series_ring_evicts_oldest_points() {
        let h = HealthMonitor::new(test_slo());
        acked(&h, 100, 0, 50);
        let total = SERIES_CAP + 40;
        for i in 0..total {
            h.tick(SimTime::from_nanos(1000 * (i as u64 + 1)));
        }
        let pts = &h.series().shards[0].points[..];
        assert_eq!(pts.len(), SERIES_CAP);
        // The first 40 points were evicted.
        assert_eq!(pts[0].at, SimTime::from_nanos(1000 * 41));
        assert!(pts.windows(2).all(|w| w[0].at < w[1].at));
    }

    /// Drives one well-formed txn through the probe lifecycle.
    fn run_clean_txn(a: &Audit, txn: u64, shard: u32, lock: u32) {
        a.probe(SimTime::from_nanos(0), Probe::TxnBegin { txn });
        a.probe(SimTime::from_nanos(10), Probe::TxnLock { txn, shard, lock });
        a.probe(
            SimTime::from_nanos(20),
            Probe::TxnWrite { txn, shard, lock },
        );
        a.probe(
            SimTime::from_nanos(30),
            Probe::TxnUnlock { txn, shard, lock },
        );
        a.probe(SimTime::from_nanos(40), Probe::TxnCommit { txn, writes: 1 });
    }

    /// A clean commit and a clean abort raise nothing.
    #[test]
    fn txn_auditor_accepts_clean_lifecycle() {
        let a = Audit::standard();
        run_clean_txn(&a, 7, 0, 3);
        a.probe(SimTime::from_nanos(50), Probe::TxnBegin { txn: 8 });
        a.probe(
            SimTime::from_nanos(60),
            Probe::TxnLock {
                txn: 8,
                shard: 1,
                lock: 3,
            },
        );
        a.probe(
            SimTime::from_nanos(70),
            Probe::TxnUnlock {
                txn: 8,
                shard: 1,
                lock: 3,
            },
        );
        a.probe(SimTime::from_nanos(80), Probe::TxnAbort { txn: 8 });
        assert_eq!(a.violation_count(), 0, "report:\n{}", a.report());
    }

    /// Mutation: drop one write of a committed txn — the auditor must
    /// blame the exact txn id.
    #[test]
    fn txn_auditor_detects_dropped_write() {
        let a = Audit::standard();
        a.probe(SimTime::from_nanos(0), Probe::TxnBegin { txn: 42 });
        a.probe(
            SimTime::from_nanos(10),
            Probe::TxnLock {
                txn: 42,
                shard: 0,
                lock: 1,
            },
        );
        // Staged two writes, applied only one.
        a.probe(
            SimTime::from_nanos(20),
            Probe::TxnWrite {
                txn: 42,
                shard: 0,
                lock: 1,
            },
        );
        a.probe(
            SimTime::from_nanos(30),
            Probe::TxnUnlock {
                txn: 42,
                shard: 0,
                lock: 1,
            },
        );
        a.probe(
            SimTime::from_nanos(40),
            Probe::TxnCommit { txn: 42, writes: 2 },
        );
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "txn");
        assert!(vs[0].detail.contains("atomicity"));
        assert!(vs[0].detail.contains("txn 42"), "detail: {}", vs[0].detail);
        assert!(vs[0].detail.contains("1 of 2"));
    }

    /// Mutation: leak one lock past commit — reported as a lock leak
    /// naming the txn and site.
    #[test]
    fn txn_auditor_detects_leaked_lock() {
        let a = Audit::standard();
        a.probe(SimTime::from_nanos(0), Probe::TxnBegin { txn: 9 });
        a.probe(
            SimTime::from_nanos(10),
            Probe::TxnLock {
                txn: 9,
                shard: 2,
                lock: 5,
            },
        );
        a.probe(
            SimTime::from_nanos(20),
            Probe::TxnCommit { txn: 9, writes: 0 },
        );
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].auditor, "txn");
        assert!(vs[0].detail.contains("lock leak"));
        assert!(vs[0].detail.contains("txn 9"));
        assert!(vs[0].detail.contains("lock 5 on shard 2"));
        // The leaked site is reclaimed: a later txn can use it cleanly.
        run_clean_txn(&a, 10, 2, 5);
        assert_eq!(a.violation_count(), 1);
    }

    /// Mutation: an aborted txn that already applied a write leaves
    /// residue.
    #[test]
    fn txn_auditor_detects_abort_residue() {
        let a = Audit::standard();
        a.probe(SimTime::from_nanos(0), Probe::TxnBegin { txn: 3 });
        a.probe(
            SimTime::from_nanos(10),
            Probe::TxnLock {
                txn: 3,
                shard: 0,
                lock: 0,
            },
        );
        a.probe(
            SimTime::from_nanos(20),
            Probe::TxnWrite {
                txn: 3,
                shard: 0,
                lock: 0,
            },
        );
        a.probe(
            SimTime::from_nanos(30),
            Probe::TxnUnlock {
                txn: 3,
                shard: 0,
                lock: 0,
            },
        );
        a.probe(SimTime::from_nanos(40), Probe::TxnAbort { txn: 3 });
        let vs = a.violations();
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("residue"));
        assert!(vs[0].detail.contains("txn 3"));
    }

    /// Mutation: two txns holding the same lock site at once is an
    /// isolation violation; a write without the covering lock likewise.
    #[test]
    fn txn_auditor_detects_double_hold_and_unlocked_write() {
        let a = Audit::standard();
        a.probe(SimTime::from_nanos(0), Probe::TxnBegin { txn: 1 });
        a.probe(SimTime::from_nanos(1), Probe::TxnBegin { txn: 2 });
        a.probe(
            SimTime::from_nanos(10),
            Probe::TxnLock {
                txn: 1,
                shard: 0,
                lock: 7,
            },
        );
        a.probe(
            SimTime::from_nanos(20),
            Probe::TxnLock {
                txn: 2,
                shard: 0,
                lock: 7,
            },
        );
        a.probe(
            SimTime::from_nanos(30),
            Probe::TxnWrite {
                txn: 1,
                shard: 3,
                lock: 9,
            },
        );
        let vs = a.violations();
        assert_eq!(vs.len(), 2);
        assert!(vs[0].detail.contains("already held by txn 1"));
        assert!(vs[1].detail.contains("without"));
    }
}
