//! hostprof — wall-clock self-profiling of the simulator itself.
//!
//! Every other observability layer in this repo (simtrace, simprof,
//! simaudit) attributes *simulated* nanoseconds. This module measures what
//! the simulator costs on the *host*: where wall-clock time goes
//! (scoped timers folded into flamegraph stacks), what the allocator is
//! doing (counting hooks driven by a `GlobalAlloc` wrapper in the bench
//! crate), and how fast the simulator turns host seconds into simulated
//! work ([`HostStats`], the `host` block of every `BENCH_*.json` scenario).
//!
//! ## Determinism contract
//!
//! Host measurements are inherently nondeterministic, so hostprof is
//! strictly read-only with respect to the simulation: scopes read
//! [`Instant`] and write thread-local tables, the allocation counters are
//! thread-local cells bumped by the allocator wrapper, and nothing here
//! ever feeds back into the event queue, the RNG, or any model state.
//! Same-seed runs produce byte-identical traces, audit reports and metric
//! registries whether profiling is enabled or not (asserted by
//! `tests/hostprof.rs`). Anything hostprof *does* export (wall times,
//! allocation counts) is volatile by definition and lives under `host.*`
//! keys, which [`crate::jsonw::canonicalize_report`] strips before
//! byte-identity comparisons.
//!
//! ## Scopes
//!
//! ```
//! use simcore::hostprof::{self, HostProf};
//!
//! hostprof::reset();
//! hostprof::enable();
//! {
//!     let _outer = HostProf::scope("rnicsim.engine");
//!     let _inner = HostProf::scope("simcore.queue.push");
//! } // guards drop here, charging self-time to each folded path
//! hostprof::disable();
//! let folded = hostprof::folded_stacks();
//! assert!(folded.contains("host;rnicsim.engine;simcore.queue.push"));
//! ```
//!
//! When disabled (the default), entering a scope costs one relaxed atomic
//! load — cheap enough to leave in the hot paths of the event queue, the
//! NIC engine, and the tracer tap. The scope tables are thread-local:
//! benchmarks are single-threaded, and per-thread tables mean concurrent
//! tests cannot corrupt each other's profiles.

use crate::jsonw::JsonWriter;
use crate::queue::QueueStats;
use crate::time::SimDuration;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns scope-timer collection on (process-wide flag, per-thread tables).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns scope-timer collection off. In-flight guards still pop cleanly.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when scope timers are collecting.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Aggregate of one folded scope path (`"a;b"` means `scope("b")` entered
/// while `scope("a")` was open on this thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeStat {
    /// `;`-joined path of scope names, root first.
    pub path: String,
    /// Times this exact path was entered.
    pub calls: u64,
    /// Wall nanoseconds between entry and exit, children included.
    pub total_ns: u64,
    /// Wall nanoseconds charged to this path alone (total minus children).
    pub self_ns: u64,
}

struct Frame {
    path: String,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static TABLE: RefCell<BTreeMap<String, (u64, u64, u64)>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Namespace for the scoped-timer API (`HostProf::scope("rnicsim.engine")`).
#[derive(Debug)]
pub struct HostProf;

impl HostProf {
    /// Opens a scope charging wall time to `name`, folded under whatever
    /// scopes are already open on this thread. No-op (one atomic load)
    /// when profiling is disabled.
    #[inline]
    pub fn scope(name: &'static str) -> ScopeGuard {
        if !is_enabled() {
            return ScopeGuard { active: false };
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = match s.last() {
                Some(parent) => format!("{};{}", parent.path, name),
                None => name.to_string(),
            };
            s.push(Frame {
                path,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        ScopeGuard { active: true }
    }
}

/// Convenience free-function alias of [`HostProf::scope`].
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    HostProf::scope(name)
}

/// RAII guard of one open scope; dropping it charges the elapsed wall time.
#[derive(Debug)]
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let Some(frame) = s.pop() else { return };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            if let Some(parent) = s.last_mut() {
                parent.child_ns += elapsed;
            }
            TABLE.with(|t| {
                let mut t = t.borrow_mut();
                let e = t.entry(frame.path).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += elapsed;
                e.2 += self_ns;
            });
        });
    }
}

/// Clears this thread's scope table and open-scope stack.
pub fn reset() {
    STACK.with(|s| s.borrow_mut().clear());
    TABLE.with(|t| t.borrow_mut().clear());
}

/// Snapshot of this thread's scope aggregates, sorted by folded path.
pub fn scopes() -> Vec<ScopeStat> {
    TABLE.with(|t| {
        t.borrow()
            .iter()
            .map(|(path, &(calls, total_ns, self_ns))| ScopeStat {
                path: path.clone(),
                calls,
                total_ns,
                self_ns,
            })
            .collect()
    })
}

/// Flamegraph collapsed stacks of this thread's scope table: one
/// `host;{path} {self_ns}` line per folded path, sorted — the same format
/// (and the same downstream tools) as `simprof::folded_stacks`, except the
/// numbers are host nanoseconds instead of simulated ones.
pub fn folded_stacks() -> String {
    let mut out = String::new();
    TABLE.with(|t| {
        for (path, &(_, _, self_ns)) in t.borrow().iter() {
            out.push_str("host;");
            out.push_str(path);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
    });
    out
}

// ---------------------------------------------------------------------------
// Allocation counters
// ---------------------------------------------------------------------------

/// Cumulative allocator activity on this thread, recorded by the counting
/// `GlobalAlloc` wrapper (`hyperloop_bench::hostalloc`). Reallocations are
/// counted once under `reallocs` — with the old size retired into
/// `freed_bytes` and the new size charged to `alloc_bytes` — never as an
/// extra alloc/free pair, so `allocs == frees` holds over any region of
/// code that frees everything it allocated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations served.
    pub allocs: u64,
    /// Deallocations served.
    pub frees: u64,
    /// In-place grow/shrink calls (counted here only).
    pub reallocs: u64,
    /// Bytes handed out (including the new size of every realloc).
    pub alloc_bytes: u64,
    /// Bytes retired (including the old size of every realloc).
    pub freed_bytes: u64,
}

impl AllocStats {
    /// The per-phase delta `self - earlier` (both from
    /// [`alloc_snapshot`], `earlier` taken first).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            frees: self.frees.wrapping_sub(earlier.frees),
            reallocs: self.reallocs.wrapping_sub(earlier.reallocs),
            alloc_bytes: self.alloc_bytes.wrapping_sub(earlier.alloc_bytes),
            freed_bytes: self.freed_bytes.wrapping_sub(earlier.freed_bytes),
        }
    }
}

const ALLOC_ZERO: AllocStats = AllocStats {
    allocs: 0,
    frees: 0,
    reallocs: 0,
    alloc_bytes: 0,
    freed_bytes: 0,
};

thread_local! {
    static ALLOC: Cell<AllocStats> = const { Cell::new(ALLOC_ZERO) };
}

// The record_* hooks run inside the global allocator, so they must not
// allocate: const-initialized thread-local Cells are a plain TLS slot, and
// try_with guards the TLS-teardown window at thread exit.

/// Records one served allocation of `bytes`.
#[inline]
pub fn record_alloc(bytes: usize) {
    let _ = ALLOC.try_with(|c| {
        let mut a = c.get();
        a.allocs += 1;
        a.alloc_bytes += bytes as u64;
        c.set(a);
    });
}

/// Records one served deallocation of `bytes`.
#[inline]
pub fn record_free(bytes: usize) {
    let _ = ALLOC.try_with(|c| {
        let mut a = c.get();
        a.frees += 1;
        a.freed_bytes += bytes as u64;
        c.set(a);
    });
}

/// Records one served reallocation from `old` to `new` bytes.
#[inline]
pub fn record_realloc(old: usize, new: usize) {
    let _ = ALLOC.try_with(|c| {
        let mut a = c.get();
        a.reallocs += 1;
        a.alloc_bytes += new as u64;
        a.freed_bytes += old as u64;
        c.set(a);
    });
}

/// Snapshot of this thread's cumulative allocation counters. All zeros
/// unless a counting global allocator is installed (the bench crate's
/// binaries and the repo's integration tests install one).
pub fn alloc_snapshot() -> AllocStats {
    ALLOC.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Per-run host statistics: the `host` block of BENCH_*.json scenarios
// ---------------------------------------------------------------------------

/// The observability-tax measurement: wall time of the measured (observed)
/// run against a same-seed re-run with tracing/audit off. When the
/// measured run itself had no observability attached, the two are equal
/// and the tax is zero by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsTax {
    /// Wall nanoseconds of the measured run (observability as configured).
    pub observed_wall_ns: u64,
    /// Wall nanoseconds of the bare re-run (tracing/audit/samplers off).
    pub bare_wall_ns: u64,
}

impl ObsTax {
    /// Overhead of observability as a percentage of the bare run. Can be
    /// negative on noisy hosts; zero when no bare re-run was taken.
    pub fn overhead_pct(&self) -> f64 {
        let bare = self.bare_wall_ns.max(1) as f64;
        100.0 * (self.observed_wall_ns as f64 - bare) / bare
    }
}

/// Host-side measurements of one benchmark run: the `host` block attached
/// to every `BENCH_*.json` scenario. All fields are volatile (they change
/// run to run on the same seed) — byte-identity comparisons must go
/// through [`crate::jsonw::canonicalize_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostStats {
    /// Wall nanoseconds the measured run took (never zero).
    pub wall_ns: u64,
    /// Operations the run completed (the sim-side op count).
    pub ops: u64,
    /// Simulated nanoseconds the run advanced.
    pub sim_ns: u64,
    /// Event-queue counters of the run's simulation.
    pub queue: QueueStats,
    /// Allocator activity on the driving thread during the run.
    pub alloc: AllocStats,
    /// The observability-tax measurement.
    pub obs_tax: ObsTax,
}

impl HostStats {
    /// Host throughput: simulated operations completed per wall second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Simulator event rate: queue pops per wall second.
    pub fn events_per_sec(&self) -> f64 {
        self.queue.popped as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Time-dilation factor: simulated nanoseconds per wall millisecond.
    pub fn sim_ns_per_wall_ms(&self) -> f64 {
        self.sim_ns as f64 / (self.wall_ns as f64 / 1e6)
    }

    /// Replaces the observability-tax denominator with a measured bare
    /// re-run's wall time.
    pub fn with_bare_wall_ns(mut self, bare_wall_ns: u64) -> Self {
        self.obs_tax.bare_wall_ns = bare_wall_ns.max(1);
        self
    }

    /// Folds two runs reported as one scenario into one block: wall time,
    /// op counts, queue and allocator activity all sum (high-water depth
    /// takes the max), and the observability-tax numerator/denominator sum
    /// so the percentage stays a wall-time-weighted aggregate.
    pub fn merged(&self, other: &HostStats) -> HostStats {
        HostStats {
            wall_ns: self.wall_ns + other.wall_ns,
            ops: self.ops + other.ops,
            sim_ns: self.sim_ns + other.sim_ns,
            queue: QueueStats {
                pushed: self.queue.pushed + other.queue.pushed,
                popped: self.queue.popped + other.queue.popped,
                max_depth: self.queue.max_depth.max(other.queue.max_depth),
            },
            alloc: AllocStats {
                allocs: self.alloc.allocs + other.alloc.allocs,
                frees: self.alloc.frees + other.alloc.frees,
                reallocs: self.alloc.reallocs + other.alloc.reallocs,
                alloc_bytes: self.alloc.alloc_bytes + other.alloc.alloc_bytes,
                freed_bytes: self.alloc.freed_bytes + other.alloc.freed_bytes,
            },
            obs_tax: ObsTax {
                observed_wall_ns: self.obs_tax.observed_wall_ns + other.obs_tax.observed_wall_ns,
                bare_wall_ns: self.obs_tax.bare_wall_ns + other.obs_tax.bare_wall_ns,
            },
        }
    }

    /// Writes the `host` block's fields (the caller brackets the object).
    /// The key set here is closed: `benchcheck` rejects unknown keys, so
    /// schema changes must update both sides.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_f64("wall_ms", self.wall_ns as f64 / 1e6);
        w.field_f64("ops_per_sec", self.ops_per_sec());
        w.field_f64("events_per_sec", self.events_per_sec());
        w.field_f64("sim_ns_per_wall_ms", self.sim_ns_per_wall_ms());
        w.field_u64("ops", self.ops);
        w.field_u64("sim_ns", self.sim_ns);
        w.field_u64("alloc_bytes", self.alloc.alloc_bytes);
        w.begin_obj_field("queue");
        w.field_u64("pushed", self.queue.pushed);
        w.field_u64("popped", self.queue.popped);
        w.field_u64("max_depth", self.queue.max_depth as u64);
        w.end_obj();
        w.begin_obj_field("alloc");
        w.field_u64("allocs", self.alloc.allocs);
        w.field_u64("frees", self.alloc.frees);
        w.field_u64("reallocs", self.alloc.reallocs);
        w.field_u64("alloc_bytes", self.alloc.alloc_bytes);
        w.field_u64("freed_bytes", self.alloc.freed_bytes);
        w.end_obj();
        w.begin_obj_field("obs_tax");
        w.field_f64(
            "observed_wall_ms",
            self.obs_tax.observed_wall_ns as f64 / 1e6,
        );
        w.field_f64("bare_wall_ms", self.obs_tax.bare_wall_ns as f64 / 1e6);
        w.field_f64("overhead_pct", self.obs_tax.overhead_pct());
        w.end_obj();
    }
}

/// Measures one benchmark run: wall clock from [`HostMeter::start`] to
/// [`HostMeter::finish`], plus the allocation delta on this thread.
///
/// ```
/// use simcore::hostprof::HostMeter;
/// use simcore::queue::QueueStats;
/// use simcore::SimDuration;
///
/// let meter = HostMeter::start();
/// // ... drive the simulation ...
/// let host = meter.finish(1000, SimDuration::from_millis(5), QueueStats::default());
/// assert!(host.wall_ns > 0);
/// ```
#[derive(Debug)]
pub struct HostMeter {
    start: Instant,
    alloc0: AllocStats,
}

impl HostMeter {
    /// Starts the meter: snapshots the wall clock and allocation counters.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        HostMeter {
            start: Instant::now(),
            alloc0: alloc_snapshot(),
        }
    }

    /// Stops the meter. `ops` is the run's completed operation count,
    /// `sim_elapsed` the simulated time it spanned, and `queue` the event
    /// queue's counters (see [`crate::queue::EventQueue::stats`]).
    pub fn finish(self, ops: u64, sim_elapsed: SimDuration, queue: QueueStats) -> HostStats {
        let wall_ns = (self.start.elapsed().as_nanos() as u64).max(1);
        HostStats {
            wall_ns,
            ops,
            sim_ns: sim_elapsed.as_nanos(),
            queue,
            alloc: alloc_snapshot().since(&self.alloc0),
            obs_tax: ObsTax {
                observed_wall_ns: wall_ns,
                bare_wall_ns: wall_ns,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonw::{parse, JsonWriter};
    use crate::time::SimDuration;

    #[test]
    fn disabled_scopes_record_nothing() {
        reset();
        disable();
        {
            let _a = HostProf::scope("a");
            let _b = HostProf::scope("b");
        }
        assert!(scopes().is_empty());
        assert_eq!(folded_stacks(), "");
    }

    #[test]
    fn nested_scopes_fold_and_split_self_time() {
        reset();
        enable();
        {
            let _a = HostProf::scope("outer");
            for _ in 0..3 {
                let _b = HostProf::scope("inner");
                std::hint::black_box(vec![0u8; 64]);
            }
        }
        disable();
        let stats = scopes();
        reset();
        let outer = stats.iter().find(|s| s.path == "outer").expect("outer");
        let inner = stats
            .iter()
            .find(|s| s.path == "outer;inner")
            .expect("inner folded under outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 3);
        // The parent's total covers its children; its self time excludes
        // them (within rounding; all values are saturating).
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1);
        assert!(inner.self_ns <= inner.total_ns);
    }

    #[test]
    fn folded_stacks_have_host_root_and_sorted_paths() {
        reset();
        enable();
        {
            let _b = HostProf::scope("bbb");
        }
        {
            let _a = HostProf::scope("aaa");
        }
        disable();
        let folded = folded_stacks();
        reset();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("host;aaa "));
        assert!(lines[1].starts_with("host;bbb "));
    }

    #[test]
    fn alloc_deltas_balance_over_a_balanced_region() {
        let before = alloc_snapshot();
        {
            let mut v: Vec<u64> = Vec::new();
            for i in 0..4096 {
                v.push(i); // growth path: realloc, not alloc+free
            }
            std::hint::black_box(&v);
        }
        let delta = alloc_snapshot().since(&before);
        // Without the counting allocator installed (simcore unit tests run
        // without one) the delta is all zeros — the balance invariant holds
        // either way; tests/hostprof.rs asserts the non-trivial case.
        assert_eq!(delta.allocs, delta.frees);
        assert_eq!(delta.alloc_bytes, delta.freed_bytes);
    }

    #[test]
    fn host_stats_block_has_the_closed_key_set() {
        let host = HostStats {
            wall_ns: 2_000_000,
            ops: 100,
            sim_ns: 5_000_000,
            queue: QueueStats {
                pushed: 400,
                popped: 390,
                max_depth: 17,
            },
            alloc: AllocStats {
                allocs: 10,
                frees: 8,
                reallocs: 2,
                alloc_bytes: 1024,
                freed_bytes: 512,
            },
            obs_tax: ObsTax {
                observed_wall_ns: 2_000_000,
                bare_wall_ns: 1_000_000,
            },
        };
        assert_eq!(host.ops_per_sec(), 50_000.0);
        assert_eq!(host.events_per_sec(), 195_000.0);
        assert_eq!(host.sim_ns_per_wall_ms(), 2_500_000.0);
        assert_eq!(host.obs_tax.overhead_pct(), 100.0);
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.begin_obj_field("host");
        host.write_fields(&mut w);
        w.end_obj();
        w.end_obj();
        let root = parse(&w.finish()).expect("host block re-parses");
        let h = root.get("host").expect("host");
        for key in [
            "wall_ms",
            "ops_per_sec",
            "events_per_sec",
            "sim_ns_per_wall_ms",
            "ops",
            "sim_ns",
            "alloc_bytes",
            "queue",
            "alloc",
            "obs_tax",
        ] {
            assert!(h.get(key).is_some(), "missing host.{key}");
        }
        assert_eq!(h.as_obj().unwrap().len(), 10, "unexpected extra keys");
        assert_eq!(
            h.get("queue")
                .unwrap()
                .get("popped")
                .and_then(|v| v.as_u64()),
            Some(390)
        );
    }

    #[test]
    fn meter_produces_positive_wall_and_tax_defaults_to_zero() {
        let meter = HostMeter::start();
        std::hint::black_box(vec![0u8; 1 << 16]);
        let host = meter.finish(10, SimDuration::from_micros(3), QueueStats::default());
        assert!(host.wall_ns >= 1);
        assert_eq!(host.sim_ns, 3_000);
        assert_eq!(host.obs_tax.observed_wall_ns, host.wall_ns);
        assert_eq!(host.obs_tax.overhead_pct(), 0.0);
        let tuned = host.with_bare_wall_ns(0);
        assert_eq!(tuned.obs_tax.bare_wall_ns, 1, "bare wall clamps to 1ns");
    }
}
