//! Client side of the Naïve-RDMA chain, plus the chain constructor.

use crate::cmd::{self, CMD_SIZE};
use crate::replica::{NaiveCosts, NaiveReplica};
use cpusched::ProcKind;
use hyperloop::{GroupAck, GroupError, GroupOp};
use netsim::NodeId;
use rnicsim::payload::take_sges;
use rnicsim::{wqe_flags, CqId, Cqe, NicCtx, Opcode, Payload, QpId, RecvWqe, Wqe};
use simcore::{Outbox, SimDuration, SimTime, TraceKind, Tracer};
use std::collections::VecDeque;
use testbed::{Cluster, ProcRef};

/// Configuration of a Naïve-RDMA chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveConfig {
    /// Bytes of replicated shared state per replica.
    pub shared_size: u64,
    /// Command ring slots (also the ack ring length).
    pub cmd_slots: u32,
    /// Receives pre-posted per replica.
    pub prepost_depth: u32,
    /// Client in-flight window.
    pub window: u32,
    /// How replica processes obtain CPU: the paper's Naïve-Event
    /// ([`ProcKind::EventDriven`]) or Naïve-Polling ([`ProcKind::Polling`]).
    pub replica_kind: ProcKind,
    /// CPU cost model.
    pub costs: NaiveCosts,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            shared_size: 4 << 20,
            cmd_slots: 64,
            prepost_depth: 128,
            window: 16,
            replica_kind: ProcKind::EventDriven,
            costs: NaiveCosts::default(),
        }
    }
}

/// The wired chain: client handle plus the replicas' process refs.
#[derive(Debug)]
pub struct NaiveChain {
    /// Client-side issue/poll state.
    pub client: NaiveClient,
    /// The replica processes (for `Cluster::app_mut::<NaiveReplica>`).
    pub replica_procs: Vec<ProcRef>,
}

/// Client state: issues ops and collects acks.
#[derive(Debug)]
pub struct NaiveClient {
    node: NodeId,
    shared_base: u64,
    shared_size: u64,
    group_size: u32,
    qp_down: QpId,
    cq_ack: CqId,
    qp_ack: QpId,
    mirror_base: u64,
    staging_base: u64,
    cmd_slot_size: u64,
    cmd_slots: u32,
    ack_base: u64,
    ack_slot_size: u64,
    window: u32,
    next_gen: u64,
    completed: u64,
    pending: VecDeque<u64>,
    tracer: Tracer,
    /// Reusable completion buffer for [`NaiveClient::poll_into`].
    cqe_scratch: Vec<Cqe>,
    /// Reusable staging buffer for reading ack result maps.
    ack_raw: Vec<u8>,
}

impl NaiveChain {
    /// Wires a Naïve-RDMA chain on the cluster: symmetric shared regions,
    /// command rings, QPs, and one replica process per node (registered
    /// with `cfg.replica_kind` and bound to its receive CQ).
    ///
    /// # Panics
    ///
    /// Panics on an empty chain or asymmetric replica layouts.
    pub fn setup(
        cluster: &mut Cluster,
        client_node: NodeId,
        replica_nodes: &[NodeId],
        cfg: NaiveConfig,
    ) -> NaiveChain {
        let gs = replica_nodes.len() as u32;
        assert!(gs >= 1, "need at least one replica");
        let cmd_slot_size = (CMD_SIZE + gs as u64 * 8 + 63) & !63;

        // Symmetric regions.
        let mut shared_base = None;
        let mut cmd_base = None;
        for &rn in replica_nodes {
            let sb = cluster.fab.alloc(rn, cfg.shared_size);
            let cb = cluster.fab.alloc(rn, cmd_slot_size * cfg.cmd_slots as u64);
            match (shared_base, cmd_base) {
                (None, None) => {
                    shared_base = Some(sb);
                    cmd_base = Some(cb);
                }
                (Some(s), Some(c)) => assert_eq!((s, c), (sb, cb), "asymmetric {rn}"),
                _ => unreachable!(),
            }
            cluster.fab.reg_mr(rn, sb, cfg.shared_size);
            cluster
                .fab
                .reg_mr(rn, cb, cmd_slot_size * cfg.cmd_slots as u64);
        }
        let shared_base = shared_base.expect("non-empty chain");
        let cmd_base = cmd_base.expect("non-empty chain");

        // Client buffers.
        let mirror_base = cluster.fab.alloc(client_node, cfg.shared_size);
        let staging_base = cluster
            .fab
            .alloc(client_node, cmd_slot_size * cfg.cmd_slots as u64);
        let ack_slot_size = (gs as u64 * 8 + 63) & !63;
        let ack_base = cluster
            .fab
            .alloc(client_node, ack_slot_size * cfg.cmd_slots as u64);
        cluster
            .fab
            .reg_mr(client_node, ack_base, ack_slot_size * cfg.cmd_slots as u64);

        // Queues.
        let cq_down = cluster.fab.create_cq(client_node);
        let qp_down = cluster.fab.create_qp(client_node, cq_down, cq_down);
        let cq_ack = cluster.fab.create_cq(client_node);
        let qp_ack = cluster.fab.create_qp(client_node, cq_ack, cq_ack);

        let mut ups = Vec::new();
        let mut downs = Vec::new();
        let mut recv_cqs = Vec::new();
        for &rn in replica_nodes {
            let rcq = cluster.fab.create_cq(rn);
            let up = cluster.fab.create_qp(rn, rcq, rcq);
            let dcq = cluster.fab.create_cq(rn);
            let down = cluster.fab.create_qp(rn, dcq, dcq);
            ups.push(up);
            downs.push(down);
            recv_cqs.push(rcq);
        }
        cluster
            .fab
            .connect(client_node, qp_down, replica_nodes[0], ups[0]);
        for i in 0..replica_nodes.len() - 1 {
            cluster
                .fab
                .connect(replica_nodes[i], downs[i], replica_nodes[i + 1], ups[i + 1]);
        }
        let last = replica_nodes.len() - 1;
        cluster
            .fab
            .connect(replica_nodes[last], downs[last], client_node, qp_ack);

        // Pre-post receives (setup time: no effects can fire yet).
        let mut scratch = Outbox::new();
        for (i, &rn) in replica_nodes.iter().enumerate() {
            for g in 0..cfg.prepost_depth as u64 {
                let slot = cmd_base + (g % cfg.cmd_slots as u64) * cmd_slot_size;
                cluster.fab.post_recv(
                    SimTime::ZERO,
                    rn,
                    ups[i],
                    RecvWqe {
                        wr_id: g,
                        sges: vec![(slot, (CMD_SIZE + gs as u64 * 8) as u32)],
                    },
                    &mut scratch,
                );
            }
        }
        for _ in 0..cfg.window * 2 {
            cluster.fab.post_recv(
                SimTime::ZERO,
                client_node,
                qp_ack,
                RecvWqe {
                    wr_id: 0,
                    sges: vec![],
                },
                &mut scratch,
            );
        }
        assert!(scratch.is_empty(), "setup posts must not fire effects");

        // Register the replica processes.
        let mut replica_procs = Vec::new();
        for (i, &rn) in replica_nodes.iter().enumerate() {
            let app = NaiveReplica::new(
                rn,
                i as u32,
                gs,
                shared_base,
                cmd_base,
                cfg.cmd_slots,
                cmd_slot_size,
                ups[i],
                recv_cqs[i],
                downs[i],
                ack_base,
                ack_slot_size,
                cfg.costs,
                cfg.prepost_depth,
            );
            let proc = cluster.add_app(rn, cfg.replica_kind, Box::new(app));
            // The notification itself is cheap; per-op parse cost is charged
            // by the handler (it applies even when completions batch).
            cluster.bind_cq(proc, rn, recv_cqs[i], SimDuration::from_nanos(500));
            replica_procs.push(proc);
        }

        NaiveChain {
            client: NaiveClient {
                node: client_node,
                shared_base,
                shared_size: cfg.shared_size,
                group_size: gs,
                qp_down,
                cq_ack,
                qp_ack,
                mirror_base,
                staging_base,
                cmd_slot_size,
                cmd_slots: cfg.cmd_slots,
                ack_base,
                ack_slot_size,
                window: cfg.window,
                next_gen: 0,
                completed: 0,
                pending: VecDeque::new(),
                tracer: Tracer::disabled(),
                cqe_scratch: Vec::new(),
                ack_raw: Vec::new(),
            },
            replica_procs,
        }
    }
}

impl NaiveClient {
    /// Installs a trace sink for the op lifecycle (issue → ack). The
    /// operation generation is the causal op id — it is also the `wr_id`
    /// on the command SEND, matching [`hyperloop::GroupClient`] so stage
    /// attribution folds both systems' ops the same way.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Ops in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_gen - self.completed
    }

    /// Completed ops.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True if another op fits the window.
    pub fn can_issue(&self) -> bool {
        self.in_flight() < self.window as u64
    }

    /// Base of the client's local mirror.
    pub fn mirror_base(&self) -> u64 {
        self.mirror_base
    }

    /// The client node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The CQ on which chain acks arrive.
    pub fn ack_cq(&self) -> CqId {
        self.cq_ack
    }

    /// Issues a group operation; same semantics as
    /// [`hyperloop::GroupClient::issue`] but executed by replica CPUs.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] / [`GroupError::OutOfRange`].
    pub fn issue(&mut self, ctx: &mut NicCtx<'_>, op: GroupOp) -> Result<u64, GroupError> {
        if !self.can_issue() {
            return Err(GroupError::WindowFull);
        }
        let range_ok = |off: u64, len: u64| off + len <= self.shared_size;
        let ok = match &op {
            GroupOp::Write { offset, data, .. } => range_ok(*offset, data.len() as u64),
            GroupOp::Cas { offset, .. } => range_ok(*offset, 8),
            GroupOp::Memcpy { src, dst, len, .. } => range_ok(*src, *len) && range_ok(*dst, *len),
            GroupOp::Flush { offset } => range_ok(*offset, 1),
        };
        if !ok {
            return Err(GroupError::OutOfRange);
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.tracer
            .emit(ctx.now, self.node.0, gen, TraceKind::OpIssue);
        let slot = gen % self.cmd_slots as u64;

        // Stage command + zeroed result map.
        let mut buf = cmd::encode(gen, &op).to_vec();
        buf.resize((CMD_SIZE + self.group_size as u64 * 8) as usize, 0);
        let staging = self.staging_base + slot * self.cmd_slot_size;
        ctx.mem(self.node)
            .write_durable(staging, &buf)
            .expect("staging in bounds");

        match &op {
            GroupOp::Write { offset, data, .. } => {
                ctx.mem(self.node)
                    .write_durable(self.mirror_base + offset, data)
                    .expect("mirror in bounds");
                // Quiet post: the command SEND below rings the doorbell
                // for the pair.
                ctx.post_send_quiet(
                    self.node,
                    self.qp_down,
                    Wqe {
                        opcode: Opcode::Write,
                        flags: wqe_flags::HW_OWNED,
                        local_addr: self.mirror_base + offset,
                        len: data.len() as u64,
                        remote_addr: self.shared_base + offset,
                        wr_id: gen,
                        ..Wqe::default()
                    },
                );
            }
            GroupOp::Memcpy { src, dst, len, .. } => {
                let bytes = Payload::try_with(*len as usize, |buf| {
                    ctx.mem(self.node).read(self.mirror_base + src, buf)
                })
                .expect("mirror in bounds");
                ctx.mem(self.node)
                    .write_durable(self.mirror_base + dst, &bytes)
                    .expect("mirror in bounds");
            }
            _ => {}
        }

        ctx.post_send(
            self.node,
            self.qp_down,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: staging,
                len: CMD_SIZE + self.group_size as u64 * 8,
                wr_id: gen,
                ..Wqe::default()
            },
        );
        self.pending.push_back(gen);
        Ok(gen)
    }

    /// Collects completed operations.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<GroupAck> {
        let mut acks = Vec::new();
        self.poll_into(ctx, &mut acks);
        acks
    }

    /// Collects completed operations into a caller-provided buffer,
    /// returning how many were appended; reuses internal scratch so the
    /// steady-state poll loop does not allocate.
    pub fn poll_into(&mut self, ctx: &mut NicCtx<'_>, acks: &mut Vec<GroupAck>) -> usize {
        let mut cqes = std::mem::take(&mut self.cqe_scratch);
        cqes.clear();
        ctx.poll_cq_into(self.node, self.cq_ack, 64, &mut cqes);
        let appended = cqes.len();
        for cqe in cqes.drain(..) {
            assert_eq!(cqe.status, rnicsim::CqeStatus::Success, "{cqe:?}");
            let gen = cqe.imm.expect("ack imm");
            debug_assert_eq!(self.pending.pop_front(), Some(gen));
            let slot = self.ack_base + (gen % self.cmd_slots as u64) * self.ack_slot_size;
            self.ack_raw.clear();
            self.ack_raw.resize(self.group_size as usize * 8, 0);
            ctx.mem(self.node)
                .read(slot, &mut self.ack_raw)
                .expect("ack slot in bounds");
            let result_map = self
                .ack_raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            self.tracer
                .emit(ctx.now, self.node.0, gen, TraceKind::OpAck);
            self.completed += 1;
            ctx.post_recv(
                self.node,
                self.qp_ack,
                RecvWqe {
                    wr_id: 0,
                    sges: take_sges(),
                },
            );
            acks.push(GroupAck { gen, result_map });
        }
        self.cqe_scratch = cqes;
        appended
    }

    /// Per-op wall-clock bookkeeping hook: the per-op cost model parameter
    /// used when issuing (`post` twice + mirror write) is charged by the
    /// caller's process, not here; see the figure harnesses.
    pub fn window(&self) -> u32 {
        self.window
    }
}

impl hyperloop::GroupTransport for NaiveClient {
    fn group_size(&self) -> u32 {
        self.group_size
    }

    fn node(&self) -> NodeId {
        NaiveClient::node(self)
    }

    fn ack_cq(&self) -> CqId {
        NaiveClient::ack_cq(self)
    }

    fn shared_size(&self) -> u64 {
        self.shared_size
    }

    fn in_flight(&self) -> u64 {
        NaiveClient::in_flight(self)
    }

    fn window(&self) -> u32 {
        NaiveClient::window(self)
    }

    fn issue(&mut self, ctx: &mut NicCtx<'_>, op: GroupOp) -> Result<u64, GroupError> {
        NaiveClient::issue(self, ctx, op)
    }

    fn poll_into(&mut self, ctx: &mut NicCtx<'_>, acks: &mut Vec<GroupAck>) -> usize {
        NaiveClient::poll_into(self, ctx, acks)
    }
}
