//! The replica process of the Naïve-RDMA baseline.
//!
//! Every hop does on its **CPU** what HyperLoop does on the NIC: wake on the
//! receive completion, parse the command, execute it against local NVM
//! (memcpy / CAS / flush), post the forwarding verbs, and re-post receives.
//! Under multi-tenant load the wake-up and the run-queue wait dominate —
//! this is precisely the latency the paper measures in Figures 8-12.

use crate::cmd::{self, CMD_SIZE};
use hyperloop::{ExecuteMap, GroupOp};
use netsim::NodeId;
use rnicsim::payload::take_sges;
use rnicsim::{wqe_flags, CqId, Cqe, Opcode, Payload, QpId, RecvWqe, Wqe};
use simcore::SimDuration;
use std::collections::HashMap;
use testbed::{Env, HostApp, HostEvent};

/// CPU cost model of the replica software stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveCosts {
    /// Fixed cost of handling one completion (poll, parse, bookkeeping).
    pub parse: SimDuration,
    /// Cost of posting one verb (doorbell + descriptor build).
    pub post: SimDuration,
    /// Single-thread memcpy throughput, bytes per second.
    pub memcpy_bps: u64,
    /// Fixed cost of a persistence flush (cache-line writeback + fence).
    pub flush_fixed: SimDuration,
    /// Flush throughput, bytes per second.
    pub flush_bps: u64,
    /// Cost of a local compare-and-swap.
    pub cas: SimDuration,
}

impl Default for NaiveCosts {
    fn default() -> Self {
        NaiveCosts {
            parse: SimDuration::from_nanos(800),
            post: SimDuration::from_nanos(300),
            memcpy_bps: 6_000_000_000,
            flush_fixed: SimDuration::from_nanos(200),
            flush_bps: 4_000_000_000,
            cas: SimDuration::from_nanos(60),
        }
    }
}

impl NaiveCosts {
    fn memcpy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * 1_000_000_000 / self.memcpy_bps)
    }

    fn flush(&self, bytes: u64) -> SimDuration {
        self.flush_fixed + SimDuration::from_nanos(bytes * 1_000_000_000 / self.flush_bps)
    }

    /// Total CPU execution cost of one command at a replica.
    pub fn execute_cost(&self, op: &GroupOp) -> SimDuration {
        match op {
            GroupOp::Write { data, flush, .. } => {
                if *flush {
                    self.flush(data.len() as u64)
                } else {
                    SimDuration::ZERO
                }
            }
            GroupOp::Cas { .. } => self.cas,
            GroupOp::Memcpy { len, flush, .. } => {
                self.memcpy(*len)
                    + if *flush {
                        self.flush(*len)
                    } else {
                        SimDuration::ZERO
                    }
            }
            GroupOp::Flush { .. } => self.flush(64),
        }
    }
}

/// One Naïve-RDMA chain replica, as a testbed application.
pub struct NaiveReplica {
    node: NodeId,
    idx: u32,
    group_size: u32,
    shared_base: u64,
    cmd_base: u64,
    cmd_slots: u32,
    cmd_slot_size: u64,
    qp_up: QpId,
    recv_cq: CqId,
    qp_down: QpId,
    /// Client ack slot ring base (last replica only).
    ack_base: u64,
    ack_slot_size: u64,
    costs: NaiveCosts,
    /// Commands whose execution cost is still burning CPU.
    executing: HashMap<u64, cmd::Command>,
    /// Next recv generation to re-post.
    next_recv: u64,
    /// Reused completion buffer (one allocation per replica, not per poll).
    cqe_scratch: Vec<Cqe>,
    /// Operations fully handled (diagnostics).
    pub handled: u64,
}

impl NaiveReplica {
    /// Creates the replica state; used by `NaiveChain::setup`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: NodeId,
        idx: u32,
        group_size: u32,
        shared_base: u64,
        cmd_base: u64,
        cmd_slots: u32,
        cmd_slot_size: u64,
        qp_up: QpId,
        recv_cq: CqId,
        qp_down: QpId,
        ack_base: u64,
        ack_slot_size: u64,
        costs: NaiveCosts,
        preposted: u32,
    ) -> Self {
        NaiveReplica {
            node,
            idx,
            group_size,
            shared_base,
            cmd_base,
            cmd_slots,
            cmd_slot_size,
            qp_up,
            recv_cq,
            qp_down,
            ack_base,
            ack_slot_size,
            costs,
            executing: HashMap::new(),
            next_recv: preposted as u64,
            cqe_scratch: Vec::new(),
            handled: 0,
        }
    }

    fn is_last(&self) -> bool {
        self.idx + 1 == self.group_size
    }

    fn cmd_slot(&self, gen: u64) -> u64 {
        self.cmd_base + (gen % self.cmd_slots as u64) * self.cmd_slot_size
    }

    fn result_word(&self, gen: u64, idx: u32) -> u64 {
        self.cmd_slot(gen) + CMD_SIZE + idx as u64 * 8
    }

    /// Executes the op against local NVM (the CPU's share of the work).
    fn apply_locally(&mut self, env: &mut Env<'_>, c: &cmd::Command) {
        let node = self.node;
        match &c.op {
            GroupOp::Write {
                offset,
                data,
                flush,
            } => {
                // Payload already landed one-sided; only durability is ours.
                if *flush {
                    env.mem(node)
                        .flush_range(self.shared_base + offset, data.len() as u64)
                        .expect("in shared region");
                }
            }
            GroupOp::Cas {
                offset,
                compare,
                swap,
                execute,
            } => {
                if execute.contains(self.idx) {
                    let addr = self.shared_base + offset;
                    let mut cur = [0u8; 8];
                    env.mem(node)
                        .read(addr, &mut cur)
                        .expect("in shared region");
                    let original = u64::from_le_bytes(cur);
                    if original == *compare {
                        env.mem(node)
                            .write_durable(addr, &swap.to_le_bytes())
                            .expect("in shared region");
                    }
                    let rw = self.result_word(c.gen, self.idx);
                    env.mem(node)
                        .write_durable(rw, &original.to_le_bytes())
                        .expect("in command ring");
                }
            }
            GroupOp::Memcpy {
                src,
                dst,
                len,
                flush,
            } => {
                let bytes = Payload::try_with(*len as usize, |buf| {
                    env.mem(node).read(self.shared_base + src, buf)
                })
                .expect("in shared region");
                env.mem(node)
                    .write(self.shared_base + dst, &bytes)
                    .expect("in shared region");
                if *flush {
                    env.mem(node)
                        .flush_range(self.shared_base + dst, *len)
                        .expect("in shared region");
                }
            }
            GroupOp::Flush { offset } => {
                env.mem(node)
                    .flush_range(self.shared_base + offset, 64)
                    .expect("in shared region");
            }
        }
    }

    /// Posts the forwarding verbs (or the client ack on the last hop).
    fn forward(&mut self, env: &mut Env<'_>, c: &cmd::Command) {
        let gen = c.gen;
        if self.is_last() {
            // Ack: write the result map into the client's ack slot.
            env.post_send(
                self.node,
                self.qp_down,
                Wqe {
                    opcode: Opcode::WriteImm,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: self.cmd_slot(gen) + CMD_SIZE,
                    len: self.group_size as u64 * 8,
                    remote_addr: self.ack_base + (gen % self.cmd_slots as u64) * self.ack_slot_size,
                    compare_or_imm: gen,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
            return;
        }
        // Data first (one-sided), then the command+results (two-sided).
        if let GroupOp::Write { offset, data, .. } = &c.op {
            env.post_send(
                self.node,
                self.qp_down,
                Wqe {
                    opcode: Opcode::Write,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: self.shared_base + offset,
                    len: data.len() as u64,
                    remote_addr: self.shared_base + offset,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
        }
        env.post_send(
            self.node,
            self.qp_down,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: self.cmd_slot(gen),
                len: CMD_SIZE + self.group_size as u64 * 8,
                wr_id: gen,
                ..Wqe::default()
            },
        );
    }

    fn repost_recv(&mut self, env: &mut Env<'_>) {
        let gen = self.next_recv;
        self.next_recv += 1;
        let slot = self.cmd_slot(gen);
        let len = (CMD_SIZE + self.group_size as u64 * 8) as u32;
        let mut sges = take_sges();
        sges.push((slot, len));
        env.post_recv(self.node, self.qp_up, RecvWqe { wr_id: gen, sges });
    }
}

impl HostApp for NaiveReplica {
    fn on_event(&mut self, env: &mut Env<'_>, event: HostEvent) {
        match event {
            HostEvent::CqReady(cq) => {
                debug_assert_eq!(cq, self.recv_cq);
                let node = self.node;
                let mut cqes = std::mem::take(&mut self.cqe_scratch);
                cqes.clear();
                env.poll_cq_into(node, cq, 64, &mut cqes);
                for cqe in cqes.drain(..) {
                    let gen = cqe.wr_id;
                    let slot = self.cmd_slot(gen);
                    let mut raw = [0u8; CMD_SIZE as usize];
                    env.mem(node)
                        .read(slot, &mut raw)
                        .expect("command slot in bounds");
                    let Some(c) = cmd::decode(&raw) else {
                        continue; // corrupt command: drop
                    };
                    debug_assert_eq!(c.gen, gen, "recv/slot generation mismatch");
                    // Charge the execution cost (parsing included — it is
                    // per-op work even when notifications batch); continue
                    // when it is done.
                    let cost = self.costs.parse
                        + self.costs.execute_cost(&c.op)
                        + self.costs.post * if self.is_last() { 1 } else { 2 };
                    self.executing.insert(gen, c);
                    env.submit_work(cost, gen);
                }
                self.cqe_scratch = cqes;
            }
            HostEvent::WorkDone(gen) => {
                let Some(c) = self.executing.remove(&gen) else {
                    return;
                };
                self.apply_locally(env, &c);
                self.forward(env, &c);
                self.repost_recv(env);
                self.handled += 1;
            }
            _ => {}
        }
    }
}

/// Suppresses an unused-field warning: the execute map type is re-exported
/// for clients building commands.
pub type Execute = ExecuteMap;
