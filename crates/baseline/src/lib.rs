//! # baseline — the Naïve-RDMA comparator
//!
//! The paper's evaluation baseline (§6): the same group-operation API and
//! chain topology as HyperLoop, but with each replica's **CPU** in the
//! critical path — it wakes on the receive completion, parses the command,
//! executes it against local NVM, posts the forwarding verbs, and re-posts
//! receives. Two flavours, matching the paper:
//!
//! * **Naïve-Event** — replicas sleep and pay a wake-up per op;
//! * **Naïve-Polling** — replicas spin on their CQ (fast when they own a
//!   core, disastrous under multi-tenant co-location).
//!
//! Select via [`NaiveConfig::replica_kind`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cmd;
pub mod replica;

pub use client::{NaiveChain, NaiveClient, NaiveConfig};
pub use replica::{NaiveCosts, NaiveReplica};

#[cfg(test)]
mod tests {
    use super::*;
    use cpusched::ProcKind;
    use hyperloop::{ExecuteMap, GroupOp};
    use netsim::NodeId;
    use rnicsim::Payload;
    use simcore::{SimDuration, Simulation};
    use testbed::{drive, Cluster};

    const CLIENT: NodeId = NodeId(0);

    fn setup(replicas: u32, kind: ProcKind) -> (Simulation<Cluster>, NaiveChain) {
        let mut cluster = Cluster::with_defaults(replicas + 1, 8);
        let nodes: Vec<NodeId> = (1..=replicas).map(NodeId).collect();
        let chain = NaiveChain::setup(
            &mut cluster,
            CLIENT,
            &nodes,
            NaiveConfig {
                replica_kind: kind,
                ..NaiveConfig::default()
            },
        );
        (cluster.into_sim(), chain)
    }

    fn run_op(
        sim: &mut Simulation<Cluster>,
        chain: &mut NaiveChain,
        op: GroupOp,
    ) -> hyperloop::GroupAck {
        let gen = drive(sim, |ctx| chain.client.issue(ctx, op).expect("issue"));
        let deadline = sim.now() + SimDuration::from_secs(2);
        sim.run_until(deadline);
        let acks = drive(sim, |ctx| chain.client.poll(ctx));
        assert_eq!(acks.len(), 1, "expected one ack");
        assert_eq!(acks[0].gen, gen);
        assert_eq!(sim.model.fab.stats().errors, 0);
        acks.into_iter().next().expect("one ack")
    }

    #[test]
    fn naive_write_replicates_and_flushes_via_cpu() {
        let (mut sim, mut chain) = setup(3, ProcKind::EventDriven);
        run_op(
            &mut sim,
            &mut chain,
            GroupOp::Write {
                offset: 256,
                data: Payload::copy_from(b"naive-data"),
                flush: true,
            },
        );
        for n in 1..=3u32 {
            let base = 0; // shared region is the first allocation on replicas
            let _ = base;
            // Locate shared base through the replica app is private; read
            // via the known symmetric offset 0 (first allocation).
            let v = sim.model.fab.mem(NodeId(n)).read_vec(256, 10).unwrap();
            assert_eq!(v, b"naive-data", "replica {n}");
            assert!(sim.model.fab.mem(NodeId(n)).is_durable(256, 10).unwrap());
        }
        // Replica handlers did run on the CPU (unlike HyperLoop).
        for &proc in &chain.replica_procs {
            assert_eq!(sim.model.app_mut::<NaiveReplica>(proc).handled, 1);
        }
        let busy: SimDuration = (1..=3)
            .map(|n| sim.model.sched(NodeId(n)).stats().useful)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert!(busy > SimDuration::ZERO, "replica CPUs must have worked");
    }

    #[test]
    fn naive_cas_execute_map_and_results() {
        let (mut sim, mut chain) = setup(3, ProcKind::EventDriven);
        let exec = ExecuteMap::none().with(0).with(2);
        let ack = run_op(
            &mut sim,
            &mut chain,
            GroupOp::Cas {
                offset: 64,
                compare: 0,
                swap: 5,
                execute: exec,
            },
        );
        assert!(ack.cas_succeeded(0, exec));
        let vals: Vec<u64> = (1..=3)
            .map(|n| {
                u64::from_le_bytes(
                    sim.model
                        .fab
                        .mem(NodeId(n))
                        .read_vec(64, 8)
                        .unwrap()
                        .try_into()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(vals, vec![5, 0, 5]);
    }

    #[test]
    fn naive_memcpy_applies_on_every_replica() {
        let (mut sim, mut chain) = setup(2, ProcKind::EventDriven);
        run_op(
            &mut sim,
            &mut chain,
            GroupOp::Write {
                offset: 0,
                data: Payload::copy_from(b"PAYLOAD"),
                flush: true,
            },
        );
        run_op(
            &mut sim,
            &mut chain,
            GroupOp::Memcpy {
                src: 0,
                dst: 1 << 20,
                len: 7,
                flush: true,
            },
        );
        for n in 1..=2u32 {
            assert_eq!(
                sim.model.fab.mem(NodeId(n)).read_vec(1 << 20, 7).unwrap(),
                b"PAYLOAD"
            );
        }
    }

    #[test]
    fn polling_replicas_also_work() {
        let (mut sim, mut chain) = setup(3, ProcKind::Polling);
        run_op(
            &mut sim,
            &mut chain,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(1, 128),
                flush: true,
            },
        );
        // Pollers burn CPU continuously.
        let busy = sim.model.sched(NodeId(1)).stats().busy;
        assert!(busy > SimDuration::from_millis(1), "poller should burn CPU");
    }

    #[test]
    fn naive_pipeline_sustains_many_ops() {
        let (mut sim, mut chain) = setup(2, ProcKind::EventDriven);
        let mut done = 0;
        for _ in 0..40 {
            drive(&mut sim, |ctx| {
                while chain.client.can_issue() {
                    chain
                        .client
                        .issue(
                            ctx,
                            GroupOp::Write {
                                offset: 0,
                                data: Payload::filled(7, 256),
                                flush: true,
                            },
                        )
                        .expect("window checked");
                }
            });
            let deadline = sim.now() + SimDuration::from_millis(50);
            sim.run_until(deadline);
            done += drive(&mut sim, |ctx| chain.client.poll(ctx)).len();
            if done >= 200 {
                break;
            }
        }
        assert!(done >= 200, "only {done} ops completed");
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn idle_naive_latency_is_tens_of_microseconds() {
        let (mut sim, mut chain) = setup(3, ProcKind::EventDriven);
        // Warm up one op (first dispatch pays extra context switches).
        run_op(
            &mut sim,
            &mut chain,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(0, 64),
                flush: true,
            },
        );
        let t0 = sim.now();
        run_op(
            &mut sim,
            &mut chain,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(1, 64),
                flush: true,
            },
        );
        let lat = sim.now().since(t0);
        // Three wake-ups (5us) + context switches + work: tens of us, well
        // above HyperLoop's ~12us but far below loaded tails.
        assert!(lat > SimDuration::from_micros(20), "{lat}");
        assert!(lat < SimDuration::from_micros(200), "{lat}");
    }
}
