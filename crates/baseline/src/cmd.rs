//! The command message replicas parse on each hop.
//!
//! Naïve-RDMA replicates HyperLoop's *semantics* but keeps the CPU in the
//! loop: the client sends the payload with a one-sided WRITE and follows it
//! with this 64-byte command; each replica's process wakes up, parses the
//! command, executes it against local memory, and forwards both down the
//! chain. The trailing result map (one u64 per replica) accumulates gCAS
//! originals exactly like HyperLoop's metadata does.

use hyperloop::{ExecuteMap, GroupOp};
use rnicsim::Payload;

/// Encoded size of the fixed command header.
pub const CMD_SIZE: u64 = 64;

/// Operation discriminants on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpKind {
    Write = 0,
    Cas = 1,
    Memcpy = 2,
    Flush = 3,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Operation generation (for ack matching).
    pub gen: u64,
    /// The operation; `Write.data` is carried out-of-band (one-sided WRITE),
    /// so its byte vector here is empty and only the length matters.
    pub op: GroupOp,
}

/// Serializes a command header (no payload bytes; they travel one-sided).
pub fn encode(gen: u64, op: &GroupOp) -> [u8; CMD_SIZE as usize] {
    let mut b = [0u8; CMD_SIZE as usize];
    b[8..16].copy_from_slice(&gen.to_le_bytes());
    match op {
        GroupOp::Write {
            offset,
            data,
            flush,
        } => {
            b[0] = OpKind::Write as u8;
            b[1] = u8::from(*flush);
            b[16..24].copy_from_slice(&offset.to_le_bytes());
            b[24..32].copy_from_slice(&(data.len() as u64).to_le_bytes());
        }
        GroupOp::Cas {
            offset,
            compare,
            swap,
            execute,
        } => {
            b[0] = OpKind::Cas as u8;
            b[16..24].copy_from_slice(&offset.to_le_bytes());
            b[32..40].copy_from_slice(&compare.to_le_bytes());
            b[40..48].copy_from_slice(&swap.to_le_bytes());
            b[48..56].copy_from_slice(&execute.0.to_le_bytes());
        }
        GroupOp::Memcpy {
            src,
            dst,
            len,
            flush,
        } => {
            b[0] = OpKind::Memcpy as u8;
            b[1] = u8::from(*flush);
            b[16..24].copy_from_slice(&src.to_le_bytes());
            b[24..32].copy_from_slice(&len.to_le_bytes());
            b[56..64].copy_from_slice(&dst.to_le_bytes());
        }
        GroupOp::Flush { offset } => {
            b[0] = OpKind::Flush as u8;
            b[16..24].copy_from_slice(&offset.to_le_bytes());
        }
    }
    b
}

/// Parses a command header.
///
/// Returns `None` on an unknown opcode byte.
pub fn decode(b: &[u8; CMD_SIZE as usize]) -> Option<Command> {
    let u64le = |r: std::ops::Range<usize>| u64::from_le_bytes(b[r].try_into().unwrap());
    let gen = u64le(8..16);
    let op = match b[0] {
        0 => GroupOp::Write {
            offset: u64le(16..24),
            data: Payload::zeroed(u64le(24..32) as usize),
            flush: b[1] != 0,
        },
        1 => GroupOp::Cas {
            offset: u64le(16..24),
            compare: u64le(32..40),
            swap: u64le(40..48),
            execute: ExecuteMap(u64le(48..56)),
        },
        2 => GroupOp::Memcpy {
            src: u64le(16..24),
            len: u64le(24..32),
            dst: u64le(56..64),
            flush: b[1] != 0,
        },
        3 => GroupOp::Flush {
            offset: u64le(16..24),
        },
        _ => return None,
    };
    Some(Command { gen, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_round_trips_with_len_only() {
        let op = GroupOp::Write {
            offset: 4096,
            data: Payload::copy_from(&[9; 777]),
            flush: true,
        };
        let b = encode(5, &op);
        let c = decode(&b).unwrap();
        assert_eq!(c.gen, 5);
        let GroupOp::Write {
            offset,
            data,
            flush,
        } = c.op
        else {
            panic!("wrong op");
        };
        assert_eq!((offset, data.len(), flush), (4096, 777, true));
    }

    #[test]
    fn cas_round_trips() {
        let op = GroupOp::Cas {
            offset: 8,
            compare: 1,
            swap: 2,
            execute: ExecuteMap(0b101),
        };
        let c = decode(&encode(9, &op)).unwrap();
        assert_eq!(c.op, op);
    }

    #[test]
    fn memcpy_and_flush_round_trip() {
        for op in [
            GroupOp::Memcpy {
                src: 10,
                dst: 20,
                len: 30,
                flush: false,
            },
            GroupOp::Flush { offset: 77 },
        ] {
            assert_eq!(decode(&encode(1, &op)).unwrap().op, op);
        }
    }

    mod randomized {
        use super::*;
        use simcore::SimRng;

        fn gen_op(rng: &mut SimRng) -> GroupOp {
            match rng.gen_range(0..4) {
                0 => GroupOp::Write {
                    offset: rng.next_u64(),
                    data: Payload::zeroed(rng.gen_index(4096)),
                    flush: rng.gen_bool(0.5),
                },
                1 => GroupOp::Cas {
                    offset: rng.next_u64(),
                    compare: rng.next_u64(),
                    swap: rng.next_u64(),
                    execute: ExecuteMap(rng.next_u64()),
                },
                2 => GroupOp::Memcpy {
                    src: rng.next_u64(),
                    dst: rng.next_u64(),
                    len: rng.next_u64(),
                    flush: rng.gen_bool(0.5),
                },
                _ => GroupOp::Flush {
                    offset: rng.next_u64(),
                },
            }
        }

        #[test]
        fn any_command_round_trips() {
            let mut rng = SimRng::new(0xC0DEC);
            for _ in 0..128 {
                let gen = rng.next_u64();
                let op = gen_op(&mut rng);
                let c = decode(&encode(gen, &op)).unwrap();
                assert_eq!(c.gen, gen);
                // Write payloads travel out of band: compare shapes.
                match (&c.op, &op) {
                    (
                        GroupOp::Write {
                            offset: a,
                            data: da,
                            flush: fa,
                        },
                        GroupOp::Write {
                            offset: b,
                            data: db,
                            flush: fb,
                        },
                    ) => {
                        assert_eq!((a, da.len(), fa), (b, db.len(), fb));
                    }
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn unknown_opcode_is_none() {
        let mut b = [0u8; CMD_SIZE as usize];
        b[0] = 200;
        assert!(decode(&b).is_none());
    }
}
