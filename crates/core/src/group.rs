//! Group setup and the client/replica runtime state.
//!
//! [`HyperLoopGroup::setup`] wires a chain — client → R0 → R1 → … → R(n-1)
//! → client — and pre-posts the WAIT/INDIRECT descriptor chains on every
//! replica. After setup the data path never touches a replica CPU:
//!
//! * the client issues ops with [`GroupClient::issue`] (plain verbs on its
//!   own NIC);
//! * each replica's NIC reacts to the incoming metadata SEND (WAIT →
//!   loopback op → WAIT → forward);
//! * the last hop's NIC writes the ack (with the gCAS result map) straight
//!   into the client's memory.
//!
//! The only replica-side software is the off-critical-path maintenance that
//! replaces consumed descriptors ([`ReplicaHandle::replenish`]).
//!
//! All data-path calls take a [`NicCtx`] — the bundled
//! `(fabric, now, outbox)` context.

use crate::config::{GroupConfig, SharedLayout};
use crate::meta::{build_payload_into, payload_len};
use crate::ops::{GroupAck, GroupOp};
use netsim::NodeId;
use rnicsim::payload::take_sges;
use rnicsim::{wqe_flags, CqId, Cqe, NicCtx, Opcode, Payload, QpId, RecvWqe, Wqe};
use simcore::simaudit::Probe;
use simcore::{TraceKind, Tracer};
use std::collections::VecDeque;
use std::fmt;

/// A write still in flight, tracked (only while an audit tap is attached)
/// so the ack path can decide whether a durability check is meaningful:
/// an overlapping younger write legitimately re-dirties the range, so the
/// check is skipped for it.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    gen: u64,
    offset: u64,
    len: u64,
    flush: bool,
}

/// Errors surfaced by the client data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// The in-flight window is full; poll for acks first.
    WindowFull,
    /// The op touches bytes outside the shared region.
    OutOfRange,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::WindowFull => f.write_str("in-flight window full"),
            GroupError::OutOfRange => f.write_str("offset outside shared region"),
        }
    }
}

impl std::error::Error for GroupError {}

/// A fully wired group: the client handle plus one handle per replica.
#[derive(Debug)]
pub struct HyperLoopGroup {
    /// The client (transaction coordinator) side.
    pub client: GroupClient,
    /// Per-replica maintenance handles, in chain order.
    pub replicas: Vec<ReplicaHandle>,
}

/// Client-side state: issues group ops and collects acks.
#[derive(Debug)]
pub struct GroupClient {
    node: NodeId,
    layout: SharedLayout,
    cfg: GroupConfig,
    qp_down: QpId,
    cq_ack: CqId,
    qp_ack: QpId,
    mirror_base: u64,
    staging_base: u64,
    ack_base: u64,
    ack_slot_size: u64,
    next_gen: u64,
    completed: u64,
    pending: VecDeque<u64>,
    pending_writes: VecDeque<PendingWrite>,
    replica_nodes: Vec<NodeId>,
    skip_flush: u64,
    tracer: Tracer,
    /// Reusable completion buffer for [`GroupClient::poll`] — the ack loop
    /// runs every host tick, so it must not allocate.
    cqe_scratch: Vec<Cqe>,
    /// Reusable staging buffer for reading ack result maps.
    ack_raw: Vec<u8>,
    /// Reusable metadata-payload staging buffer for issue.
    meta_scratch: Vec<u8>,
}

/// Replica-side state: owns the pre-post cursors for one chain position.
#[derive(Debug)]
pub struct ReplicaHandle {
    node: NodeId,
    idx: u32,
    layout: SharedLayout,
    qp_up: QpId,
    recv_cq_up: CqId,
    qp_loop_a: QpId,
    cq_loop: CqId,
    qp_down: QpId,
    next_prepost: u64,
    first_gen: u64,
}

impl HyperLoopGroup {
    /// Wires the chain and pre-posts every descriptor. `replica_nodes` is
    /// the chain order; the client node must not appear in it.
    ///
    /// Replica nodes must have symmetric allocation state (fresh nodes or
    /// nodes that have only ever run symmetric setups); setup asserts that
    /// the resulting offsets match.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain, asymmetric replica layouts, or exhausted
    /// device memory.
    pub fn setup(
        ctx: &mut NicCtx<'_>,
        client_node: NodeId,
        replica_nodes: &[NodeId],
        cfg: GroupConfig,
    ) -> HyperLoopGroup {
        cfg.validate();
        let gs = replica_nodes.len() as u32;
        assert!(gs >= 1, "need at least one replica");
        assert!(
            !replica_nodes.contains(&client_node),
            "client must not be a replica"
        );

        // Symmetric allocation on every replica.
        let slot_size = SharedLayout::slot_size_for(gs);
        let mut shared_base = None;
        let mut meta_base = None;
        for &rn in replica_nodes {
            let sb = ctx.fab.alloc(rn, cfg.shared_size);
            let mb = ctx.fab.alloc(rn, slot_size * cfg.meta_slots as u64);
            match (shared_base, meta_base) {
                (None, None) => {
                    shared_base = Some(sb);
                    meta_base = Some(mb);
                }
                (Some(s), Some(m)) => {
                    assert_eq!((s, m), (sb, mb), "replica {rn} layout asymmetric");
                }
                _ => unreachable!(),
            }
            ctx.fab.reg_mr(rn, sb, cfg.shared_size);
            ctx.fab.reg_mr(rn, mb, slot_size * cfg.meta_slots as u64);
        }
        let layout = SharedLayout {
            shared_base: shared_base.expect("at least one replica"),
            shared_size: cfg.shared_size,
            meta_base: meta_base.expect("at least one replica"),
            meta_slot_size: slot_size,
            meta_slots: cfg.meta_slots,
            group_size: gs,
        };

        // Client-side buffers.
        let mirror_base = ctx.fab.alloc(client_node, cfg.shared_size);
        let staging_base = ctx
            .fab
            .alloc(client_node, slot_size * cfg.meta_slots as u64);
        let ack_slot_size = (layout.result_map_len() + 63) & !63;
        let ack_base = ctx
            .fab
            .alloc(client_node, ack_slot_size * cfg.meta_slots as u64);
        ctx.fab
            .reg_mr(client_node, ack_base, ack_slot_size * cfg.meta_slots as u64);

        // Queues: client down + ack.
        let cq_down = ctx.fab.create_cq(client_node);
        let qp_down = ctx.fab.create_qp(client_node, cq_down, cq_down);
        let cq_ack = ctx.fab.create_cq(client_node);
        let qp_ack = ctx.fab.create_qp(client_node, cq_ack, cq_ack);

        // Replica queues.
        let mut replicas = Vec::with_capacity(gs as usize);
        for (i, &rn) in replica_nodes.iter().enumerate() {
            let recv_cq_up = ctx.fab.create_cq(rn);
            let qp_up = ctx.fab.create_qp(rn, recv_cq_up, recv_cq_up);
            let cq_loop = ctx.fab.create_cq(rn);
            // Only the downstream WAIT ever consumes this CQ; no host polls
            // it, so don't retain host-pollable entries for eternity.
            ctx.fab.set_cq_wait_only(rn, cq_loop);
            let qp_loop_a = ctx.fab.create_qp(rn, cq_loop, cq_loop);
            let qp_loop_b = ctx.fab.create_qp(rn, cq_loop, cq_loop);
            ctx.fab.connect(rn, qp_loop_a, rn, qp_loop_b);
            let cq_down = ctx.fab.create_cq(rn);
            let qp_down = ctx.fab.create_qp(rn, cq_down, cq_down);
            replicas.push(ReplicaHandle {
                node: rn,
                idx: i as u32,
                layout,
                qp_up,
                recv_cq_up,
                qp_loop_a,
                cq_loop,
                qp_down,
                next_prepost: cfg.first_gen,
                first_gen: cfg.first_gen,
            });
        }

        // Chain wiring.
        ctx.fab
            .connect(client_node, qp_down, replicas[0].node, replicas[0].qp_up);
        for i in 0..replicas.len() - 1 {
            let (a, b) = (i, i + 1);
            ctx.fab.connect(
                replicas[a].node,
                replicas[a].qp_down,
                replicas[b].node,
                replicas[b].qp_up,
            );
        }
        let last = replicas.len() - 1;
        ctx.fab.connect(
            replicas[last].node,
            replicas[last].qp_down,
            client_node,
            qp_ack,
        );

        // Pre-post descriptor chains and ack receives.
        for r in &mut replicas {
            r.replenish(ctx, cfg.prepost_depth);
        }
        for _ in 0..cfg.window * 2 {
            ctx.post_recv(
                client_node,
                qp_ack,
                RecvWqe {
                    wr_id: 0,
                    sges: vec![],
                },
            );
        }

        HyperLoopGroup {
            client: GroupClient {
                node: client_node,
                layout,
                cfg,
                qp_down,
                cq_ack,
                qp_ack,
                mirror_base,
                staging_base,
                ack_base,
                ack_slot_size,
                next_gen: cfg.first_gen,
                completed: 0,
                pending: VecDeque::new(),
                pending_writes: VecDeque::new(),
                replica_nodes: replica_nodes.to_vec(),
                skip_flush: 0,
                tracer: Tracer::disabled(),
                cqe_scratch: Vec::new(),
                ack_raw: Vec::new(),
                meta_scratch: Vec::new(),
            },
            replicas,
        }
    }
}

impl GroupClient {
    /// Installs a trace sink for the group-op lifecycle (issue → metadata
    /// SEND → per-replica progress → ACK). The operation generation is the
    /// causal op id — it is also the `wr_id` on every WQE of the chain.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed trace sink (disabled unless
    /// [`GroupClient::set_tracer`] was called). Clones share one buffer,
    /// so a migration driver can emit alongside the client and carry the
    /// sink over to the replacement client.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The group configuration this client was set up with.
    pub fn config(&self) -> GroupConfig {
        self.cfg
    }

    /// The replica-space layout (shared by all group members).
    pub fn layout(&self) -> &SharedLayout {
        &self.layout
    }

    /// The client node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The CQ on which chain acks (the last replica's WRITE_IMM) arrive.
    pub fn ack_cq(&self) -> CqId {
        self.cq_ack
    }

    /// Base of the client's local mirror of the shared region.
    pub fn mirror_base(&self) -> u64 {
        self.mirror_base
    }

    /// Operations issued but not yet acked.
    pub fn in_flight(&self) -> u64 {
        self.next_gen - self.cfg.first_gen - self.completed
    }

    /// Total operations acknowledged (a count, regardless of the group's
    /// [`GroupConfig::first_gen`] base).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True if another op can be issued right now.
    pub fn can_issue(&self) -> bool {
        self.in_flight() < self.cfg.window as u64
    }

    /// The configured in-flight window.
    pub fn window(&self) -> u32 {
        self.cfg.window
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<(), GroupError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.layout.shared_size)
        {
            return Err(GroupError::OutOfRange);
        }
        Ok(())
    }

    /// Issues a group operation down the chain, returning its generation.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] when too many ops are outstanding;
    /// [`GroupError::OutOfRange`] for offsets beyond the shared region.
    pub fn issue(&mut self, ctx: &mut NicCtx<'_>, op: GroupOp) -> Result<u64, GroupError> {
        if !self.can_issue() {
            return Err(GroupError::WindowFull);
        }
        match &op {
            GroupOp::Write { offset, data, .. } => self.check_range(*offset, data.len() as u64)?,
            GroupOp::Cas { offset, .. } => self.check_range(*offset, 8)?,
            GroupOp::Memcpy { src, dst, len, .. } => {
                self.check_range(*src, *len)?;
                self.check_range(*dst, *len)?;
            }
            GroupOp::Flush { offset } => self.check_range(*offset, 1)?,
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.tracer
            .emit(ctx.now, self.node.0, gen, TraceKind::OpIssue);

        // Stage the metadata payload in client memory.
        let ack_addr = self.ack_base + (gen % self.cfg.meta_slots as u64) * self.ack_slot_size;
        let mut payload = std::mem::take(&mut self.meta_scratch);
        build_payload_into(&op, &self.layout, gen, ack_addr, &mut payload);
        let staging =
            self.staging_base + (gen % self.cfg.meta_slots as u64) * self.layout.meta_slot_size;
        ctx.mem(self.node)
            .write_durable(staging, &payload)
            .expect("staging slot in bounds");
        self.meta_scratch = payload;

        // Maintain the client's local mirror (it is chain member zero in
        // spirit: the op's effects apply to its copy too).
        let mut needs_flush_fence = false;
        match &op {
            GroupOp::Write {
                offset,
                data,
                flush,
            } => {
                ctx.mem(self.node)
                    .write_durable(self.mirror_base + offset, data)
                    .expect("mirror write in bounds");
                // Data WRITE to the first replica. Posted quiet: the
                // metadata SEND below lands on the same QP in the same
                // instant, and its doorbell wakes the engine once for the
                // whole batch.
                ctx.post_send_quiet(
                    self.node,
                    self.qp_down,
                    Wqe {
                        opcode: Opcode::Write,
                        flags: wqe_flags::HW_OWNED,
                        local_addr: self.mirror_base + offset,
                        len: data.len() as u64,
                        remote_addr: self.layout.shared_base + offset,
                        wr_id: gen,
                        ..Wqe::default()
                    },
                );
                if *flush {
                    if self.skip_flush > 0 {
                        self.skip_flush -= 1;
                    } else {
                        self.post_flush_read_quiet(ctx, *offset, gen);
                        needs_flush_fence = true;
                    }
                }
                if self.tracer.audit().is_enabled() {
                    self.pending_writes.push_back(PendingWrite {
                        gen,
                        offset: *offset,
                        len: data.len() as u64,
                        flush: *flush,
                    });
                }
            }
            GroupOp::Memcpy { src, dst, len, .. } => {
                // Apply to the local mirror (host-side copy through a
                // pooled buffer).
                let bytes = Payload::try_with(*len as usize, |buf| {
                    ctx.mem(self.node).read(self.mirror_base + src, buf)
                })
                .expect("mirror read in bounds");
                ctx.mem(self.node)
                    .write_durable(self.mirror_base + dst, &bytes)
                    .expect("mirror write in bounds");
            }
            GroupOp::Flush { offset } => {
                self.post_flush_read_quiet(ctx, *offset, gen);
                needs_flush_fence = true;
            }
            GroupOp::Cas { .. } => {}
        }

        // The metadata SEND that triggers the first replica's chain.
        self.tracer.emit(
            ctx.now,
            self.node.0,
            gen,
            TraceKind::MetaSend { replica: 0 },
        );
        ctx.post_send(
            self.node,
            self.qp_down,
            Wqe {
                opcode: Opcode::Send,
                flags: if needs_flush_fence {
                    wqe_flags::HW_OWNED | wqe_flags::FENCE
                } else {
                    wqe_flags::HW_OWNED
                },
                local_addr: staging,
                len: payload_len(&self.layout),
                wr_id: gen,
                ..Wqe::default()
            },
        );
        self.pending.push_back(gen);
        Ok(gen)
    }

    /// Fault injection for auditor mutation tests: silently drop the
    /// client-side gFLUSH (the 0-byte READ) of the next `n` flushed
    /// writes, leaving the first replica's bytes in the NIC volatile
    /// cache at ack time. The durability auditor must catch this.
    #[doc(hidden)]
    pub fn fault_skip_next_flush(&mut self, n: u64) {
        self.skip_flush += n;
    }

    /// At ack time, verify the acked flushed write is durable on every
    /// replica and feed the verdict to the audit tap. Skipped when a
    /// younger in-flight write overlaps the range: its bytes legitimately
    /// sit in the NIC cache until its own flush, so the check would
    /// false-positive.
    fn probe_ack_durability(&mut self, ctx: &mut NicCtx<'_>, gen: u64) {
        let audit = self.tracer.audit().clone();
        if !audit.is_enabled() {
            return;
        }
        let Some(front) = self.pending_writes.front().copied() else {
            return;
        };
        if front.gen != gen {
            return; // the acked op was not a write
        }
        self.pending_writes.pop_front();
        if !front.flush {
            return;
        }
        let overlapped = self
            .pending_writes
            .iter()
            .any(|w| front.offset < w.offset + w.len && w.offset < front.offset + front.len);
        if overlapped {
            return;
        }
        for &rn in &self.replica_nodes {
            let durable = ctx
                .mem(rn)
                .is_durable(self.layout.shared_base + front.offset, front.len)
                .unwrap_or(false);
            audit.probe(
                ctx.now,
                Probe::AckDurability {
                    op: gen,
                    node: rn.0,
                    durable,
                },
            );
        }
    }

    /// Posts the gFLUSH 0-byte READ without ringing the doorbell — every
    /// caller follows up with the metadata SEND on the same QP, whose
    /// doorbell covers the batch.
    fn post_flush_read_quiet(&mut self, ctx: &mut NicCtx<'_>, offset: u64, gen: u64) {
        ctx.post_send_quiet(
            self.node,
            self.qp_down,
            Wqe {
                opcode: Opcode::Read,
                flags: wqe_flags::HW_OWNED,
                local_addr: self.mirror_base,
                len: 0,
                remote_addr: self.layout.shared_base + offset,
                wr_id: gen,
                ..Wqe::default()
            },
        );
    }

    /// Collects completed operations (chain acks), re-posting ack receives.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<GroupAck> {
        let mut acks = Vec::new();
        self.poll_into(ctx, &mut acks);
        acks
    }

    /// Collects completed operations into a caller-provided buffer,
    /// returning how many were appended. The allocation-free twin of
    /// [`GroupClient::poll`]: a driver loop reuses one ack vector and the
    /// client reuses its own CQE scratch, so a steady-state poll touches
    /// the allocator zero times.
    pub fn poll_into(&mut self, ctx: &mut NicCtx<'_>, acks: &mut Vec<GroupAck>) -> usize {
        let mut cqes = std::mem::take(&mut self.cqe_scratch);
        cqes.clear();
        ctx.poll_cq_into(self.node, self.cq_ack, 64, &mut cqes);
        let appended = cqes.len();
        for cqe in cqes.drain(..) {
            assert_eq!(
                cqe.status,
                rnicsim::CqeStatus::Success,
                "chain ack failed: {cqe:?}"
            );
            let gen = cqe.imm.expect("ack carries the generation");
            let expected = self.pending.pop_front();
            debug_assert_eq!(expected, Some(gen), "acks must arrive in issue order");
            let slot = self.ack_base + (gen % self.cfg.meta_slots as u64) * self.ack_slot_size;
            self.ack_raw.clear();
            self.ack_raw
                .resize(self.layout.result_map_len() as usize, 0);
            ctx.mem(self.node)
                .read(slot, &mut self.ack_raw)
                .expect("ack slot in bounds");
            let result_map: Vec<u64> = self
                .ack_raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            if self.tracer.is_enabled() {
                // The ack proves every chain position executed: surface each
                // replica's contribution as client-visible progress.
                for replica in 0..result_map.len() as u32 {
                    self.tracer.emit(
                        ctx.now,
                        self.node.0,
                        gen,
                        TraceKind::ReplicaProgress { replica },
                    );
                }
            }
            self.probe_ack_durability(ctx, gen);
            self.tracer
                .emit(ctx.now, self.node.0, gen, TraceKind::OpAck);
            self.completed += 1;
            ctx.post_recv(
                self.node,
                self.qp_ack,
                RecvWqe {
                    wr_id: 0,
                    sges: take_sges(),
                },
            );
            acks.push(GroupAck { gen, result_map });
        }
        self.cqe_scratch = cqes;
        appended
    }
}

impl ReplicaHandle {
    /// This replica's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Chain position (0 = first after the client).
    pub fn idx(&self) -> u32 {
        self.idx
    }

    /// The CQ that fires once per incoming operation — bind the maintenance
    /// app here.
    pub fn recv_cq(&self) -> CqId {
        self.recv_cq_up
    }

    /// Generations pre-posted so far (a count, regardless of the group's
    /// [`GroupConfig::first_gen`] base).
    pub fn preposted(&self) -> u64 {
        self.next_prepost - self.first_gen
    }

    /// Pre-posts descriptor chains for the next `count` generations: the
    /// upstream RECV (scattering metadata into the generation's slot), the
    /// loopback WAIT + two indirect slots, and the downstream WAIT + three
    /// indirect slots. This is the *only* replica-side work in steady state,
    /// and it is off the critical path.
    pub fn replenish(&mut self, ctx: &mut NicCtx<'_>, count: u32) {
        for _ in 0..count {
            let gen = self.next_prepost;
            self.next_prepost += 1;
            let slot = self.layout.meta_slot(gen);
            let mut sges = take_sges();
            sges.push((slot, payload_len(&self.layout) as u32));
            ctx.post_recv(self.node, self.qp_up, RecvWqe { wr_id: gen, sges });
            // Loopback: WAIT on the upstream RECV, then two indirect images.
            ctx.post_send(
                self.node,
                self.qp_loop_a,
                Wqe {
                    opcode: Opcode::Wait,
                    flags: wqe_flags::HW_OWNED,
                    wait_cq: self.recv_cq_up.0,
                    wait_count: 1,
                    enable_count: 2,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
            for img in 0..2 {
                ctx.post_send(
                    self.node,
                    self.qp_loop_a,
                    Wqe {
                        opcode: Opcode::Nop,
                        flags: wqe_flags::INDIRECT, // unowned until the WAIT fires
                        local_addr: self.layout.image_addr(gen, self.idx, img),
                        wr_id: gen,
                        ..Wqe::default()
                    },
                );
            }
            // Downstream: WAIT on the loopback completion, then three images.
            ctx.post_send(
                self.node,
                self.qp_down,
                Wqe {
                    opcode: Opcode::Wait,
                    flags: wqe_flags::HW_OWNED,
                    wait_cq: self.cq_loop.0,
                    wait_count: 1,
                    enable_count: 3,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
            for img in 2..5 {
                ctx.post_send(
                    self.node,
                    self.qp_down,
                    Wqe {
                        opcode: Opcode::Nop,
                        flags: wqe_flags::INDIRECT,
                        local_addr: self.layout.image_addr(gen, self.idx, img),
                        wr_id: gen,
                        ..Wqe::default()
                    },
                );
            }
        }
    }
}
