//! Multi-key replicated transactions across shards.
//!
//! [`TxnManager`] drives [`Txn`]s — buffered multi-key read/write sets
//! spanning shards — through one of two commit paths behind the same API
//! ([`CommitMode`]):
//!
//! * **Locking** (paper §5): acquire gCAS write locks on every read *and*
//!   write site in global `(shard, lock)` order (deadlock-free by total
//!   order), validate read versions, apply the buffered writes as durable
//!   gWRITEs, release. Partial acquisitions are undone with the retrying
//!   [`WrUndo`] protocol; contended acquisitions back off with a seeded
//!   jittered [`LockBackoff`] and retry up to a bounded attempt count.
//! * **Optimistic** (FDB-style): lock only the write sites, validate each
//!   buffered read's observed version as a conflict range with a no-op
//!   gCAS on the version word, then apply. A read whose version moved
//!   aborts the transaction (the caller re-reads and retries). Safe for
//!   read-modify-write shapes (read site == write site, so validation runs
//!   under the write lock); reads of never-written sites keep a small
//!   validate-to-apply window that the Locking mode closes.
//!
//! Each lock id owns an 8-byte *version word* ([`TxnLayout`]) bumped by
//! every committed writer; versions are the conflict-detection currency on
//! the read side, lock words on the write side. Everything is ack-driven
//! and asynchronous: call [`TxnManager::pump`] with the shard acks each
//! driver tick, exactly like the reader and migration state machines. The
//! manager emits [`Probe::TxnBegin`]..[`Probe::TxnAbort`] lifecycle probes
//! so `simaudit`'s txn auditor can verify atomicity, isolation and lock
//! hygiene online.

use crate::group::GroupError;
use crate::lock::{LockBackoff, LockTable, WrLockOutcome, WrUndo, WRITER_BIT};
use crate::ops::{ExecuteMap, GroupAck, GroupOp};
use crate::shard::{ShardAck, ShardId, ShardSet};
use crate::transport::GroupTransport;
use rnicsim::{NicCtx, Payload};
use simcore::{Audit, MetricsRegistry, Probe, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How a transaction's buffered operations reach the replicas at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// Two-phase locking over the read ∪ write sites (paper §5), acquired
    /// in global key order.
    Locking,
    /// Lock the write sites only; validate the read set's observed
    /// versions FDB-style before applying.
    Optimistic,
}

/// One lockable unit: a lock word (and its paired version word) on one
/// shard. Ordering is the global acquisition order (shard first, then
/// lock id) that makes the locking path deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnSite {
    /// The shard whose shared region holds the words.
    pub shard: ShardId,
    /// Lock id within the shard's [`TxnLayout`].
    pub lock: u32,
}

/// Where the transaction control words live in every shard's shared
/// region: a [`LockTable`] of lock words plus one 8-byte version word per
/// lock id. The layout is identical on every shard (the symmetric-layout
/// invariant, one level up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnLayout {
    locks: LockTable,
    versions_offset: u64,
}

impl TxnLayout {
    /// A layout with explicit lock table and version array base.
    ///
    /// # Panics
    ///
    /// Panics if `versions_offset` is not 8-byte aligned.
    pub fn new(locks: LockTable, versions_offset: u64) -> Self {
        assert_eq!(versions_offset % 8, 0, "version words must be aligned");
        TxnLayout {
            locks,
            versions_offset,
        }
    }

    /// The conventional layout: `count` lock words at `region_offset`,
    /// version words immediately after.
    pub fn standard(region_offset: u64, count: u32) -> Self {
        let locks = LockTable::new(region_offset, count);
        TxnLayout::new(locks, region_offset + count as u64 * 8)
    }

    /// The lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Number of lock (and version) words per shard.
    pub fn lock_count(&self) -> u32 {
        self.locks.count()
    }

    /// Shared-region offset of lock `id`'s version word.
    pub fn version_offset(&self, id: u32) -> u64 {
        assert!(id < self.locks.count(), "lock id {id} out of range");
        self.versions_offset + id as u64 * 8
    }
}

/// A transaction being assembled: buffered reads (with the version each
/// observed) and buffered writes. Build it with [`TxnManager::begin`],
/// submit with [`TxnManager::commit`].
#[derive(Debug)]
pub struct Txn {
    id: u64,
    reads: BTreeMap<TxnSite, u64>,
    writes: Vec<(TxnSite, u64, Payload)>,
}

impl Txn {
    /// The transaction's id (assigned at [`TxnManager::begin`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records a read of `site` that observed `version` (the conflict
    /// range). The first recorded version wins — re-reads within one
    /// transaction are repeatable.
    pub fn read(&mut self, site: TxnSite, version: u64) {
        self.reads.entry(site).or_insert(version);
    }

    /// Buffers a write of `data` at shared-region `offset`, covered by
    /// `site`'s lock. Nothing reaches the replicas until commit. Offsets
    /// must lie inside the target shard's shared region — an out-of-range
    /// write is a caller bug and panics at apply time.
    pub fn write(&mut self, site: TxnSite, offset: u64, data: Payload) {
        self.writes.push((site, offset, data));
    }

    /// Number of distinct read sites recorded.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Number of buffered writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }
}

/// Terminal state of a submitted transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxnOutcome {
    /// Every buffered write is durable on every replica of every touched
    /// shard; versions bumped; locks released.
    Committed,
    /// No buffered write reached any replica; locks released. Re-read and
    /// retry.
    Aborted,
}

/// The multi-shard issue surface the transaction layer runs on. Both
/// [`ShardSet`] and app-level sharded stores implement it, so the same
/// commit protocol drives raw transports and full storage engines.
pub trait TxnTransports {
    /// Number of shards.
    fn txn_shard_count(&self) -> u32;
    /// Replication group size of one shard.
    fn txn_group_size(&self, shard: ShardId) -> u32;
    /// True if the shard can take another op right now.
    fn txn_can_issue(&self, shard: ShardId) -> bool;
    /// Issues one group op on one shard, returning its generation.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] when the shard has no room (the manager
    /// retries next pump) or [`GroupError::OutOfRange`] for bad offsets.
    fn txn_issue(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError>;
}

impl<T: GroupTransport> TxnTransports for ShardSet<T> {
    fn txn_shard_count(&self) -> u32 {
        self.shard_count()
    }

    fn txn_group_size(&self, shard: ShardId) -> u32 {
        self.shard(shard).group_size()
    }

    fn txn_can_issue(&self, shard: ShardId) -> bool {
        self.can_issue_on(shard)
    }

    fn txn_issue(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError> {
        self.issue_on(ctx, shard, op)
    }
}

/// One lock release in flight, driven with the retrying [`WrUndo`]
/// protocol until the word is observably free on every replica.
#[derive(Debug)]
struct ReleaseLeg {
    site: TxnSite,
    undo: WrUndo,
    gen: Option<u64>,
    done: bool,
}

/// One read-version check in flight (no-op gCAS on the version word).
#[derive(Debug)]
struct ValidateLeg {
    site: TxnSite,
    observed: u64,
    gen: Option<u64>,
    done: bool,
}

/// One commit-time gWRITE in flight (buffered data or a version bump).
#[derive(Debug)]
struct ApplyLeg {
    shard: ShardId,
    op: GroupOp,
    /// `Some(lock)` for data writes (probed as [`Probe::TxnWrite`] at ack
    /// time); `None` for version bumps.
    probe_lock: Option<u32>,
    gen: Option<u64>,
    done: bool,
}

#[derive(Debug)]
enum RunPhase {
    /// Acquiring `lock_sites[idx]` (sequential, global order).
    Acquire { idx: usize, gen: Option<u64> },
    /// Undoing a partial acquisition of `lock_sites[idx]`.
    Undo {
        idx: usize,
        undo: WrUndo,
        gen: Option<u64>,
    },
    /// Releasing everything held after a failed acquisition; retry (after
    /// backoff) or abort when drained.
    Rollback { legs: Vec<ReleaseLeg>, retry: bool },
    /// Checking every buffered read's version.
    Validate {
        legs: Vec<ValidateLeg>,
        failed: bool,
    },
    /// Writing the buffered data + version bumps.
    Apply { legs: Vec<ApplyLeg> },
    /// Releasing the held locks; then committed/aborted.
    Release { legs: Vec<ReleaseLeg>, commit: bool },
}

#[derive(Debug)]
struct TxnRun {
    txn: Txn,
    /// Sorted, deduplicated acquisition order.
    lock_sites: Vec<TxnSite>,
    held: BTreeSet<TxnSite>,
    attempts: u32,
    begun: bool,
    /// Waiting out a backoff delay (woken by the deferred queue).
    parked: bool,
    backoff: LockBackoff,
    /// Version-word values this commit installs, applied to the manager's
    /// cache on commit.
    new_versions: Vec<(TxnSite, u64)>,
    phase: RunPhase,
}

/// What an ack dispatch decided the run does next (computed inside the
/// phase match, executed after it to keep the borrows disjoint).
enum Next {
    Keep,
    Acquire(usize),
    Validate,
    Apply,
    Release(bool),
    RetryOrAbort,
    Park,
    Finish(bool),
    BeginUndo(usize, WrUndo),
}

/// Drives transactions to commit or abort over a sharded transport. See
/// the module docs for the protocol; see [`TxnManager::pump`] for the
/// driving contract.
#[derive(Debug)]
pub struct TxnManager {
    layout: TxnLayout,
    mode: CommitMode,
    seed: u64,
    max_lock_attempts: u32,
    next_id: u64,
    /// Per-site version cache: what this client last installed. Advances
    /// only at commit (`finish`), never from in-flight validation acks —
    /// the cache must stay in lockstep with the client-visible values, or
    /// a fresh version paired with a stale read validates cleanly and
    /// commits a lost update.
    versions: HashMap<TxnSite, u64>,
    active: BTreeMap<u64, TxnRun>,
    /// `(shard, gen)` → owning transaction.
    gen_map: HashMap<(u32, u64), u64>,
    /// Parked transactions and their wake deadlines.
    deferred: Vec<(SimTime, u64)>,
    audit: Audit,
    /// Transactions submitted via [`TxnManager::commit`].
    pub started: u64,
    /// Transactions that reached [`TxnOutcome::Committed`].
    pub committed: u64,
    /// Transactions that reached [`TxnOutcome::Aborted`].
    pub aborted: u64,
    /// Lock acquisition rounds retried after contention.
    pub lock_retries: u64,
}

impl TxnManager {
    /// A manager over `layout` words, committing via `mode`. `seed` drives
    /// the deterministic backoff jitter.
    pub fn new(layout: TxnLayout, mode: CommitMode, seed: u64) -> Self {
        TxnManager {
            layout,
            mode,
            seed,
            max_lock_attempts: 8,
            next_id: 0,
            versions: HashMap::new(),
            active: BTreeMap::new(),
            gen_map: HashMap::new(),
            deferred: Vec::new(),
            audit: Audit::disabled(),
            started: 0,
            committed: 0,
            aborted: 0,
            lock_retries: 0,
        }
    }

    /// Installs the audit tap fed with the txn lifecycle probes.
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Bounds the lock acquisition rounds before a contended transaction
    /// aborts (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_max_lock_attempts(&mut self, n: u32) {
        assert!(n > 0, "at least one acquisition attempt is required");
        self.max_lock_attempts = n;
    }

    /// The commit path in use.
    pub fn mode(&self) -> CommitMode {
        self.mode
    }

    /// The control-word layout.
    pub fn layout(&self) -> &TxnLayout {
        &self.layout
    }

    /// The cached version of `site` — record this with [`Txn::read`] when
    /// reading the data the site covers.
    pub fn version(&self, site: TxnSite) -> u64 {
        self.versions.get(&site).copied().unwrap_or(0)
    }

    /// Transactions submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Starts assembling a transaction.
    pub fn begin(&mut self) -> Txn {
        let id = self.next_id;
        self.next_id += 1;
        self.started += 1;
        Txn {
            id,
            reads: BTreeMap::new(),
            writes: Vec::new(),
        }
    }

    /// Submits a transaction for commit; drive it with
    /// [`TxnManager::pump`] until its id appears in the returned outcomes.
    pub fn commit(&mut self, txn: Txn) -> u64 {
        let id = txn.id;
        let mut sites: BTreeSet<TxnSite> = txn.writes.iter().map(|w| w.0).collect();
        if self.mode == CommitMode::Locking {
            sites.extend(txn.reads.keys().copied());
        }
        let run = TxnRun {
            lock_sites: sites.into_iter().collect(),
            held: BTreeSet::new(),
            attempts: 0,
            begun: false,
            parked: false,
            backoff: LockBackoff::new(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            new_versions: Vec::new(),
            phase: RunPhase::Acquire { idx: 0, gen: None },
            txn,
        };
        self.active.insert(id, run);
        id
    }

    /// The lock-word owner id for a transaction (never zero, never
    /// colliding with [`WRITER_BIT`]).
    fn owner(id: u64) -> u64 {
        let owner = id + 1;
        assert!(owner & WRITER_BIT == 0, "txn id overflows the owner space");
        owner
    }

    /// One driver tick: dispatch this tick's shard acks to their
    /// transactions, wake parked transactions whose backoff expired (or
    /// immediately when the tick is idle, so an empty event queue cannot
    /// strand them), and issue whatever each phase is missing. Returns the
    /// transactions that finished this tick.
    pub fn pump<S: TxnTransports>(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shards: &mut S,
        acks: &[ShardAck],
    ) -> Vec<(u64, TxnOutcome)> {
        let now = ctx.now;
        let mut finished = Vec::new();
        for sa in acks {
            let key = (sa.shard.0, sa.ack.gen);
            if let Some(id) = self.gen_map.remove(&key) {
                self.on_ack(now, shards, id, sa.shard, &sa.ack, &mut finished);
            }
        }
        let idle = acks.is_empty();
        let mut i = 0;
        while i < self.deferred.len() {
            let (due, id) = self.deferred[i];
            if due <= now || idle {
                self.deferred.swap_remove(i);
                if let Some(run) = self.active.get_mut(&id) {
                    run.parked = false;
                }
            } else {
                i += 1;
            }
        }
        let ids: Vec<u64> = self.active.keys().copied().collect();
        for id in ids {
            self.step(ctx, shards, id, &mut finished);
        }
        finished
    }

    /// Snapshots the transaction counters into `reg`:
    /// `{prefix}.{started,committed,aborted,lock_retries}` counters plus
    /// an `{prefix}.in_flight` gauge. Idempotent re-export.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.started"), self.started);
        reg.counter_set(&format!("{prefix}.committed"), self.committed);
        reg.counter_set(&format!("{prefix}.aborted"), self.aborted);
        reg.counter_set(&format!("{prefix}.lock_retries"), self.lock_retries);
        reg.set_gauge(&format!("{prefix}.in_flight"), self.active.len() as f64);
    }

    // ---- transitions --------------------------------------------------

    fn release_legs<S: TxnTransports>(&self, shards: &S, run: &TxnRun) -> Vec<ReleaseLeg> {
        let owner = Self::owner(run.txn.id);
        run.held
            .iter()
            .map(|&site| ReleaseLeg {
                site,
                undo: WrUndo::new(
                    site.lock,
                    owner,
                    ExecuteMap::all(shards.txn_group_size(site.shard)),
                ),
                gen: None,
                done: false,
            })
            .collect()
    }

    /// Locks are all held: move to read validation (or skip ahead when
    /// there is nothing to check). Returns false when the run finished.
    fn enter_validate(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        let legs: Vec<ValidateLeg> = run
            .txn
            .reads
            .iter()
            .map(|(&site, &observed)| ValidateLeg {
                site,
                observed,
                gen: None,
                done: false,
            })
            .collect();
        if legs.is_empty() {
            return self.enter_apply(now, run, shards, finished);
        }
        run.phase = RunPhase::Validate {
            legs,
            failed: false,
        };
        true
    }

    /// Reads validated: stage the buffered writes plus one version bump
    /// per written site.
    fn enter_apply(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        let mut legs: Vec<ApplyLeg> = run
            .txn
            .writes
            .iter()
            .map(|(site, offset, data)| ApplyLeg {
                shard: site.shard,
                op: GroupOp::Write {
                    offset: *offset,
                    data: data.clone(),
                    flush: true,
                },
                probe_lock: Some(site.lock),
                gen: None,
                done: false,
            })
            .collect();
        let mut bumped: BTreeMap<TxnSite, u64> = BTreeMap::new();
        for (site, _, _) in &run.txn.writes {
            bumped
                .entry(*site)
                .or_insert_with(|| self.version(*site) + 1);
        }
        for (&site, &v) in &bumped {
            legs.push(ApplyLeg {
                shard: site.shard,
                op: GroupOp::Write {
                    offset: self.layout.version_offset(site.lock),
                    data: Payload::copy_from(&v.to_le_bytes()),
                    flush: true,
                },
                probe_lock: None,
                gen: None,
                done: false,
            });
        }
        run.new_versions = bumped.into_iter().collect();
        if legs.is_empty() {
            return self.enter_release(now, run, shards, true, finished);
        }
        run.phase = RunPhase::Apply { legs };
        true
    }

    /// Start releasing every held lock; finish immediately when nothing is
    /// held.
    fn enter_release(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        commit: bool,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        let legs = self.release_legs(shards, run);
        if legs.is_empty() {
            self.finish(now, run, commit, finished);
            return false;
        }
        run.phase = RunPhase::Release { legs, commit };
        true
    }

    /// An acquisition round failed (busy or undone partial): roll back the
    /// held locks, then retry after backoff or abort once the attempt
    /// budget is spent.
    fn begin_retry_or_abort(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        run.attempts += 1;
        let retry = run.attempts < self.max_lock_attempts;
        let legs = self.release_legs(shards, run);
        if legs.is_empty() {
            if retry {
                self.park(now, run);
                return true;
            }
            self.finish(now, run, false, finished);
            return false;
        }
        run.phase = RunPhase::Rollback { legs, retry };
        true
    }

    /// Schedule the next acquisition round after a jittered backoff delay.
    fn park(&mut self, now: SimTime, run: &mut TxnRun) {
        run.parked = true;
        run.phase = RunPhase::Acquire { idx: 0, gen: None };
        self.lock_retries += 1;
        self.deferred
            .push((now.saturating_add(run.backoff.next_delay()), run.txn.id));
    }

    fn finish(
        &mut self,
        now: SimTime,
        run: &TxnRun,
        commit: bool,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) {
        debug_assert!(run.held.is_empty(), "finishing with locks held");
        if commit {
            for &(site, v) in &run.new_versions {
                self.versions.insert(site, v);
            }
            self.committed += 1;
            self.audit.probe(
                now,
                Probe::TxnCommit {
                    txn: run.txn.id,
                    writes: run.txn.writes.len() as u64,
                },
            );
            finished.push((run.txn.id, TxnOutcome::Committed));
        } else {
            self.aborted += 1;
            self.audit.probe(now, Probe::TxnAbort { txn: run.txn.id });
            finished.push((run.txn.id, TxnOutcome::Aborted));
        }
    }

    // ---- ack dispatch -------------------------------------------------

    fn on_ack<S: TxnTransports>(
        &mut self,
        now: SimTime,
        shards: &S,
        id: u64,
        shard: ShardId,
        ack: &GroupAck,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) {
        let Some(mut run) = self.active.remove(&id) else {
            return;
        };
        let owner = Self::owner(id);
        let next = match &mut run.phase {
            RunPhase::Acquire { idx, gen } => {
                *gen = None;
                let i = *idx;
                let site = run.lock_sites[i];
                debug_assert_eq!(site.shard, shard, "lock ack from the wrong shard");
                match self.layout.locks.interpret_wr_lock(ack, site.lock, owner) {
                    WrLockOutcome::Acquired => {
                        self.audit.probe(
                            now,
                            Probe::TxnLock {
                                txn: id,
                                shard: site.shard.0,
                                lock: site.lock,
                            },
                        );
                        run.held.insert(site);
                        if i + 1 == run.lock_sites.len() {
                            Next::Validate
                        } else {
                            Next::Acquire(i + 1)
                        }
                    }
                    WrLockOutcome::Busy { .. } => Next::RetryOrAbort,
                    WrLockOutcome::Partial { undo } => Next::BeginUndo(i, undo),
                }
            }
            RunPhase::Undo { undo, gen, .. } => {
                *gen = None;
                if undo.absorb(ack) {
                    Next::RetryOrAbort
                } else {
                    Next::Keep
                }
            }
            RunPhase::Rollback { legs, retry } => {
                let retry = *retry;
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.site.shard == shard)
                {
                    leg.gen = None;
                    if leg.undo.absorb(ack) {
                        leg.done = true;
                        self.audit.probe(
                            now,
                            Probe::TxnUnlock {
                                txn: id,
                                shard: leg.site.shard.0,
                                lock: leg.site.lock,
                            },
                        );
                        run.held.remove(&leg.site);
                    }
                }
                if legs.iter().all(|l| l.done) {
                    if retry {
                        Next::Park
                    } else {
                        Next::Finish(false)
                    }
                } else {
                    Next::Keep
                }
            }
            RunPhase::Validate { legs, failed } => {
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.site.shard == shard)
                {
                    leg.gen = None;
                    leg.done = true;
                    let actual = ack.cas_observed(0);
                    // Mismatch aborts, but must NOT correct the version
                    // cache: `actual` may belong to a concurrent commit
                    // whose values are not client-visible yet. Advancing
                    // the cache here lets the next transaction pair the
                    // new version with a stale read — a torn (value,
                    // version) pair that validates cleanly and commits a
                    // lost update. The cache advances only in `finish`,
                    // when the bumping commit's values install.
                    if actual != leg.observed {
                        *failed = true;
                    }
                }
                if legs.iter().all(|l| l.done) {
                    if *failed {
                        Next::Release(false)
                    } else {
                        Next::Apply
                    }
                } else {
                    Next::Keep
                }
            }
            RunPhase::Apply { legs } => {
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.shard == shard)
                {
                    leg.gen = None;
                    leg.done = true;
                    if let Some(lock) = leg.probe_lock {
                        self.audit.probe(
                            now,
                            Probe::TxnWrite {
                                txn: id,
                                shard: shard.0,
                                lock,
                            },
                        );
                    }
                }
                if legs.iter().all(|l| l.done) {
                    Next::Release(true)
                } else {
                    Next::Keep
                }
            }
            RunPhase::Release { legs, commit } => {
                let commit = *commit;
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.site.shard == shard)
                {
                    leg.gen = None;
                    if leg.undo.absorb(ack) {
                        leg.done = true;
                        self.audit.probe(
                            now,
                            Probe::TxnUnlock {
                                txn: id,
                                shard: leg.site.shard.0,
                                lock: leg.site.lock,
                            },
                        );
                        run.held.remove(&leg.site);
                    }
                }
                if legs.iter().all(|l| l.done) {
                    Next::Finish(commit)
                } else {
                    Next::Keep
                }
            }
        };
        let keep = match next {
            Next::Keep => true,
            Next::Acquire(i) => {
                run.phase = RunPhase::Acquire { idx: i, gen: None };
                true
            }
            Next::BeginUndo(i, undo) => {
                run.phase = RunPhase::Undo {
                    idx: i,
                    undo,
                    gen: None,
                };
                true
            }
            Next::Validate => self.enter_validate(now, &mut run, shards, finished),
            Next::Apply => self.enter_apply(now, &mut run, shards, finished),
            Next::Release(commit) => self.enter_release(now, &mut run, shards, commit, finished),
            Next::RetryOrAbort => self.begin_retry_or_abort(now, &mut run, shards, finished),
            Next::Park => {
                self.park(now, &mut run);
                true
            }
            Next::Finish(commit) => {
                self.finish(now, &run, commit, finished);
                false
            }
        };
        if keep {
            self.active.insert(id, run);
        }
    }

    // ---- issuance -----------------------------------------------------

    /// Issues `op` on `shard` for `id`, recording the generation. Window
    /// pressure leaves the slot empty for the next pump; anything else is
    /// a layout bug.
    fn issue_for<S: TxnTransports>(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shards: &mut S,
        id: u64,
        shard: ShardId,
        op: GroupOp,
    ) -> Option<u64> {
        if !shards.txn_can_issue(shard) {
            return None;
        }
        match shards.txn_issue(ctx, shard, op) {
            Ok(gen) => {
                self.gen_map.insert((shard.0, gen), id);
                Some(gen)
            }
            Err(GroupError::WindowFull) => None,
            Err(e) => panic!("txn {id} issue on {shard} failed: {e}"),
        }
    }

    fn step<S: TxnTransports>(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shards: &mut S,
        id: u64,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) {
        let Some(mut run) = self.active.remove(&id) else {
            return;
        };
        if run.parked {
            self.active.insert(id, run);
            return;
        }
        if !run.begun {
            run.begun = true;
            self.audit.probe(ctx.now, Probe::TxnBegin { txn: id });
            if run.lock_sites.is_empty()
                && !self.enter_validate(ctx.now, &mut run, shards, finished)
            {
                return;
            }
        }
        let owner = Self::owner(id);
        // Collect what the phase is missing, then issue (two passes keep
        // the phase borrow and the issue borrow disjoint).
        let mut wanted: Vec<(ShardId, GroupOp)> = Vec::new();
        match &run.phase {
            RunPhase::Acquire { idx, gen } => {
                if gen.is_none() {
                    let site = run.lock_sites[*idx];
                    wanted.push((
                        site.shard,
                        GroupOp::Cas {
                            offset: self.layout.locks.word_offset(site.lock),
                            compare: 0,
                            swap: WRITER_BIT | owner,
                            execute: ExecuteMap::all(shards.txn_group_size(site.shard)),
                        },
                    ));
                }
            }
            RunPhase::Undo { idx, undo, gen } => {
                if gen.is_none() {
                    wanted.push((run.lock_sites[*idx].shard, undo.op(&self.layout.locks)));
                }
            }
            RunPhase::Rollback { legs, .. } | RunPhase::Release { legs, .. } => {
                for leg in legs.iter().filter(|l| !l.done && l.gen.is_none()) {
                    wanted.push((leg.site.shard, leg.undo.op(&self.layout.locks)));
                }
            }
            RunPhase::Validate { legs, .. } => {
                for leg in legs.iter().filter(|l| !l.done && l.gen.is_none()) {
                    wanted.push((
                        leg.site.shard,
                        GroupOp::Cas {
                            offset: self.layout.version_offset(leg.site.lock),
                            compare: leg.observed,
                            swap: leg.observed,
                            execute: ExecuteMap::none().with(0),
                        },
                    ));
                }
            }
            RunPhase::Apply { legs } => {
                for leg in legs.iter().filter(|l| !l.done && l.gen.is_none()) {
                    wanted.push((leg.shard, leg.op.clone()));
                }
            }
        }
        let mut issued: Vec<Option<u64>> = Vec::with_capacity(wanted.len());
        for (shard, op) in wanted {
            issued.push(self.issue_for(ctx, shards, id, shard, op));
        }
        // Write the generations back into the phase, in the same order the
        // first pass walked it.
        let mut it = issued.into_iter();
        match &mut run.phase {
            RunPhase::Acquire { gen, .. } | RunPhase::Undo { gen, .. } => {
                if gen.is_none() {
                    if let Some(g) = it.next() {
                        *gen = g;
                    }
                }
            }
            RunPhase::Rollback { legs, .. } | RunPhase::Release { legs, .. } => {
                for leg in legs.iter_mut().filter(|l| !l.done && l.gen.is_none()) {
                    match it.next() {
                        Some(g) => leg.gen = g,
                        None => break,
                    }
                }
            }
            RunPhase::Validate { legs, .. } => {
                for leg in legs.iter_mut().filter(|l| !l.done && l.gen.is_none()) {
                    match it.next() {
                        Some(g) => leg.gen = g,
                        None => break,
                    }
                }
            }
            RunPhase::Apply { legs } => {
                for leg in legs.iter_mut().filter(|l| !l.done && l.gen.is_none()) {
                    match it.next() {
                        Some(g) => leg.gen = g,
                        None => break,
                    }
                }
            }
        }
        self.active.insert(id, run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::{GroupClient, HyperLoopGroup};
    use crate::harness::{drive, fabric_sim, FabricSim};
    use crate::shard::AckJoin;
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    const CLIENT: NodeId = NodeId(0);

    /// Per-shard replica nodes and shared-region base.
    type ShardInfo = Vec<(Vec<NodeId>, u64)>;

    /// One client node plus `n_shards` disjoint 2-replica chains behind a
    /// [`ShardSet`]. Returns each shard's replica nodes and shared base.
    fn setup(n_shards: u32) -> (Simulation<FabricSim>, ShardSet<GroupClient>, ShardInfo) {
        let mut sim = fabric_sim(
            1 + 2 * n_shards,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            31,
        );
        let mut clients = Vec::new();
        let mut info = Vec::new();
        for s in 0..n_shards {
            let nodes = vec![NodeId(1 + 2 * s), NodeId(2 + 2 * s)];
            let group = drive(&mut sim, |ctx| {
                HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
            });
            sim.run();
            info.push((nodes, group.client.layout().shared_base));
            clients.push(group.client);
        }
        (sim, ShardSet::with_hash_router(clients), info)
    }

    fn layout() -> TxnLayout {
        TxnLayout::standard(1024, 16)
    }

    /// Pump until every submitted transaction finishes.
    fn drive_txns(
        sim: &mut Simulation<FabricSim>,
        shards: &mut ShardSet<GroupClient>,
        mgr: &mut TxnManager,
    ) -> Vec<(u64, TxnOutcome)> {
        let mut done = Vec::new();
        for _ in 0..400 {
            sim.run();
            let fin = drive(sim, |ctx| {
                let acks = shards.poll(ctx);
                mgr.pump(ctx, shards, &acks)
            });
            done.extend(fin);
            if mgr.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(mgr.in_flight(), 0, "transactions wedged");
        done
    }

    fn word_at(sim: &mut Simulation<FabricSim>, node: NodeId, addr: u64) -> u64 {
        u64::from_le_bytes(
            sim.model
                .fab
                .mem(node)
                .read_vec(addr, 8)
                .unwrap()
                .try_into()
                .unwrap(),
        )
    }

    #[test]
    fn layout_places_versions_after_locks() {
        let l = layout();
        assert_eq!(l.lock_count(), 16);
        assert_eq!(l.locks().word_offset(0), 1024);
        assert_eq!(l.version_offset(0), 1024 + 16 * 8);
        assert_eq!(l.version_offset(1) - l.version_offset(0), 8);
    }

    #[test]
    fn locking_commit_spans_shards() {
        let (mut sim, mut shards, info) = setup(2);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 7);
        mgr.set_audit(audit.clone());

        let s0 = TxnSite {
            shard: ShardId(0),
            lock: 2,
        };
        let s1 = TxnSite {
            shard: ShardId(1),
            lock: 2,
        };
        let mut t = mgr.begin();
        t.read(s0, mgr.version(s0));
        t.write(s0, 4096, Payload::copy_from(b"alpha"));
        t.write(s1, 4096, Payload::copy_from(b"bravo"));
        let id = mgr.commit(t);

        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Committed)]);
        assert_eq!(mgr.committed, 1);
        assert_eq!(mgr.aborted, 0);

        // Both shards' replicas carry their write.
        for (si, bytes) in [(0usize, b"alpha"), (1, b"bravo")] {
            let (nodes, base) = &info[si];
            for &n in nodes {
                assert_eq!(
                    sim.model.fab.mem(n).read_vec(base + 4096, 5).unwrap(),
                    bytes,
                    "shard {si} replica {n} missing txn write"
                );
            }
        }
        // Lock words free, versions bumped, on every replica.
        let l = layout();
        for (si, site) in [(0usize, s0), (1, s1)] {
            let (nodes, base) = &info[si];
            for &n in nodes {
                assert_eq!(
                    word_at(&mut sim, n, base + l.locks().word_offset(site.lock)),
                    0,
                    "lock leaked on shard {si} replica {n}"
                );
                assert_eq!(
                    word_at(&mut sim, n, base + l.version_offset(site.lock)),
                    1,
                    "version not bumped on shard {si} replica {n}"
                );
            }
            assert_eq!(mgr.version(site), 1);
        }
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn optimistic_conflict_aborts_then_retry_commits() {
        let (mut sim, mut shards, _) = setup(2);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Optimistic, 9);
        mgr.set_audit(audit.clone());
        let site = TxnSite {
            shard: ShardId(0),
            lock: 3,
        };

        // A and B both read version 0 of the same site (the classic
        // read-modify-write race).
        let mut a = mgr.begin();
        a.read(site, mgr.version(site));
        a.write(site, 8192, Payload::copy_from(b"AAAA"));
        let mut b = mgr.begin();
        b.read(site, mgr.version(site));
        b.write(site, 8192, Payload::copy_from(b"BBBB"));

        // A commits first and bumps the version.
        let ida = mgr.commit(a);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(ida, TxnOutcome::Committed)]);

        // B's conflict range moved: validation must abort it.
        let idb = mgr.commit(b);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(idb, TxnOutcome::Aborted)]);
        assert_eq!(mgr.aborted, 1);
        // The failed validation corrected the cached version.
        assert_eq!(mgr.version(site), 1);

        // Retry with a fresh read: commits.
        let mut b2 = mgr.begin();
        b2.read(site, mgr.version(site));
        b2.write(site, 8192, Payload::copy_from(b"BBBB"));
        let idb2 = mgr.commit(b2);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(idb2, TxnOutcome::Committed)]);
        assert_eq!(mgr.committed, 2);
        assert_eq!(mgr.version(site), 2);
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn contended_locking_txns_serialize_via_backoff() {
        let (mut sim, mut shards, info) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 3);
        mgr.set_audit(audit.clone());
        mgr.set_max_lock_attempts(16);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 5,
        };

        let mut a = mgr.begin();
        a.write(site, 2048, Payload::copy_from(b"AAAA"));
        let mut b = mgr.begin();
        b.write(site, 2048, Payload::copy_from(b"BBBB"));
        let ida = mgr.commit(a);
        let idb = mgr.commit(b);

        let mut done = drive_txns(&mut sim, &mut shards, &mut mgr);
        done.sort();
        assert_eq!(
            done,
            vec![(ida, TxnOutcome::Committed), (idb, TxnOutcome::Committed)]
        );
        assert!(mgr.lock_retries >= 1, "loser must have retried");
        let (nodes, base) = &info[0];
        let bytes = sim
            .model
            .fab
            .mem(nodes[0])
            .read_vec(base + 2048, 4)
            .unwrap();
        assert!(
            bytes == b"AAAA" || bytes == b"BBBB",
            "final value must be one full write: {bytes:?}"
        );
        assert_eq!(
            word_at(&mut sim, nodes[0], base + layout().locks().word_offset(5)),
            0
        );
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn foreign_holder_exhausts_attempts_and_aborts_clean() {
        let (mut sim, mut shards, info) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 5);
        mgr.set_audit(audit.clone());
        mgr.set_max_lock_attempts(2);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 7,
        };
        // A foreign owner holds the lock on every replica, forever.
        let (nodes, base) = info[0].clone();
        let addr = base + layout().locks().word_offset(site.lock);
        for &n in &nodes {
            sim.model
                .fab
                .mem(n)
                .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
                .unwrap();
        }

        let mut t = mgr.begin();
        t.write(site, 2048, Payload::copy_from(b"nope"));
        let id = mgr.commit(t);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Aborted)]);
        assert_eq!(mgr.aborted, 1);
        // No residue: the buffered write never reached the replicas.
        assert_eq!(
            sim.model
                .fab
                .mem(nodes[0])
                .read_vec(base + 2048, 4)
                .unwrap(),
            vec![0; 4]
        );
        // The foreign word is untouched.
        assert_eq!(word_at(&mut sim, nodes[0], addr), WRITER_BIT | 999);
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn partial_acquisition_is_undone_on_every_replica() {
        let (mut sim, mut shards, info) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 11);
        mgr.set_audit(audit.clone());
        mgr.set_max_lock_attempts(2);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 4,
        };
        // Poison replica 1 only: acquisitions go partial (replica 0 wins).
        let (nodes, base) = info[0].clone();
        let addr = base + layout().locks().word_offset(site.lock);
        sim.model
            .fab
            .mem(nodes[1])
            .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
            .unwrap();

        let mut t = mgr.begin();
        t.write(site, 2048, Payload::copy_from(b"nope"));
        let id = mgr.commit(t);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Aborted)]);
        assert!(mgr.lock_retries >= 1);
        // The winner replica's word returned to free after every undo.
        assert_eq!(
            word_at(&mut sim, nodes[0], addr),
            0,
            "partial winner must be released"
        );
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn read_only_txn_commits_without_writes() {
        let (mut sim, mut shards, _) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Optimistic, 13);
        mgr.set_audit(audit.clone());
        let site = TxnSite {
            shard: ShardId(0),
            lock: 1,
        };
        let mut t = mgr.begin();
        t.read(site, mgr.version(site));
        let id = mgr.commit(t);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Committed)]);
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn issue_many_joins_across_shards_and_is_all_or_nothing() {
        let (mut sim, mut shards, _) = setup(2);
        let op = |v: u8| GroupOp::Write {
            offset: 16384,
            data: Payload::filled(v, 64),
            flush: true,
        };
        let mut join = drive(&mut sim, |ctx| {
            shards
                .issue_many(ctx, vec![(ShardId(0), op(1)), (ShardId(1), op(2))])
                .unwrap()
        });
        assert_eq!(join.pending(), 2);
        assert!(!join.is_done());
        sim.run();
        let acks = drive(&mut sim, |ctx| shards.poll(ctx));
        for a in &acks {
            join.absorb(a);
        }
        assert!(join.is_done());

        // All-or-nothing: 17 legs on one shard exceed its window (16), so
        // nothing at all is issued.
        let before = shards.issued();
        let err = drive(&mut sim, |ctx| {
            shards
                .issue_many(ctx, (0..17).map(|i| (ShardId(0), op(i as u8))))
                .unwrap_err()
        });
        assert_eq!(err, GroupError::WindowFull);
        assert_eq!(shards.issued(), before, "rejected batch must issue nothing");

        // Foreign acks are ignored by a join.
        let mut other = AckJoin::new();
        other.track(ShardId(0), 99999);
        assert!(!other.absorb(&ShardAck {
            shard: ShardId(1),
            ack: GroupAck {
                gen: 99999,
                result_map: vec![],
            },
        }));
        assert!(!other.is_done());
    }
}
