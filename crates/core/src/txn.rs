//! Multi-key replicated transactions across shards.
//!
//! [`TxnManager`] drives [`Txn`]s — buffered multi-key read/write sets
//! spanning shards — through one of two commit paths behind the same API
//! ([`CommitMode`]):
//!
//! * **Locking** (paper §5): acquire gCAS write locks on every read *and*
//!   write site in global `(shard, lock)` order (deadlock-free by total
//!   order), validate read versions, apply the buffered writes as durable
//!   gWRITEs, release. Partial acquisitions are undone with the retrying
//!   [`WrUndo`] protocol; contended acquisitions back off with a seeded
//!   jittered [`LockBackoff`] and retry up to a bounded attempt count.
//! * **Optimistic** (FDB-style): lock only the write sites, validate each
//!   buffered read's observed version as a conflict range with a no-op
//!   gCAS on the version word, then apply. A read whose version moved
//!   aborts the transaction (the caller re-reads and retries). Safe for
//!   read-modify-write shapes (read site == write site, so validation runs
//!   under the write lock); reads of never-written sites keep a small
//!   validate-to-apply window that the Locking mode closes.
//!
//! Each lock id owns an 8-byte *version word* ([`TxnLayout`]) bumped by
//! every committed writer; versions are the conflict-detection currency on
//! the read side, lock words on the write side. Everything is ack-driven
//! and asynchronous: call [`TxnManager::pump`] with the shard acks each
//! driver tick, exactly like the reader and migration state machines. The
//! manager emits [`Probe::TxnBegin`]..[`Probe::TxnAbort`] lifecycle probes
//! so `simaudit`'s txn auditor can verify atomicity, isolation and lock
//! hygiene online.

use crate::group::GroupError;
use crate::lock::{LockBackoff, LockTable, WrLockOutcome, WrUndo, WRITER_BIT};
use crate::ops::{ExecuteMap, GroupAck, GroupOp};
use crate::shard::{ShardAck, ShardId, ShardSet};
use crate::transport::GroupTransport;
use rnicsim::{NicCtx, Payload};
use simcore::simtrace::{
    txn_op_id, NO_NODE, TXN_PHASE_ACQUIRE, TXN_PHASE_APPLY, TXN_PHASE_BACKOFF, TXN_PHASE_RELEASE,
    TXN_PHASE_ROLLBACK, TXN_PHASE_UNDO, TXN_PHASE_VALIDATE,
};
use simcore::{Audit, MetricsRegistry, Probe, SimTime, TraceKind, Tracer};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How a transaction's buffered operations reach the replicas at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// Two-phase locking over the read ∪ write sites (paper §5), acquired
    /// in global key order.
    Locking,
    /// Lock the write sites only; validate the read set's observed
    /// versions FDB-style before applying.
    Optimistic,
}

/// One lockable unit: a lock word (and its paired version word) on one
/// shard. Ordering is the global acquisition order (shard first, then
/// lock id) that makes the locking path deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnSite {
    /// The shard whose shared region holds the words.
    pub shard: ShardId,
    /// Lock id within the shard's [`TxnLayout`].
    pub lock: u32,
}

/// Where the transaction control words live in every shard's shared
/// region: a [`LockTable`] of lock words plus one 8-byte version word per
/// lock id. The layout is identical on every shard (the symmetric-layout
/// invariant, one level up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnLayout {
    locks: LockTable,
    versions_offset: u64,
}

impl TxnLayout {
    /// A layout with explicit lock table and version array base.
    ///
    /// # Panics
    ///
    /// Panics if `versions_offset` is not 8-byte aligned.
    pub fn new(locks: LockTable, versions_offset: u64) -> Self {
        assert_eq!(versions_offset % 8, 0, "version words must be aligned");
        TxnLayout {
            locks,
            versions_offset,
        }
    }

    /// The conventional layout: `count` lock words at `region_offset`,
    /// version words immediately after.
    pub fn standard(region_offset: u64, count: u32) -> Self {
        let locks = LockTable::new(region_offset, count);
        TxnLayout::new(locks, region_offset + count as u64 * 8)
    }

    /// The lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Number of lock (and version) words per shard.
    pub fn lock_count(&self) -> u32 {
        self.locks.count()
    }

    /// Shared-region offset of lock `id`'s version word.
    pub fn version_offset(&self, id: u32) -> u64 {
        assert!(id < self.locks.count(), "lock id {id} out of range");
        self.versions_offset + id as u64 * 8
    }
}

/// A transaction being assembled: buffered reads (with the version each
/// observed) and buffered writes. Build it with [`TxnManager::begin`],
/// submit with [`TxnManager::commit`].
#[derive(Debug)]
pub struct Txn {
    id: u64,
    reads: BTreeMap<TxnSite, u64>,
    writes: Vec<(TxnSite, u64, Payload)>,
    /// App-level key that motivated each touched site (see
    /// [`Txn::tag_key`]). Feeds the false-conflict meter: two txns
    /// contending on one site with *different* keys is a stripe collision,
    /// not a data conflict.
    keys: BTreeMap<TxnSite, u64>,
}

impl Txn {
    /// The transaction's id (assigned at [`TxnManager::begin`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records a read of `site` that observed `version` (the conflict
    /// range). The first recorded version wins — re-reads within one
    /// transaction are repeatable.
    pub fn read(&mut self, site: TxnSite, version: u64) {
        self.reads.entry(site).or_insert(version);
    }

    /// Buffers a write of `data` at shared-region `offset`, covered by
    /// `site`'s lock. Nothing reaches the replicas until commit. Offsets
    /// must lie inside the target shard's shared region — an out-of-range
    /// write is a caller bug and panics at apply time.
    pub fn write(&mut self, site: TxnSite, offset: u64, data: Payload) {
        self.writes.push((site, offset, data));
    }

    /// Number of distinct read sites recorded.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Number of buffered writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Tags `site` with the app-level key whose access routed to it. The
    /// first tag per site wins (matching [`Txn::read`] repeatability).
    /// Optional — untagged sites simply stay invisible to the
    /// false-conflict meter, since same-key vs stripe-collision cannot be
    /// told apart without the key.
    pub fn tag_key(&mut self, site: TxnSite, key: u64) {
        self.keys.entry(site).or_insert(key);
    }
}

/// Terminal state of a submitted transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxnOutcome {
    /// Every buffered write is durable on every replica of every touched
    /// shard; versions bumped; locks released.
    Committed,
    /// No buffered write reached any replica; locks released. Re-read and
    /// retry.
    Aborted,
}

/// Why a transaction aborted — the single normative abort-cause list.
///
/// Classification is deterministic:
///
/// * an abort out of the Validate phase is [`AbortCause::ValidationFailed`]
///   for the first mismatching read leg (ack-dispatch order, which is
///   deterministic);
/// * an abort out of the acquisition path is [`AbortCause::LockConflict`]
///   when the final failed round observed the lock held by a *live*
///   transaction of this manager (the conflict is attributable to a site
///   and a holder);
/// * otherwise the attempt budget drained against a foreign/stale holder
///   or partial-acquisition churn: [`AbortCause::BackoffExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Lock acquisition lost to a live conflicting holder at `site`.
    LockConflict {
        /// The contended lock site.
        site: TxnSite,
    },
    /// A buffered read's version word moved between read and validation.
    ValidationFailed {
        /// The read site whose version moved.
        site: TxnSite,
        /// The app-level key tagged on the site, when known.
        key: Option<u64>,
        /// The version the validating gCAS observed.
        observed: u64,
        /// The version the transaction read.
        expected: u64,
    },
    /// The bounded retry budget drained without an attributable live
    /// conflict (foreign holder, partial-acquisition churn).
    BackoffExhausted,
}

impl AbortCause {
    /// Stable snake_case label used in metric names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AbortCause::LockConflict { .. } => "lock_conflict",
            AbortCause::ValidationFailed { .. } => "validation_failed",
            AbortCause::BackoffExhausted => "backoff_exhausted",
        }
    }
}

/// Per-stripe lock contention telemetry, keyed by [`TxnSite`] in the
/// manager's contention table. Purely observational — the counters are
/// updated from acquisition acks and park decisions the state machine
/// takes anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteContention {
    /// Acquisition CAS rounds observed (acks, successful or not).
    pub attempts: u64,
    /// Rounds that failed to acquire (busy or partial).
    pub cas_failures: u64,
    /// Rounds that observed the word held by some owner (busy).
    pub conflicts: u64,
    /// Busy rounds where both contenders' key tags are known and differ:
    /// two distinct keys hashing to one stripe, not a data conflict.
    pub false_conflicts: u64,
    /// Backoff nanoseconds charged to this site (the loser parked here).
    pub wait_ns: u64,
    /// Backoff rounds charged to this site.
    pub backoff_retries: u64,
    /// High-water mark of transactions simultaneously waiting on the site.
    pub queue_hwm: u64,
}

/// The multi-shard issue surface the transaction layer runs on. Both
/// [`ShardSet`] and app-level sharded stores implement it, so the same
/// commit protocol drives raw transports and full storage engines.
pub trait TxnTransports {
    /// Number of shards.
    fn txn_shard_count(&self) -> u32;
    /// Replication group size of one shard.
    fn txn_group_size(&self, shard: ShardId) -> u32;
    /// True if the shard can take another op right now.
    fn txn_can_issue(&self, shard: ShardId) -> bool;
    /// Issues one group op on one shard, returning its generation.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] when the shard has no room (the manager
    /// retries next pump) or [`GroupError::OutOfRange`] for bad offsets.
    fn txn_issue(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError>;
}

impl<T: GroupTransport> TxnTransports for ShardSet<T> {
    fn txn_shard_count(&self) -> u32 {
        self.shard_count()
    }

    fn txn_group_size(&self, shard: ShardId) -> u32 {
        self.shard(shard).group_size()
    }

    fn txn_can_issue(&self, shard: ShardId) -> bool {
        self.can_issue_on(shard)
    }

    fn txn_issue(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shard: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError> {
        self.issue_on(ctx, shard, op)
    }
}

/// One lock release in flight, driven with the retrying [`WrUndo`]
/// protocol until the word is observably free on every replica.
#[derive(Debug)]
struct ReleaseLeg {
    site: TxnSite,
    undo: WrUndo,
    gen: Option<u64>,
    done: bool,
}

/// One read-version check in flight (no-op gCAS on the version word).
#[derive(Debug)]
struct ValidateLeg {
    site: TxnSite,
    observed: u64,
    gen: Option<u64>,
    done: bool,
}

/// One commit-time gWRITE in flight (buffered data or a version bump).
#[derive(Debug)]
struct ApplyLeg {
    shard: ShardId,
    op: GroupOp,
    /// `Some(lock)` for data writes (probed as [`Probe::TxnWrite`] at ack
    /// time); `None` for version bumps.
    probe_lock: Option<u32>,
    gen: Option<u64>,
    done: bool,
}

#[derive(Debug)]
enum RunPhase {
    /// Acquiring `lock_sites[idx]` (sequential, global order).
    Acquire { idx: usize, gen: Option<u64> },
    /// Undoing a partial acquisition of `lock_sites[idx]`.
    Undo {
        idx: usize,
        undo: WrUndo,
        gen: Option<u64>,
    },
    /// Releasing everything held after a failed acquisition; retry (after
    /// backoff) or abort when drained.
    Rollback { legs: Vec<ReleaseLeg>, retry: bool },
    /// Checking every buffered read's version.
    Validate {
        legs: Vec<ValidateLeg>,
        failed: bool,
    },
    /// Writing the buffered data + version bumps.
    Apply { legs: Vec<ApplyLeg> },
    /// Releasing the held locks; then committed/aborted.
    Release { legs: Vec<ReleaseLeg>, commit: bool },
}

#[derive(Debug)]
struct TxnRun {
    txn: Txn,
    /// Sorted, deduplicated acquisition order.
    lock_sites: Vec<TxnSite>,
    held: BTreeSet<TxnSite>,
    attempts: u32,
    begun: bool,
    /// Waiting out a backoff delay (woken by the deferred queue).
    parked: bool,
    backoff: LockBackoff,
    /// Version-word values this commit installs, applied to the manager's
    /// cache on commit.
    new_versions: Vec<(TxnSite, u64)>,
    phase: RunPhase,
    /// The phase code currently *open in the trace*. Tracked separately
    /// from `phase`: chained empty-leg transitions (validate → apply →
    /// release in one call stack) leave `phase` stale mid-delegation,
    /// while every transition must still emit its End/Begin pair.
    cur_phase: u8,
    /// Set at the first failing validation leg; wins the abort-cause
    /// classification in `finish`.
    abort_cause: Option<AbortCause>,
    /// Site of the last failed acquisition round and whether the observed
    /// holder was a live transaction of this manager (attributable
    /// conflict) — the lock-side abort-cause evidence.
    last_conflict: Option<(TxnSite, bool)>,
}

/// What an ack dispatch decided the run does next (computed inside the
/// phase match, executed after it to keep the borrows disjoint).
enum Next {
    Keep,
    Acquire(usize),
    Validate,
    Apply,
    Release(bool),
    RetryOrAbort,
    Park,
    Finish(bool),
    BeginUndo(usize, WrUndo),
}

/// Drives transactions to commit or abort over a sharded transport. See
/// the module docs for the protocol; see [`TxnManager::pump`] for the
/// driving contract.
#[derive(Debug)]
pub struct TxnManager {
    layout: TxnLayout,
    mode: CommitMode,
    seed: u64,
    max_lock_attempts: u32,
    next_id: u64,
    /// Per-site version cache: what this client last installed. Advances
    /// only at commit (`finish`), never from in-flight validation acks —
    /// the cache must stay in lockstep with the client-visible values, or
    /// a fresh version paired with a stale read validates cleanly and
    /// commits a lost update.
    versions: HashMap<TxnSite, u64>,
    active: BTreeMap<u64, TxnRun>,
    /// `(shard, gen)` → owning transaction.
    gen_map: HashMap<(u32, u64), u64>,
    /// Parked transactions and their wake deadlines.
    deferred: Vec<(SimTime, u64)>,
    audit: Audit,
    /// Receives the txn phase spans and op tags (disabled by default —
    /// purely observational, never feeds back into the protocol).
    tracer: Tracer,
    /// Per-stripe lock contention telemetry.
    contention: BTreeMap<TxnSite, SiteContention>,
    /// Transactions currently waiting (lost a round, not yet acquired) per
    /// site; feeds the queue-depth high-water mark.
    waiting: BTreeMap<TxnSite, BTreeSet<u64>>,
    /// Transactions submitted via [`TxnManager::commit`].
    pub started: u64,
    /// Transactions that reached [`TxnOutcome::Committed`].
    pub committed: u64,
    /// Transactions that reached [`TxnOutcome::Aborted`].
    pub aborted: u64,
    /// Lock acquisition rounds retried after contention.
    pub lock_retries: u64,
    /// Aborts classified [`AbortCause::LockConflict`].
    pub abort_lock_conflict: u64,
    /// Aborts classified [`AbortCause::ValidationFailed`].
    pub abort_validation_failed: u64,
    /// Aborts classified [`AbortCause::BackoffExhausted`].
    pub abort_backoff_exhausted: u64,
    /// Backoff parks taken (one per [`LockBackoff::next_delay`] draw).
    pub backoff_parks: u64,
    /// Total backoff nanoseconds scheduled across all parks.
    pub backoff_delay_ns: u64,
}

impl TxnManager {
    /// A manager over `layout` words, committing via `mode`. `seed` drives
    /// the deterministic backoff jitter.
    pub fn new(layout: TxnLayout, mode: CommitMode, seed: u64) -> Self {
        TxnManager {
            layout,
            mode,
            seed,
            max_lock_attempts: 8,
            next_id: 0,
            versions: HashMap::new(),
            active: BTreeMap::new(),
            gen_map: HashMap::new(),
            deferred: Vec::new(),
            audit: Audit::disabled(),
            tracer: Tracer::disabled(),
            contention: BTreeMap::new(),
            waiting: BTreeMap::new(),
            started: 0,
            committed: 0,
            aborted: 0,
            lock_retries: 0,
            abort_lock_conflict: 0,
            abort_validation_failed: 0,
            abort_backoff_exhausted: 0,
            backoff_parks: 0,
            backoff_delay_ns: 0,
        }
    }

    /// Installs the audit tap fed with the txn lifecycle probes.
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Installs the tracer that receives [`TraceKind::TxnPhaseBegin`]/
    /// [`TraceKind::TxnPhaseEnd`] spans and [`TraceKind::TxnOp`] tags.
    /// Observational only: with or without a tracer the manager issues the
    /// same ops in the same order.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The per-site contention table (see [`SiteContention`]).
    pub fn contention(&self) -> &BTreeMap<TxnSite, SiteContention> {
        &self.contention
    }

    /// `(label, count)` snapshot of the abort-cause counters, in the
    /// normative label order. The counts always sum to
    /// [`TxnManager::aborted`].
    pub fn abort_cause_counts(&self) -> [(&'static str, u64); 3] {
        [
            ("lock_conflict", self.abort_lock_conflict),
            ("validation_failed", self.abort_validation_failed),
            ("backoff_exhausted", self.abort_backoff_exhausted),
        ]
    }

    /// Numeric commit-mode code carried in trace payloads (see
    /// `simcore::simtrace::txn_mode_label`).
    fn mode_code(&self) -> u8 {
        match self.mode {
            CommitMode::Locking => 0,
            CommitMode::Optimistic => 1,
        }
    }

    /// Closes the open phase span and opens `phase` at `now` (End then
    /// Begin at the same timestamp; the trace's stable sort preserves the
    /// emission order). No-op when the phase is unchanged.
    fn set_phase(&self, now: SimTime, run: &mut TxnRun, phase: u8) {
        if run.cur_phase == phase {
            return;
        }
        let id = run.txn.id;
        let oid = txn_op_id(id);
        let mode = self.mode_code();
        self.tracer.emit(
            now,
            NO_NODE,
            oid,
            TraceKind::TxnPhaseEnd {
                txn: id,
                mode,
                phase: run.cur_phase,
            },
        );
        self.tracer.emit(
            now,
            NO_NODE,
            oid,
            TraceKind::TxnPhaseBegin {
                txn: id,
                mode,
                phase,
            },
        );
        run.cur_phase = phase;
    }

    /// Bounds the lock acquisition rounds before a contended transaction
    /// aborts (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_max_lock_attempts(&mut self, n: u32) {
        assert!(n > 0, "at least one acquisition attempt is required");
        self.max_lock_attempts = n;
    }

    /// The commit path in use.
    pub fn mode(&self) -> CommitMode {
        self.mode
    }

    /// The control-word layout.
    pub fn layout(&self) -> &TxnLayout {
        &self.layout
    }

    /// The cached version of `site` — record this with [`Txn::read`] when
    /// reading the data the site covers.
    pub fn version(&self, site: TxnSite) -> u64 {
        self.versions.get(&site).copied().unwrap_or(0)
    }

    /// Transactions submitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Starts assembling a transaction.
    pub fn begin(&mut self) -> Txn {
        let id = self.next_id;
        self.next_id += 1;
        self.started += 1;
        Txn {
            id,
            reads: BTreeMap::new(),
            writes: Vec::new(),
            keys: BTreeMap::new(),
        }
    }

    /// Submits a transaction for commit; drive it with
    /// [`TxnManager::pump`] until its id appears in the returned outcomes.
    pub fn commit(&mut self, txn: Txn) -> u64 {
        let id = txn.id;
        let mut sites: BTreeSet<TxnSite> = txn.writes.iter().map(|w| w.0).collect();
        if self.mode == CommitMode::Locking {
            sites.extend(txn.reads.keys().copied());
        }
        let run = TxnRun {
            lock_sites: sites.into_iter().collect(),
            held: BTreeSet::new(),
            attempts: 0,
            begun: false,
            parked: false,
            backoff: LockBackoff::new(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            new_versions: Vec::new(),
            phase: RunPhase::Acquire { idx: 0, gen: None },
            cur_phase: TXN_PHASE_ACQUIRE,
            abort_cause: None,
            last_conflict: None,
            txn,
        };
        self.active.insert(id, run);
        id
    }

    /// The lock-word owner id for a transaction (never zero, never
    /// colliding with [`WRITER_BIT`]).
    fn owner(id: u64) -> u64 {
        let owner = id + 1;
        assert!(owner & WRITER_BIT == 0, "txn id overflows the owner space");
        owner
    }

    /// One driver tick: dispatch this tick's shard acks to their
    /// transactions, wake parked transactions whose backoff expired (or
    /// immediately when the tick is idle, so an empty event queue cannot
    /// strand them), and issue whatever each phase is missing. Returns the
    /// transactions that finished this tick.
    pub fn pump<S: TxnTransports>(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shards: &mut S,
        acks: &[ShardAck],
    ) -> Vec<(u64, TxnOutcome)> {
        let now = ctx.now;
        let mut finished = Vec::new();
        for sa in acks {
            let key = (sa.shard.0, sa.ack.gen);
            if let Some(id) = self.gen_map.remove(&key) {
                self.on_ack(now, shards, id, sa.shard, &sa.ack, &mut finished);
            }
        }
        let idle = acks.is_empty();
        let tracer = self.tracer.clone();
        let mode = self.mode_code();
        let mut i = 0;
        while i < self.deferred.len() {
            let (due, id) = self.deferred[i];
            if due <= now || idle {
                self.deferred.swap_remove(i);
                if let Some(run) = self.active.get_mut(&id) {
                    run.parked = false;
                    // The backoff span ends here; the next acquisition
                    // round opens at the wake timestamp.
                    let oid = txn_op_id(id);
                    tracer.emit(
                        now,
                        NO_NODE,
                        oid,
                        TraceKind::TxnPhaseEnd {
                            txn: id,
                            mode,
                            phase: run.cur_phase,
                        },
                    );
                    tracer.emit(
                        now,
                        NO_NODE,
                        oid,
                        TraceKind::TxnPhaseBegin {
                            txn: id,
                            mode,
                            phase: TXN_PHASE_ACQUIRE,
                        },
                    );
                    run.cur_phase = TXN_PHASE_ACQUIRE;
                }
            } else {
                i += 1;
            }
        }
        let ids: Vec<u64> = self.active.keys().copied().collect();
        for id in ids {
            self.step(ctx, shards, id, &mut finished);
        }
        finished
    }

    /// Snapshots the transaction counters into `reg`:
    ///
    /// * `{prefix}.{started,committed,aborted,lock_retries}` counters plus
    ///   an `{prefix}.in_flight` gauge;
    /// * `{prefix}.abort_causes.{lock_conflict,validation_failed,backoff_exhausted}`
    ///   (always summing to `{prefix}.aborted`);
    /// * `{prefix}.backoff.{parks,delay_ns}` — the [`LockBackoff`] draws
    ///   taken on behalf of parked transactions;
    /// * `{prefix}.contention.*` — whole-manager sums (plus `queue_depth_hwm`
    ///   max and a `contended_sites` count) over the per-site table, and
    ///   `{prefix}.contention.site.s<shard>.l<lock>.<field>` detail for
    ///   each site that saw at least one failed CAS round.
    ///
    /// Idempotent re-export: every value is `counter_set`, not added.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.started"), self.started);
        reg.counter_set(&format!("{prefix}.committed"), self.committed);
        reg.counter_set(&format!("{prefix}.aborted"), self.aborted);
        reg.counter_set(&format!("{prefix}.lock_retries"), self.lock_retries);
        reg.set_gauge(&format!("{prefix}.in_flight"), self.active.len() as f64);
        reg.counter_set(
            &format!("{prefix}.abort_causes.lock_conflict"),
            self.abort_lock_conflict,
        );
        reg.counter_set(
            &format!("{prefix}.abort_causes.validation_failed"),
            self.abort_validation_failed,
        );
        reg.counter_set(
            &format!("{prefix}.abort_causes.backoff_exhausted"),
            self.abort_backoff_exhausted,
        );
        reg.counter_set(&format!("{prefix}.backoff.parks"), self.backoff_parks);
        reg.counter_set(&format!("{prefix}.backoff.delay_ns"), self.backoff_delay_ns);
        let mut total = SiteContention::default();
        let mut contended = 0u64;
        for (site, c) in &self.contention {
            total.attempts += c.attempts;
            total.cas_failures += c.cas_failures;
            total.conflicts += c.conflicts;
            total.false_conflicts += c.false_conflicts;
            total.wait_ns += c.wait_ns;
            total.backoff_retries += c.backoff_retries;
            total.queue_hwm = total.queue_hwm.max(c.queue_hwm);
            if c.cas_failures > 0 {
                contended += 1;
                let sp = format!("{prefix}.contention.site.s{}.l{}", site.shard.0, site.lock);
                reg.counter_set(&format!("{sp}.attempts"), c.attempts);
                reg.counter_set(&format!("{sp}.cas_failures"), c.cas_failures);
                reg.counter_set(&format!("{sp}.conflicts"), c.conflicts);
                reg.counter_set(&format!("{sp}.false_conflicts"), c.false_conflicts);
                reg.counter_set(&format!("{sp}.wait_ns"), c.wait_ns);
                reg.counter_set(&format!("{sp}.backoff_retries"), c.backoff_retries);
                reg.counter_set(&format!("{sp}.queue_depth_hwm"), c.queue_hwm);
            }
        }
        let cp = format!("{prefix}.contention");
        reg.counter_set(&format!("{cp}.attempts"), total.attempts);
        reg.counter_set(&format!("{cp}.cas_failures"), total.cas_failures);
        reg.counter_set(&format!("{cp}.conflicts"), total.conflicts);
        reg.counter_set(&format!("{cp}.false_conflicts"), total.false_conflicts);
        reg.counter_set(&format!("{cp}.wait_ns"), total.wait_ns);
        reg.counter_set(&format!("{cp}.backoff_retries"), total.backoff_retries);
        reg.counter_set(&format!("{cp}.queue_depth_hwm"), total.queue_hwm);
        reg.counter_set(&format!("{cp}.contended_sites"), contended);
    }

    // ---- transitions --------------------------------------------------

    fn release_legs<S: TxnTransports>(&self, shards: &S, run: &TxnRun) -> Vec<ReleaseLeg> {
        let owner = Self::owner(run.txn.id);
        run.held
            .iter()
            .map(|&site| ReleaseLeg {
                site,
                undo: WrUndo::new(
                    site.lock,
                    owner,
                    ExecuteMap::all(shards.txn_group_size(site.shard)),
                ),
                gen: None,
                done: false,
            })
            .collect()
    }

    /// Locks are all held: move to read validation (or skip ahead when
    /// there is nothing to check). Returns false when the run finished.
    fn enter_validate(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        self.set_phase(now, run, TXN_PHASE_VALIDATE);
        let legs: Vec<ValidateLeg> = run
            .txn
            .reads
            .iter()
            .map(|(&site, &observed)| ValidateLeg {
                site,
                observed,
                gen: None,
                done: false,
            })
            .collect();
        if legs.is_empty() {
            return self.enter_apply(now, run, shards, finished);
        }
        run.phase = RunPhase::Validate {
            legs,
            failed: false,
        };
        true
    }

    /// Reads validated: stage the buffered writes plus one version bump
    /// per written site.
    fn enter_apply(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        self.set_phase(now, run, TXN_PHASE_APPLY);
        let mut legs: Vec<ApplyLeg> = run
            .txn
            .writes
            .iter()
            .map(|(site, offset, data)| ApplyLeg {
                shard: site.shard,
                op: GroupOp::Write {
                    offset: *offset,
                    data: data.clone(),
                    flush: true,
                },
                probe_lock: Some(site.lock),
                gen: None,
                done: false,
            })
            .collect();
        let mut bumped: BTreeMap<TxnSite, u64> = BTreeMap::new();
        for (site, _, _) in &run.txn.writes {
            bumped
                .entry(*site)
                .or_insert_with(|| self.version(*site) + 1);
        }
        for (&site, &v) in &bumped {
            legs.push(ApplyLeg {
                shard: site.shard,
                op: GroupOp::Write {
                    offset: self.layout.version_offset(site.lock),
                    data: Payload::copy_from(&v.to_le_bytes()),
                    flush: true,
                },
                probe_lock: None,
                gen: None,
                done: false,
            });
        }
        run.new_versions = bumped.into_iter().collect();
        if legs.is_empty() {
            return self.enter_release(now, run, shards, true, finished);
        }
        run.phase = RunPhase::Apply { legs };
        true
    }

    /// Start releasing every held lock; finish immediately when nothing is
    /// held.
    fn enter_release(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        commit: bool,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        self.set_phase(now, run, TXN_PHASE_RELEASE);
        let legs = self.release_legs(shards, run);
        if legs.is_empty() {
            self.finish(now, run, commit, finished);
            return false;
        }
        run.phase = RunPhase::Release { legs, commit };
        true
    }

    /// An acquisition round failed (busy or undone partial): roll back the
    /// held locks, then retry after backoff or abort once the attempt
    /// budget is spent.
    fn begin_retry_or_abort(
        &mut self,
        now: SimTime,
        run: &mut TxnRun,
        shards: &impl TxnTransports,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) -> bool {
        run.attempts += 1;
        let retry = run.attempts < self.max_lock_attempts;
        let legs = self.release_legs(shards, run);
        if legs.is_empty() {
            if retry {
                self.park(now, run);
                return true;
            }
            self.finish(now, run, false, finished);
            return false;
        }
        self.set_phase(now, run, TXN_PHASE_ROLLBACK);
        run.phase = RunPhase::Rollback { legs, retry };
        true
    }

    /// Schedule the next acquisition round after a jittered backoff delay.
    fn park(&mut self, now: SimTime, run: &mut TxnRun) {
        self.set_phase(now, run, TXN_PHASE_BACKOFF);
        run.parked = true;
        run.phase = RunPhase::Acquire { idx: 0, gen: None };
        self.lock_retries += 1;
        let delay = run.backoff.next_delay();
        self.backoff_parks += 1;
        self.backoff_delay_ns += delay.as_nanos();
        // Charge the wait to the site that lost the round, when known.
        if let Some((site, _)) = run.last_conflict {
            let c = self.contention.entry(site).or_default();
            c.wait_ns += delay.as_nanos();
            c.backoff_retries += 1;
        }
        self.deferred.push((now.saturating_add(delay), run.txn.id));
    }

    fn finish(
        &mut self,
        now: SimTime,
        run: &TxnRun,
        commit: bool,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) {
        debug_assert!(run.held.is_empty(), "finishing with locks held");
        // The txn is leaving every wait queue it ever joined.
        for site in &run.lock_sites {
            if let Some(w) = self.waiting.get_mut(site) {
                w.remove(&run.txn.id);
                if w.is_empty() {
                    self.waiting.remove(site);
                }
            }
        }
        // Close the trace: the span that is open at finish time ends here.
        self.tracer.emit(
            now,
            NO_NODE,
            txn_op_id(run.txn.id),
            TraceKind::TxnPhaseEnd {
                txn: run.txn.id,
                mode: self.mode_code(),
                phase: run.cur_phase,
            },
        );
        if commit {
            for &(site, v) in &run.new_versions {
                self.versions.insert(site, v);
            }
            self.committed += 1;
            self.audit.probe(
                now,
                Probe::TxnCommit {
                    txn: run.txn.id,
                    writes: run.txn.writes.len() as u64,
                },
            );
            finished.push((run.txn.id, TxnOutcome::Committed));
        } else {
            self.aborted += 1;
            // Root-cause classification, in normative precedence order: a
            // validation mismatch recorded on the run wins; else a lock
            // conflict whose final failed round saw a live holder; else
            // the budget drained without an attributable live conflict.
            let cause = run.abort_cause.unwrap_or(match run.last_conflict {
                Some((site, true)) => AbortCause::LockConflict { site },
                _ => AbortCause::BackoffExhausted,
            });
            match cause {
                AbortCause::LockConflict { .. } => self.abort_lock_conflict += 1,
                AbortCause::ValidationFailed { .. } => self.abort_validation_failed += 1,
                AbortCause::BackoffExhausted => self.abort_backoff_exhausted += 1,
            }
            self.audit.probe(now, Probe::TxnAbort { txn: run.txn.id });
            finished.push((run.txn.id, TxnOutcome::Aborted));
        }
    }

    // ---- contention telemetry -----------------------------------------

    /// A lock round won `site`: leave its wait queue.
    fn note_lock_acquired(&mut self, id: u64, site: TxnSite) {
        if let Some(w) = self.waiting.get_mut(&site) {
            w.remove(&id);
            if w.is_empty() {
                self.waiting.remove(&site);
            }
        }
    }

    /// A lock round lost `site` to `holder`'s word. Updates the conflict
    /// and false-conflict meters and the wait queue; returns whether the
    /// holder is a live transaction of this manager.
    fn note_lock_busy(&mut self, id: u64, site: TxnSite, holder: u64, my_key: Option<u64>) -> bool {
        let holder_txn = if holder & WRITER_BIT != 0 {
            // Lock-word owner ids are `txn id + 1` (see `owner`).
            (holder & !WRITER_BIT).checked_sub(1)
        } else {
            None
        };
        // `id`'s run is out of `active` while its ack dispatches, so a
        // holder lookup can never alias the loser itself.
        let live = holder_txn.is_some_and(|t| self.active.contains_key(&t));
        let holder_key = holder_txn
            .and_then(|t| self.active.get(&t))
            .and_then(|r| r.txn.keys.get(&site).copied());
        // Same stripe, both keys known, keys differ: a stripe collision
        // (false conflict), not a data conflict.
        let false_conflict = live && matches!((my_key, holder_key), (Some(a), Some(b)) if a != b);
        let c = self.contention.entry(site).or_default();
        c.cas_failures += 1;
        c.conflicts += 1;
        if false_conflict {
            c.false_conflicts += 1;
        }
        let w = self.waiting.entry(site).or_default();
        w.insert(id);
        let depth = w.len() as u64;
        let c = self.contention.entry(site).or_default();
        c.queue_hwm = c.queue_hwm.max(depth);
        live
    }

    // ---- ack dispatch -------------------------------------------------

    fn on_ack<S: TxnTransports>(
        &mut self,
        now: SimTime,
        shards: &S,
        id: u64,
        shard: ShardId,
        ack: &GroupAck,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) {
        let Some(mut run) = self.active.remove(&id) else {
            return;
        };
        let owner = Self::owner(id);
        let next = match &mut run.phase {
            RunPhase::Acquire { idx, gen } => {
                *gen = None;
                let i = *idx;
                let site = run.lock_sites[i];
                debug_assert_eq!(site.shard, shard, "lock ack from the wrong shard");
                self.contention.entry(site).or_default().attempts += 1;
                match self.layout.locks.interpret_wr_lock(ack, site.lock, owner) {
                    WrLockOutcome::Acquired => {
                        self.note_lock_acquired(id, site);
                        self.audit.probe(
                            now,
                            Probe::TxnLock {
                                txn: id,
                                shard: site.shard.0,
                                lock: site.lock,
                            },
                        );
                        run.held.insert(site);
                        if i + 1 == run.lock_sites.len() {
                            Next::Validate
                        } else {
                            Next::Acquire(i + 1)
                        }
                    }
                    WrLockOutcome::Busy { holder } => {
                        let live =
                            self.note_lock_busy(id, site, holder, run.txn.keys.get(&site).copied());
                        run.last_conflict = Some((site, live));
                        Next::RetryOrAbort
                    }
                    WrLockOutcome::Partial { undo } => {
                        // A partial acquisition is a failed CAS round but
                        // not an attributable conflict: the replicas
                        // disagreed, no single live holder beat us.
                        self.contention.entry(site).or_default().cas_failures += 1;
                        run.last_conflict = Some((site, false));
                        Next::BeginUndo(i, undo)
                    }
                }
            }
            RunPhase::Undo { undo, gen, .. } => {
                *gen = None;
                if undo.absorb(ack) {
                    Next::RetryOrAbort
                } else {
                    Next::Keep
                }
            }
            RunPhase::Rollback { legs, retry } => {
                let retry = *retry;
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.site.shard == shard)
                {
                    leg.gen = None;
                    if leg.undo.absorb(ack) {
                        leg.done = true;
                        self.audit.probe(
                            now,
                            Probe::TxnUnlock {
                                txn: id,
                                shard: leg.site.shard.0,
                                lock: leg.site.lock,
                            },
                        );
                        run.held.remove(&leg.site);
                    }
                }
                if legs.iter().all(|l| l.done) {
                    if retry {
                        Next::Park
                    } else {
                        Next::Finish(false)
                    }
                } else {
                    Next::Keep
                }
            }
            RunPhase::Validate { legs, failed } => {
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.site.shard == shard)
                {
                    leg.gen = None;
                    leg.done = true;
                    let actual = ack.cas_observed(0);
                    // Mismatch aborts, but must NOT correct the version
                    // cache: `actual` may belong to a concurrent commit
                    // whose values are not client-visible yet. Advancing
                    // the cache here lets the next transaction pair the
                    // new version with a stale read — a torn (value,
                    // version) pair that validates cleanly and commits a
                    // lost update. The cache advances only in `finish`,
                    // when the bumping commit's values install.
                    if actual != leg.observed {
                        *failed = true;
                        // The first mismatching leg (ack order, which is
                        // deterministic) names the abort cause.
                        if run.abort_cause.is_none() {
                            run.abort_cause = Some(AbortCause::ValidationFailed {
                                site: leg.site,
                                key: run.txn.keys.get(&leg.site).copied(),
                                observed: actual,
                                expected: leg.observed,
                            });
                        }
                    }
                }
                if legs.iter().all(|l| l.done) {
                    if *failed {
                        Next::Release(false)
                    } else {
                        Next::Apply
                    }
                } else {
                    Next::Keep
                }
            }
            RunPhase::Apply { legs } => {
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.shard == shard)
                {
                    leg.gen = None;
                    leg.done = true;
                    if let Some(lock) = leg.probe_lock {
                        self.audit.probe(
                            now,
                            Probe::TxnWrite {
                                txn: id,
                                shard: shard.0,
                                lock,
                            },
                        );
                    }
                }
                if legs.iter().all(|l| l.done) {
                    Next::Release(true)
                } else {
                    Next::Keep
                }
            }
            RunPhase::Release { legs, commit } => {
                let commit = *commit;
                if let Some(leg) = legs
                    .iter_mut()
                    .find(|l| l.gen == Some(ack.gen) && l.site.shard == shard)
                {
                    leg.gen = None;
                    if leg.undo.absorb(ack) {
                        leg.done = true;
                        self.audit.probe(
                            now,
                            Probe::TxnUnlock {
                                txn: id,
                                shard: leg.site.shard.0,
                                lock: leg.site.lock,
                            },
                        );
                        run.held.remove(&leg.site);
                    }
                }
                if legs.iter().all(|l| l.done) {
                    Next::Finish(commit)
                } else {
                    Next::Keep
                }
            }
        };
        let keep = match next {
            Next::Keep => true,
            Next::Acquire(i) => {
                run.phase = RunPhase::Acquire { idx: i, gen: None };
                true
            }
            Next::BeginUndo(i, undo) => {
                self.set_phase(now, &mut run, TXN_PHASE_UNDO);
                run.phase = RunPhase::Undo {
                    idx: i,
                    undo,
                    gen: None,
                };
                true
            }
            Next::Validate => self.enter_validate(now, &mut run, shards, finished),
            Next::Apply => self.enter_apply(now, &mut run, shards, finished),
            Next::Release(commit) => self.enter_release(now, &mut run, shards, commit, finished),
            Next::RetryOrAbort => self.begin_retry_or_abort(now, &mut run, shards, finished),
            Next::Park => {
                self.park(now, &mut run);
                true
            }
            Next::Finish(commit) => {
                self.finish(now, &run, commit, finished);
                false
            }
        };
        if keep {
            self.active.insert(id, run);
        }
    }

    // ---- issuance -----------------------------------------------------

    /// Issues `op` on `shard` for `id`, recording the generation. Window
    /// pressure leaves the slot empty for the next pump; anything else is
    /// a layout bug.
    fn issue_for<S: TxnTransports>(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shards: &mut S,
        id: u64,
        shard: ShardId,
        op: GroupOp,
    ) -> Option<u64> {
        if !shards.txn_can_issue(shard) {
            return None;
        }
        match shards.txn_issue(ctx, shard, op) {
            Ok(gen) => {
                self.gen_map.insert((shard.0, gen), id);
                // Tag the op with its parent txn so attribution can group
                // txn-issued gCAS/gWRITE traffic apart from bare ops. The
                // tag sorts after the transport's own issue event (same
                // timestamp; the trace sort is stable).
                self.tracer
                    .emit(ctx.now, NO_NODE, gen, TraceKind::TxnOp { txn: id });
                Some(gen)
            }
            Err(GroupError::WindowFull) => None,
            Err(e) => panic!("txn {id} issue on {shard} failed: {e}"),
        }
    }

    fn step<S: TxnTransports>(
        &mut self,
        ctx: &mut NicCtx<'_>,
        shards: &mut S,
        id: u64,
        finished: &mut Vec<(u64, TxnOutcome)>,
    ) {
        let Some(mut run) = self.active.remove(&id) else {
            return;
        };
        if run.parked {
            self.active.insert(id, run);
            return;
        }
        if !run.begun {
            run.begun = true;
            self.audit.probe(ctx.now, Probe::TxnBegin { txn: id });
            self.tracer.emit(
                ctx.now,
                NO_NODE,
                txn_op_id(id),
                TraceKind::TxnPhaseBegin {
                    txn: id,
                    mode: self.mode_code(),
                    phase: TXN_PHASE_ACQUIRE,
                },
            );
            if run.lock_sites.is_empty()
                && !self.enter_validate(ctx.now, &mut run, shards, finished)
            {
                return;
            }
        }
        let owner = Self::owner(id);
        // Collect what the phase is missing, then issue (two passes keep
        // the phase borrow and the issue borrow disjoint).
        let mut wanted: Vec<(ShardId, GroupOp)> = Vec::new();
        match &run.phase {
            RunPhase::Acquire { idx, gen } => {
                if gen.is_none() {
                    let site = run.lock_sites[*idx];
                    wanted.push((
                        site.shard,
                        GroupOp::Cas {
                            offset: self.layout.locks.word_offset(site.lock),
                            compare: 0,
                            swap: WRITER_BIT | owner,
                            execute: ExecuteMap::all(shards.txn_group_size(site.shard)),
                        },
                    ));
                }
            }
            RunPhase::Undo { idx, undo, gen } => {
                if gen.is_none() {
                    wanted.push((run.lock_sites[*idx].shard, undo.op(&self.layout.locks)));
                }
            }
            RunPhase::Rollback { legs, .. } | RunPhase::Release { legs, .. } => {
                for leg in legs.iter().filter(|l| !l.done && l.gen.is_none()) {
                    wanted.push((leg.site.shard, leg.undo.op(&self.layout.locks)));
                }
            }
            RunPhase::Validate { legs, .. } => {
                for leg in legs.iter().filter(|l| !l.done && l.gen.is_none()) {
                    wanted.push((
                        leg.site.shard,
                        GroupOp::Cas {
                            offset: self.layout.version_offset(leg.site.lock),
                            compare: leg.observed,
                            swap: leg.observed,
                            execute: ExecuteMap::none().with(0),
                        },
                    ));
                }
            }
            RunPhase::Apply { legs } => {
                for leg in legs.iter().filter(|l| !l.done && l.gen.is_none()) {
                    wanted.push((leg.shard, leg.op.clone()));
                }
            }
        }
        let mut issued: Vec<Option<u64>> = Vec::with_capacity(wanted.len());
        for (shard, op) in wanted {
            issued.push(self.issue_for(ctx, shards, id, shard, op));
        }
        // Write the generations back into the phase, in the same order the
        // first pass walked it.
        let mut it = issued.into_iter();
        match &mut run.phase {
            RunPhase::Acquire { gen, .. } | RunPhase::Undo { gen, .. } => {
                if gen.is_none() {
                    if let Some(g) = it.next() {
                        *gen = g;
                    }
                }
            }
            RunPhase::Rollback { legs, .. } | RunPhase::Release { legs, .. } => {
                for leg in legs.iter_mut().filter(|l| !l.done && l.gen.is_none()) {
                    match it.next() {
                        Some(g) => leg.gen = g,
                        None => break,
                    }
                }
            }
            RunPhase::Validate { legs, .. } => {
                for leg in legs.iter_mut().filter(|l| !l.done && l.gen.is_none()) {
                    match it.next() {
                        Some(g) => leg.gen = g,
                        None => break,
                    }
                }
            }
            RunPhase::Apply { legs } => {
                for leg in legs.iter_mut().filter(|l| !l.done && l.gen.is_none()) {
                    match it.next() {
                        Some(g) => leg.gen = g,
                        None => break,
                    }
                }
            }
        }
        self.active.insert(id, run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::{GroupClient, HyperLoopGroup};
    use crate::harness::{drive, fabric_sim, FabricSim};
    use crate::shard::AckJoin;
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    const CLIENT: NodeId = NodeId(0);

    /// Per-shard replica nodes and shared-region base.
    type ShardInfo = Vec<(Vec<NodeId>, u64)>;

    /// One client node plus `n_shards` disjoint 2-replica chains behind a
    /// [`ShardSet`]. Returns each shard's replica nodes and shared base.
    fn setup(n_shards: u32) -> (Simulation<FabricSim>, ShardSet<GroupClient>, ShardInfo) {
        let mut sim = fabric_sim(
            1 + 2 * n_shards,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            31,
        );
        let mut clients = Vec::new();
        let mut info = Vec::new();
        for s in 0..n_shards {
            let nodes = vec![NodeId(1 + 2 * s), NodeId(2 + 2 * s)];
            let group = drive(&mut sim, |ctx| {
                HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
            });
            sim.run();
            info.push((nodes, group.client.layout().shared_base));
            clients.push(group.client);
        }
        (sim, ShardSet::with_hash_router(clients), info)
    }

    fn layout() -> TxnLayout {
        TxnLayout::standard(1024, 16)
    }

    /// Pump until every submitted transaction finishes.
    fn drive_txns(
        sim: &mut Simulation<FabricSim>,
        shards: &mut ShardSet<GroupClient>,
        mgr: &mut TxnManager,
    ) -> Vec<(u64, TxnOutcome)> {
        let mut done = Vec::new();
        for _ in 0..400 {
            sim.run();
            let fin = drive(sim, |ctx| {
                let acks = shards.poll(ctx);
                mgr.pump(ctx, shards, &acks)
            });
            done.extend(fin);
            if mgr.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(mgr.in_flight(), 0, "transactions wedged");
        done
    }

    fn word_at(sim: &mut Simulation<FabricSim>, node: NodeId, addr: u64) -> u64 {
        u64::from_le_bytes(
            sim.model
                .fab
                .mem(node)
                .read_vec(addr, 8)
                .unwrap()
                .try_into()
                .unwrap(),
        )
    }

    #[test]
    fn layout_places_versions_after_locks() {
        let l = layout();
        assert_eq!(l.lock_count(), 16);
        assert_eq!(l.locks().word_offset(0), 1024);
        assert_eq!(l.version_offset(0), 1024 + 16 * 8);
        assert_eq!(l.version_offset(1) - l.version_offset(0), 8);
    }

    #[test]
    fn locking_commit_spans_shards() {
        let (mut sim, mut shards, info) = setup(2);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 7);
        mgr.set_audit(audit.clone());

        let s0 = TxnSite {
            shard: ShardId(0),
            lock: 2,
        };
        let s1 = TxnSite {
            shard: ShardId(1),
            lock: 2,
        };
        let mut t = mgr.begin();
        t.read(s0, mgr.version(s0));
        t.write(s0, 4096, Payload::copy_from(b"alpha"));
        t.write(s1, 4096, Payload::copy_from(b"bravo"));
        let id = mgr.commit(t);

        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Committed)]);
        assert_eq!(mgr.committed, 1);
        assert_eq!(mgr.aborted, 0);

        // Both shards' replicas carry their write.
        for (si, bytes) in [(0usize, b"alpha"), (1, b"bravo")] {
            let (nodes, base) = &info[si];
            for &n in nodes {
                assert_eq!(
                    sim.model.fab.mem(n).read_vec(base + 4096, 5).unwrap(),
                    bytes,
                    "shard {si} replica {n} missing txn write"
                );
            }
        }
        // Lock words free, versions bumped, on every replica.
        let l = layout();
        for (si, site) in [(0usize, s0), (1, s1)] {
            let (nodes, base) = &info[si];
            for &n in nodes {
                assert_eq!(
                    word_at(&mut sim, n, base + l.locks().word_offset(site.lock)),
                    0,
                    "lock leaked on shard {si} replica {n}"
                );
                assert_eq!(
                    word_at(&mut sim, n, base + l.version_offset(site.lock)),
                    1,
                    "version not bumped on shard {si} replica {n}"
                );
            }
            assert_eq!(mgr.version(site), 1);
        }
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn optimistic_conflict_aborts_then_retry_commits() {
        let (mut sim, mut shards, _) = setup(2);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Optimistic, 9);
        mgr.set_audit(audit.clone());
        let site = TxnSite {
            shard: ShardId(0),
            lock: 3,
        };

        // A and B both read version 0 of the same site (the classic
        // read-modify-write race).
        let mut a = mgr.begin();
        a.read(site, mgr.version(site));
        a.write(site, 8192, Payload::copy_from(b"AAAA"));
        let mut b = mgr.begin();
        b.read(site, mgr.version(site));
        b.write(site, 8192, Payload::copy_from(b"BBBB"));

        // A commits first and bumps the version.
        let ida = mgr.commit(a);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(ida, TxnOutcome::Committed)]);

        // B's conflict range moved: validation must abort it.
        let idb = mgr.commit(b);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(idb, TxnOutcome::Aborted)]);
        assert_eq!(mgr.aborted, 1);
        // Root cause: the read's conflict range moved.
        assert_eq!(mgr.abort_validation_failed, 1);
        assert_eq!(mgr.abort_lock_conflict, 0);
        assert_eq!(mgr.abort_backoff_exhausted, 0);
        // The failed validation corrected the cached version.
        assert_eq!(mgr.version(site), 1);

        // Retry with a fresh read: commits.
        let mut b2 = mgr.begin();
        b2.read(site, mgr.version(site));
        b2.write(site, 8192, Payload::copy_from(b"BBBB"));
        let idb2 = mgr.commit(b2);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(idb2, TxnOutcome::Committed)]);
        assert_eq!(mgr.committed, 2);
        assert_eq!(mgr.version(site), 2);
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn contended_locking_txns_serialize_via_backoff() {
        let (mut sim, mut shards, info) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 3);
        mgr.set_audit(audit.clone());
        mgr.set_max_lock_attempts(16);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 5,
        };

        let mut a = mgr.begin();
        a.write(site, 2048, Payload::copy_from(b"AAAA"));
        let mut b = mgr.begin();
        b.write(site, 2048, Payload::copy_from(b"BBBB"));
        let ida = mgr.commit(a);
        let idb = mgr.commit(b);

        let mut done = drive_txns(&mut sim, &mut shards, &mut mgr);
        done.sort();
        assert_eq!(
            done,
            vec![(ida, TxnOutcome::Committed), (idb, TxnOutcome::Committed)]
        );
        assert!(mgr.lock_retries >= 1, "loser must have retried");
        // The contention profiler saw the fight over the stripe.
        assert!(mgr.backoff_parks >= 1);
        assert!(mgr.backoff_delay_ns > 0);
        let c = *mgr.contention().get(&site).expect("contended site tracked");
        assert!(c.attempts >= 3, "winner + loser rounds: {c:?}");
        assert!(c.cas_failures >= 1 && c.conflicts >= 1, "{c:?}");
        assert!(c.wait_ns > 0 && c.backoff_retries >= 1, "{c:?}");
        assert!(c.queue_hwm >= 1, "{c:?}");
        assert_eq!(
            c.false_conflicts, 0,
            "untagged keys must never count as false conflicts"
        );
        let (nodes, base) = &info[0];
        let bytes = sim
            .model
            .fab
            .mem(nodes[0])
            .read_vec(base + 2048, 4)
            .unwrap();
        assert!(
            bytes == b"AAAA" || bytes == b"BBBB",
            "final value must be one full write: {bytes:?}"
        );
        assert_eq!(
            word_at(&mut sim, nodes[0], base + layout().locks().word_offset(5)),
            0
        );
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn foreign_holder_exhausts_attempts_and_aborts_clean() {
        let (mut sim, mut shards, info) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 5);
        mgr.set_audit(audit.clone());
        mgr.set_max_lock_attempts(2);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 7,
        };
        // A foreign owner holds the lock on every replica, forever.
        let (nodes, base) = info[0].clone();
        let addr = base + layout().locks().word_offset(site.lock);
        for &n in &nodes {
            sim.model
                .fab
                .mem(n)
                .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
                .unwrap();
        }

        let mut t = mgr.begin();
        t.write(site, 2048, Payload::copy_from(b"nope"));
        let id = mgr.commit(t);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Aborted)]);
        assert_eq!(mgr.aborted, 1);
        // A foreign holder is not a live transaction of this manager, so
        // the abort attributes to the drained retry budget.
        assert_eq!(mgr.abort_backoff_exhausted, 1);
        assert_eq!(mgr.abort_lock_conflict, 0);
        let total: u64 = mgr.abort_cause_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, mgr.aborted, "causes must sum to aborted");
        // No residue: the buffered write never reached the replicas.
        assert_eq!(
            sim.model
                .fab
                .mem(nodes[0])
                .read_vec(base + 2048, 4)
                .unwrap(),
            vec![0; 4]
        );
        // The foreign word is untouched.
        assert_eq!(word_at(&mut sim, nodes[0], addr), WRITER_BIT | 999);
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn partial_acquisition_is_undone_on_every_replica() {
        let (mut sim, mut shards, info) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 11);
        mgr.set_audit(audit.clone());
        mgr.set_max_lock_attempts(2);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 4,
        };
        // Poison replica 1 only: acquisitions go partial (replica 0 wins).
        let (nodes, base) = info[0].clone();
        let addr = base + layout().locks().word_offset(site.lock);
        sim.model
            .fab
            .mem(nodes[1])
            .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
            .unwrap();

        let mut t = mgr.begin();
        t.write(site, 2048, Payload::copy_from(b"nope"));
        let id = mgr.commit(t);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Aborted)]);
        assert!(mgr.lock_retries >= 1);
        // The winner replica's word returned to free after every undo.
        assert_eq!(
            word_at(&mut sim, nodes[0], addr),
            0,
            "partial winner must be released"
        );
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn read_only_txn_commits_without_writes() {
        let (mut sim, mut shards, _) = setup(1);
        let audit = Audit::standard();
        let mut mgr = TxnManager::new(layout(), CommitMode::Optimistic, 13);
        mgr.set_audit(audit.clone());
        let site = TxnSite {
            shard: ShardId(0),
            lock: 1,
        };
        let mut t = mgr.begin();
        t.read(site, mgr.version(site));
        let id = mgr.commit(t);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done, vec![(id, TxnOutcome::Committed)]);
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn traced_phases_pair_and_tile_commit_latency() {
        let (mut sim, mut shards, _) = setup(2);
        let audit = Audit::standard();
        let tracer = Tracer::enabled(1 << 14).with_audit(audit.clone());
        let mut mgr = TxnManager::new(layout(), CommitMode::Locking, 21);
        mgr.set_audit(audit.clone());
        mgr.set_tracer(tracer.clone());
        mgr.set_max_lock_attempts(16);
        let site = TxnSite {
            shard: ShardId(0),
            lock: 6,
        };
        let other = TxnSite {
            shard: ShardId(1),
            lock: 9,
        };

        // A contended pair (the loser walks the backoff phase) plus a
        // read-modify-write on the other shard.
        let mut a = mgr.begin();
        a.write(site, 2048, Payload::copy_from(b"AAAA"));
        let mut b = mgr.begin();
        b.write(site, 2048, Payload::copy_from(b"BBBB"));
        let mut c = mgr.begin();
        c.read(other, mgr.version(other));
        c.write(other, 4096, Payload::copy_from(b"CCCC"));
        mgr.commit(a);
        mgr.commit(b);
        mgr.commit(c);
        let done = drive_txns(&mut sim, &mut shards, &mut mgr);
        assert_eq!(done.len(), 3);
        assert!(done.iter().all(|(_, o)| *o == TxnOutcome::Committed));

        let events = tracer.events();
        let att = simcore::TxnAttribution::from_events(&events);
        assert_eq!(att.txns, 3);
        assert_eq!(att.truncated, 0, "all spans must pair Begin/End");
        assert!(att.linked_ops > 0, "txn ops must carry parent tags");
        // The tiling contract: per-phase means sum to the mean commit
        // latency, within float rounding of a nanosecond.
        let diff = (att.mean_e2e_ns() - att.phase_mean_sum_ns()).abs();
        assert!(diff <= 1.0, "phase means must tile e2e (off by {diff} ns)");
        for phase in ["acquire", "apply", "release", "backoff"] {
            assert!(att.phases.contains_key(phase), "missing phase {phase}");
        }
        // The phase-pairing auditor watched every emission.
        assert_eq!(audit.violation_count(), 0, "report:\n{}", audit.report());
    }

    #[test]
    fn issue_many_joins_across_shards_and_is_all_or_nothing() {
        let (mut sim, mut shards, _) = setup(2);
        let op = |v: u8| GroupOp::Write {
            offset: 16384,
            data: Payload::filled(v, 64),
            flush: true,
        };
        let mut join = drive(&mut sim, |ctx| {
            shards
                .issue_many(ctx, vec![(ShardId(0), op(1)), (ShardId(1), op(2))])
                .unwrap()
        });
        assert_eq!(join.pending(), 2);
        assert!(!join.is_done());
        sim.run();
        let acks = drive(&mut sim, |ctx| shards.poll(ctx));
        for a in &acks {
            join.absorb(a);
        }
        assert!(join.is_done());

        // All-or-nothing: 17 legs on one shard exceed its window (16), so
        // nothing at all is issued.
        let before = shards.issued();
        let err = drive(&mut sim, |ctx| {
            shards
                .issue_many(ctx, (0..17).map(|i| (ShardId(0), op(i as u8))))
                .unwrap_err()
        });
        assert_eq!(err, GroupError::WindowFull);
        assert_eq!(shards.issued(), before, "rejected batch must issue nothing");

        // Foreign acks are ignored by a join.
        let mut other = AckJoin::new();
        other.track(ShardId(0), 99999);
        assert!(!other.absorb(&ShardAck {
            shard: ShardId(1),
            ack: GroupAck {
                gen: 99999,
                result_map: vec![],
            },
        }));
        assert!(!other.is_done());
    }
}
