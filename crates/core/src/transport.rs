//! The transport abstraction the storage applications are written against.
//!
//! Both the HyperLoop data path ([`crate::GroupClient`]) and the
//! Naïve-RDMA baseline implement [`GroupTransport`], so RocksDB- and
//! MongoDB-style stores run unchanged over either — exactly the paper's
//! "modified with under 1000 lines" adoption story, and the basis of every
//! apples-to-apples comparison in the evaluation. The sharded layer
//! ([`crate::ShardSet`]) composes many transports behind a key router.

use crate::group::{GroupClient, GroupError};
use crate::ops::{GroupAck, GroupOp};
use netsim::NodeId;
use rnicsim::{CqId, NicCtx};

/// A chain-replicated group-operation transport.
pub trait GroupTransport {
    /// Number of replicas in the group.
    fn group_size(&self) -> u32;

    /// The client's node.
    fn node(&self) -> NodeId;

    /// The completion queue on which chain acks arrive (bind the client's
    /// process here for event-driven completion handling).
    fn ack_cq(&self) -> CqId;

    /// Bytes of the replicated shared region.
    fn shared_size(&self) -> u64;

    /// Operations issued but not yet acknowledged.
    fn in_flight(&self) -> u64;

    /// Maximum operations in flight.
    fn window(&self) -> u32;

    /// Issues one group operation, returning its generation.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] or [`GroupError::OutOfRange`].
    fn issue(&mut self, ctx: &mut NicCtx<'_>, op: GroupOp) -> Result<u64, GroupError>;

    /// Collects completed operations.
    fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<GroupAck> {
        let mut acks = Vec::new();
        self.poll_into(ctx, &mut acks);
        acks
    }

    /// Collects completed operations into a caller-provided buffer,
    /// returning how many were appended. Implementations reuse internal
    /// scratch so a steady-state poll loop performs no allocations;
    /// callers hand back the same `acks` vector every tick.
    fn poll_into(&mut self, ctx: &mut NicCtx<'_>, acks: &mut Vec<GroupAck>) -> usize;

    /// True if another op fits the window.
    fn can_issue(&self) -> bool {
        self.in_flight() < self.window() as u64
    }
}

impl GroupTransport for GroupClient {
    fn group_size(&self) -> u32 {
        self.layout().group_size
    }

    fn node(&self) -> NodeId {
        GroupClient::node(self)
    }

    fn ack_cq(&self) -> CqId {
        GroupClient::ack_cq(self)
    }

    fn shared_size(&self) -> u64 {
        self.layout().shared_size
    }

    fn in_flight(&self) -> u64 {
        GroupClient::in_flight(self)
    }

    fn window(&self) -> u32 {
        GroupClient::window(self)
    }

    fn issue(&mut self, ctx: &mut NicCtx<'_>, op: GroupOp) -> Result<u64, GroupError> {
        GroupClient::issue(self, ctx, op)
    }

    fn poll_into(&mut self, ctx: &mut NicCtx<'_>, acks: &mut Vec<GroupAck>) -> usize {
        GroupClient::poll_into(self, ctx, acks)
    }
}
