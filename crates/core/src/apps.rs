//! Testbed adapters: the replica-side maintenance process.
//!
//! The only software HyperLoop runs on a replica after setup is the
//! off-critical-path loop that re-posts consumed descriptors (RECV + WAIT +
//! indirect WQE chains). [`Maintainer`] packages that loop as a
//! [`HostApp`]: it wakes on the replica's upstream receive CQ, pays a small
//! CPU cost (visible in the experiments as the "close to 0%" replica CPU
//! the paper reports), and replenishes one generation per completed one.

use crate::group::ReplicaHandle;
use cpusched::ProcKind;
use simcore::SimDuration;
use testbed::{Cluster, Env, HostApp, HostEvent, ProcRef};

/// The replica maintenance process: replaces consumed descriptor chains.
pub struct Maintainer {
    handle: ReplicaHandle,
    /// Generations replenished so far (diagnostics).
    pub replenished: u64,
}

impl Maintainer {
    /// Wraps a replica handle.
    pub fn new(handle: ReplicaHandle) -> Self {
        Maintainer {
            handle,
            replenished: 0,
        }
    }
}

impl HostApp for Maintainer {
    fn on_event(&mut self, env: &mut Env<'_>, event: HostEvent) {
        if let HostEvent::CqReady(cq) = event {
            debug_assert_eq!(cq, self.handle.recv_cq());
            let node = self.handle.node();
            let consumed = env.poll_cq(node, cq, 4096).len() as u32;
            if consumed > 0 {
                self.replenished += consumed as u64;
                env.with_fabric(|ctx| {
                    self.handle.replenish(ctx, consumed);
                });
            }
        }
    }
}

/// Registers a [`Maintainer`] process for every replica and binds it to the
/// replica's upstream receive CQ. `per_op_cost` is the CPU charged per
/// wake-up (descriptor re-posting is a few hundred nanoseconds of driver
/// work).
pub fn install_group_maintenance(
    cluster: &mut Cluster,
    replicas: Vec<ReplicaHandle>,
    per_op_cost: SimDuration,
) -> Vec<ProcRef> {
    replicas
        .into_iter()
        .map(|handle| {
            let node = handle.node();
            let cq = handle.recv_cq();
            let proc = cluster.add_app(
                node,
                ProcKind::EventDriven,
                Box::new(Maintainer::new(handle)),
            );
            cluster.bind_cq(proc, node, cq, per_op_cost);
            proc
        })
        .collect()
}
