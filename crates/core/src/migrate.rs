//! Live shard migration: move one shard's replication chain without losing
//! acknowledged writes.
//!
//! A [`ShardSet`] spreads load over many chains, but the chains themselves
//! are fixed at setup. Rebalancing — draining a hot chain, retiring a
//! machine, growing the rack — needs to move a *running* shard from one
//! chain to another while the other shards keep serving. This module is
//! that move, as a deterministic, epoch-numbered state machine:
//!
//! 1. **Plan** ([`plan_migration`] / [`plan_placement_move`]): the move is
//!    expressed in the same [`RecoveryStep`] vocabulary chain repair uses —
//!    `PauseWrites` (this shard only), one `CopyState` per member of the
//!    new chain, `RebuildDataPath` at `epoch + 1`, `ResumeWrites`. A plan
//!    whose source and target chains are identical has *no* steps: a no-op
//!    migration is the identity and must not perturb the simulation.
//! 2. **Drive** ([`migrate_shard`]): executes the plan over real simulated
//!    time. The new chain is wired with a genuine
//!    [`HyperLoopGroup::setup`] (WQE chains post through the fabric), and
//!    the bulk copy travels the network as chunked RDMA Writes — so the
//!    copy *races* whatever the old chain still had in flight when the
//!    pause opened. After the pipe drains, a delta pass re-reads the
//!    source region and replays every range the bulk copy's NIC gathered
//!    too early: the WAL tail that raced the snapshot. Cutover swaps the
//!    transport inside the [`ShardSet`] (epoch bump; the new chain issues
//!    epoch-qualified generations, so op identity survives the move), then
//!    the shard resumes and its holding pen drains.
//!
//! While one shard is paused, ops for it park in the set's bounded holding
//! pen ([`ShardSet::defer_on`]); every other shard issues and completes
//! normally — the pause window is per-shard, never global.
//!
//! The driver is generic over [`MigrationHost`] so the same code runs on
//! the full [`testbed::Cluster`] (CPU scheduling, host apps) and on the
//! lightweight fabric-only [`harness::FabricSim`](crate::harness).

use crate::group::{GroupClient, HyperLoopGroup, ReplicaHandle};
use crate::membership::RecoveryStep;
use crate::shard::{MigrationStats, ShardAck, ShardId, ShardSet};
use netsim::NodeId;
use rnicsim::{wqe_flags, CqId, CqeStatus, NicCtx, Opcode, QpId, RdmaFabric, Wqe};
use simcore::simtrace::{TraceKind, Tracer, NO_OP};
use simcore::{Model, SimTime, Simulation};
use testbed::cluster::Cluster;

/// A simulation model the migration driver can operate: it exposes the
/// RDMA fabric and knows how to run host-side code against it (posting
/// whatever effects result into its own event queue).
pub trait MigrationHost: Model + Sized {
    /// The fabric the migration copies through.
    fn fab(&self) -> &RdmaFabric;
    /// The fabric, mutably (host-side reads, allocator alignment).
    fn fab_mut(&mut self) -> &mut RdmaFabric;
    /// Runs `f` against the fabric at the current instant and routes the
    /// effects it posted into the simulation's event queue.
    fn drive<R>(sim: &mut Simulation<Self>, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R;
}

impl MigrationHost for crate::harness::FabricSim {
    fn fab(&self) -> &RdmaFabric {
        &self.fab
    }
    fn fab_mut(&mut self) -> &mut RdmaFabric {
        &mut self.fab
    }
    fn drive<R>(sim: &mut Simulation<Self>, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R {
        crate::harness::drive(sim, f)
    }
}

impl MigrationHost for Cluster {
    fn fab(&self) -> &RdmaFabric {
        &self.fab
    }
    fn fab_mut(&mut self) -> &mut RdmaFabric {
        &mut self.fab
    }
    fn drive<R>(sim: &mut Simulation<Self>, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R {
        testbed::cluster::drive(sim, f)
    }
}

/// An epoch-numbered plan for moving one shard to a new chain.
///
/// Built by [`plan_migration`] (explicit chains) or
/// [`plan_placement_move`] (from two [`ShardPlacement`]s); executed by
/// [`migrate_shard`].
///
/// [`ShardPlacement`]: testbed::placement::ShardPlacement
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The shard being moved.
    pub shard: ShardId,
    /// The epoch the shard serves *after* cutover (current epoch + 1 for a
    /// real move; the unchanged current epoch for a no-op).
    pub epoch: u64,
    /// The chain currently serving the shard.
    pub from: Vec<NodeId>,
    /// The chain that will serve it.
    pub to: Vec<NodeId>,
    /// Bytes of state to copy (the shard's region image: WAL span + db).
    pub copy_bytes: u64,
    /// The move in [`RecoveryStep`] vocabulary. Empty iff `from == to`
    /// (no-op migration).
    pub steps: Vec<RecoveryStep>,
}

impl MigrationPlan {
    /// True when source and target chains are identical: executing the
    /// plan is the identity and touches nothing.
    pub fn is_noop(&self) -> bool {
        self.steps.is_empty()
    }

    /// The member of the old chain that seeds the copy (its head).
    pub fn source(&self) -> NodeId {
        self.from[0]
    }
}

/// Plans the move of `shard` from chain `from` to chain `to`.
///
/// `current_epoch` is the epoch the shard serves now
/// ([`ShardSet::epoch`]); the plan targets `current_epoch + 1`. The copy
/// is seeded from the head of the old chain (`from[0]`) into every member
/// of the new chain. When `from == to` the plan has no steps and
/// [`migrate_shard`] returns without touching the simulation.
///
/// # Panics
///
/// Panics if either chain is empty, or if `to` repeats a node.
pub fn plan_migration(
    shard: ShardId,
    current_epoch: u64,
    from: &[NodeId],
    to: &[NodeId],
    copy_bytes: u64,
) -> MigrationPlan {
    assert!(!from.is_empty(), "{shard} has no current chain");
    assert!(!to.is_empty(), "{shard} needs a non-empty target chain");
    for (i, &n) in to.iter().enumerate() {
        assert!(!to[..i].contains(&n), "target chain repeats node {n}");
    }
    if from == to {
        return MigrationPlan {
            shard,
            epoch: current_epoch,
            from: from.to_vec(),
            to: to.to_vec(),
            copy_bytes,
            steps: Vec::new(),
        };
    }
    let source = from[0];
    let mut steps = vec![RecoveryStep::PauseWrites];
    for &t in to {
        steps.push(RecoveryStep::CopyState {
            from: source,
            to: t,
            bytes: copy_bytes,
        });
    }
    steps.push(RecoveryStep::RebuildDataPath {
        epoch: current_epoch + 1,
    });
    steps.push(RecoveryStep::ResumeWrites);
    MigrationPlan {
        shard,
        epoch: current_epoch + 1,
        from: from.to_vec(),
        to: to.to_vec(),
        copy_bytes,
        steps,
    }
}

/// Plans the move of `shard` between two placements: the chain it holds
/// under `current` and the chain it holds under `target` (both resolved
/// against the same rack geometry).
///
/// # Panics
///
/// As [`plan_migration`], plus whatever
/// [`ShardPlacement::chains`](testbed::placement::ShardPlacement::chains)
/// rejects, plus an out-of-range `shard`.
#[allow(clippy::too_many_arguments)]
pub fn plan_placement_move(
    current: &testbed::placement::ShardPlacement,
    target: &testbed::placement::ShardPlacement,
    shard: ShardId,
    n_shards: u32,
    client: NodeId,
    node_count: u32,
    current_epoch: u64,
    copy_bytes: u64,
) -> MigrationPlan {
    assert!(shard.0 < n_shards, "{shard} out of range for {n_shards}");
    let from = &current.chains(n_shards, client, node_count)[shard.0 as usize];
    let to = &target.chains(n_shards, client, node_count)[shard.0 as usize];
    plan_migration(shard, current_epoch, from, to, copy_bytes)
}

/// What [`migrate_shard`] hands back after cutover.
#[derive(Debug)]
pub struct MigrationOutcome {
    /// Pause length, bytes moved, replayed tail ranges, new epoch — also
    /// recorded on the set for metrics export
    /// (`{prefix}.shardN.migration.*`).
    pub stats: MigrationStats,
    /// Maintenance handles for the new chain, in chain order. The old
    /// chain's handles are dead the moment this returns — stop
    /// replenishing them.
    pub replicas: Vec<ReplicaHandle>,
    /// Acks the driver collected while draining the migrating shard (the
    /// pause window's in-flight tail plus penned ops that completed during
    /// the post-resume catch-up). The caller accounts for these exactly as
    /// if its own poll had returned them.
    pub drained: Vec<ShardAck>,
    /// Generations issued (on the new epoch) for ops drained from the
    /// holding pen, in pen arrival order.
    pub resumed: Vec<u64>,
}

/// Chunk size of the bulk copy: one RDMA Write per chunk, so the copy
/// occupies real simulated time on the wire instead of teleporting in a
/// single gather.
const COPY_CHUNK: u64 = 256 << 10;

/// Merge slack of the delta pass: dirty byte ranges closer than this
/// coalesce into one replay Write.
const REPLAY_SLACK: usize = 64;

/// One wired copy path from the source to a member of the new chain.
#[derive(Debug)]
struct CopyPath {
    target: NodeId,
    scq: CqId,
    sqp: QpId,
}

/// An in-progress migration: the span between [`MigrationRun::begin`]
/// (pause opened, new chain wired, bulk copy in flight) and
/// [`MigrationRun::finish`] (drain, delta replay, cutover, resume).
///
/// Between the two calls the caller owns the simulation: it may run it,
/// issue on every *other* shard, and park ops for the paused shard in the
/// holding pen ([`ShardSet::defer_on`]) — that interleaving is what makes
/// the pause window a measurable, bounded thing rather than a global
/// stop-the-world. [`migrate_shard`] is the convenience that does both
/// back-to-back.
#[derive(Debug)]
pub struct MigrationRun {
    plan: MigrationPlan,
    client_node: NodeId,
    old_base: u64,
    new_base: u64,
    tracer: Tracer,
    group: HyperLoopGroup,
    paths: Vec<CopyPath>,
    chunks: u64,
    copy_bytes: u64,
    t0: SimTime,
}

impl MigrationRun {
    /// Opens the pause window and launches the move: emits
    /// `migrate_begin`, pauses the shard (others keep serving), wires the
    /// new chain with a real [`HyperLoopGroup::setup`], and posts the
    /// chunked bulk copy — which then races, through the fabric, whatever
    /// the old chain still had in flight.
    ///
    /// The plan lists the copy before the rebuild (paper order); the
    /// driver hoists the rebuild because the copy's destination addresses
    /// come from it.
    ///
    /// # Panics
    ///
    /// Panics on a no-op plan (nothing to begin — [`migrate_shard`]
    /// short-circuits it), a plan made against a different epoch,
    /// `copy_bytes` beyond the shard's shared region, or an
    /// already-paused shard.
    pub fn begin<M: MigrationHost>(
        sim: &mut Simulation<M>,
        set: &mut ShardSet<GroupClient>,
        plan: MigrationPlan,
    ) -> MigrationRun {
        let shard = plan.shard;
        assert!(!plan.is_noop(), "nothing to begin: {shard} is not moving");
        assert_eq!(
            plan.epoch,
            set.epoch(shard) + 1,
            "plan for {shard} was made against a different epoch"
        );
        let client_node = set.shard(shard).node();
        let mut cfg = set.shard(shard).config();
        assert!(
            plan.copy_bytes <= cfg.shared_size,
            "copy of {} bytes exceeds the {}-byte shard region",
            plan.copy_bytes,
            cfg.shared_size
        );
        let old_base = set.shard(shard).layout().shared_base;
        let tracer = set.shard(shard).tracer();
        let source = plan.source();

        // -- PauseWrites: this shard stops admitting; everyone else
        // serves. --
        let t0 = sim.now();
        tracer.emit(
            t0,
            client_node.0,
            NO_OP,
            TraceKind::MigrateBegin { shard: shard.0 },
        );
        set.pause(shard);

        // Wire one copy QP pair per remote target *before* aligning the
        // allocators — QP rings are bump-allocated, so creating them later
        // would break the symmetric layout the rebuild asserts.
        let paths = M::drive(sim, |ctx| {
            plan.to
                .iter()
                .filter(|&&t| t != source)
                .map(|&t| {
                    let scq = ctx.fab.create_cq(source);
                    let sqp = ctx.fab.create_qp(source, scq, scq);
                    let tcq = ctx.fab.create_cq(t);
                    let tqp = ctx.fab.create_qp(t, tcq, tcq);
                    ctx.fab.connect(source, sqp, t, tqp);
                    CopyPath {
                        target: t,
                        scq,
                        sqp,
                    }
                })
                .collect::<Vec<_>>()
        });

        // -- RebuildDataPath: symmetric setup over the new chain. --
        let cursor = plan
            .to
            .iter()
            .map(|&n| sim.model.fab().alloc_cursor(n))
            .max()
            .expect("non-empty target chain");
        for &n in &plan.to {
            sim.model.fab_mut().align_allocator(n, cursor);
        }
        // The new chain issues under the *new* epoch: keep the shard bits
        // of the old generation base and swap in `plan.epoch`, so op ids
        // (and therefore trace spans) survive the cutover instead of
        // colliding with the retired chain's generations.
        assert!(
            plan.epoch <= simcore::simaudit::EPOCH_GEN_MAX,
            "epoch {} exceeds the op-id epoch field",
            plan.epoch
        );
        cfg.first_gen = (cfg.first_gen >> simcore::simaudit::SHARD_GEN_SHIFT
            << simcore::simaudit::SHARD_GEN_SHIFT)
            | (plan.epoch << simcore::simaudit::EPOCH_GEN_SHIFT);
        let mut group = M::drive(sim, |ctx| {
            HyperLoopGroup::setup(ctx, client_node, &plan.to, cfg)
        });
        group.client.set_tracer(tracer.clone());
        let new_base = group.client.layout().shared_base;

        // -- CopyState, posted in the same instant the pause opened: the
        // chunked Writes race the old chain's in-flight tail through the
        // fabric, exactly the hazard finish()'s delta pass repairs. --
        let mut copy_bytes = 0u64;
        let chunks = plan.copy_bytes.div_ceil(COPY_CHUNK);
        M::drive(sim, |ctx| {
            for p in &paths {
                let mut off = 0;
                while off < plan.copy_bytes {
                    let len = COPY_CHUNK.min(plan.copy_bytes - off);
                    ctx.fab.post_send(
                        ctx.now,
                        source,
                        p.sqp,
                        Wqe {
                            opcode: Opcode::Write,
                            flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                            local_addr: old_base + off,
                            len,
                            remote_addr: new_base + off,
                            wr_id: NO_OP,
                            ..Wqe::default()
                        },
                        ctx.out,
                    );
                    off += len;
                }
                copy_bytes += plan.copy_bytes;
            }
        });

        MigrationRun {
            plan,
            client_node,
            old_base,
            new_base,
            tracer,
            group,
            paths,
            chunks,
            copy_bytes,
            t0,
        }
    }

    /// The plan this run is executing.
    pub fn plan(&self) -> &MigrationPlan {
        &self.plan
    }

    /// When the pause window opened.
    pub fn paused_at(&self) -> SimTime {
        self.t0
    }

    /// Completes the move: drains the old chain's in-flight tail, verifies
    /// the bulk copy, replays the delta (the WAL tail that raced the
    /// snapshot), flushes the image durable, cuts over
    /// ([`ShardSet::replace_shard`], epoch bump, `migrate_cutover`),
    /// resumes the shard and drains its holding pen (`migrate_end`).
    ///
    /// # Panics
    ///
    /// Panics if the fabric reports a failed or lost copy completion — a
    /// migration that cannot complete must be loud, not lossy.
    pub fn finish<M: MigrationHost>(
        self,
        sim: &mut Simulation<M>,
        set: &mut ShardSet<GroupClient>,
    ) -> MigrationOutcome {
        let MigrationRun {
            plan,
            client_node,
            old_base,
            new_base,
            tracer,
            group,
            paths,
            chunks,
            mut copy_bytes,
            t0,
        } = self;
        let shard = plan.shard;
        let source = plan.source();

        // -- Drain the pause window: in-flight ops on the old chain
        // complete (and are collected for the caller) while the copy
        // flies. --
        let mut drained = Vec::new();
        loop {
            sim.run();
            drained.extend(M::drive(sim, |ctx| set.poll_shard(ctx, shard)));
            if set.shard(shard).in_flight() == 0 {
                break;
            }
        }
        for p in &paths {
            let cqes = sim
                .model
                .fab_mut()
                .poll_cq(source, p.scq, chunks as usize + 1);
            assert_eq!(
                cqes.len(),
                chunks as usize,
                "bulk copy to {} lost completions",
                p.target
            );
            for c in &cqes {
                assert_eq!(
                    c.status,
                    CqeStatus::Success,
                    "bulk copy chunk to {} failed",
                    p.target
                );
            }
        }

        // A target that is also the source seeds itself host-locally
        // (there is no fabric hop to itself); this runs after the drain,
        // so it is exact and never needs replay.
        if plan.to.contains(&source) {
            let image = sim
                .model
                .fab_mut()
                .mem(source)
                .read_vec(old_base, plan.copy_bytes)
                .expect("source region in bounds");
            sim.model
                .fab_mut()
                .mem(source)
                .write_durable(new_base, &image)
                .expect("seed copy in bounds");
            copy_bytes += plan.copy_bytes;
        }

        // -- Delta pass: the source region is now stable (shard paused,
        // pipe drained). Every byte where a target's copy diverges was
        // gathered by the bulk copy's NIC before a racing write landed —
        // replay exactly those ranges. This is the WAL tail that raced
        // the snapshot. --
        let truth = sim
            .model
            .fab_mut()
            .mem(source)
            .read_vec(old_base, plan.copy_bytes)
            .expect("source region in bounds");
        let mut replayed = 0u64;
        for p in &paths {
            let got = sim
                .model
                .fab_mut()
                .mem(p.target)
                .read_vec(new_base, plan.copy_bytes)
                .expect("target region in bounds");
            let ranges = dirty_ranges(&truth, &got, REPLAY_SLACK);
            if ranges.is_empty() {
                continue;
            }
            M::drive(sim, |ctx| {
                for &(off, len) in &ranges {
                    ctx.fab.post_send(
                        ctx.now,
                        source,
                        p.sqp,
                        Wqe {
                            opcode: Opcode::Write,
                            flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                            local_addr: old_base + off,
                            len,
                            remote_addr: new_base + off,
                            wr_id: NO_OP,
                            ..Wqe::default()
                        },
                        ctx.out,
                    );
                }
            });
            sim.run();
            let cqes = sim.model.fab_mut().poll_cq(source, p.scq, ranges.len() + 1);
            assert_eq!(cqes.len(), ranges.len(), "replay to {} stalled", p.target);
            for c in &cqes {
                assert_eq!(
                    c.status,
                    CqeStatus::Success,
                    "replay chunk to {} failed",
                    p.target
                );
            }
            replayed += ranges.len() as u64;
            copy_bytes += ranges.iter().map(|&(_, l)| l).sum::<u64>();
        }

        // Fold the migrated image to durable NVM on every new member.
        for &n in &plan.to {
            sim.model
                .fab_mut()
                .mem(n)
                .flush_range(new_base, plan.copy_bytes)
                .expect("migrated region in bounds");
        }

        // -- Cutover: swap the transport, bump the epoch. --
        let old = set.replace_shard(shard, group.client);
        let epoch = set.epoch(shard);
        assert_eq!(epoch, plan.epoch, "cutover landed on an unplanned epoch");
        drop(old);
        let t1 = sim.now();
        tracer.emit(
            t1,
            client_node.0,
            NO_OP,
            TraceKind::MigrateCutover {
                shard: shard.0,
                epoch,
            },
        );

        // -- ResumeWrites: close the window, drain the holding pen. --
        let mut resumed = M::drive(sim, |ctx| set.resume(ctx, shard));
        while set.pen_len(shard) > 0 {
            sim.run();
            drained.extend(M::drive(sim, |ctx| set.poll_shard(ctx, shard)));
            let gens = M::drive(sim, |ctx| set.drain_pen(ctx, shard));
            assert!(
                !gens.is_empty() || set.pen_len(shard) == 0,
                "holding pen drain stalled on {shard}"
            );
            resumed.extend(gens);
        }

        let stats = MigrationStats {
            epoch,
            pause: t1.since(t0),
            copy_bytes,
            replayed,
        };
        tracer.emit(
            sim.now(),
            client_node.0,
            NO_OP,
            TraceKind::MigrateEnd {
                shard: shard.0,
                replayed,
            },
        );
        set.record_migration(shard, stats);
        MigrationOutcome {
            stats,
            replicas: group.replicas,
            drained,
            resumed,
        }
    }
}

/// Executes `plan` against a running set in one call: pause → rebuild →
/// raced bulk copy → drain → delta replay → cutover → resume
/// ([`MigrationRun::begin`] immediately followed by
/// [`MigrationRun::finish`]; split the phases yourself to interleave
/// traffic on the other shards while the window is open).
///
/// The driver emits `migrate_begin` / `migrate_cutover` / `migrate_end`
/// trace events through the shard client's tracer and records
/// [`MigrationStats`] on the set. The sequence is fully deterministic:
/// same seed, same history, same plan → byte-identical timeline.
///
/// A no-op plan ([`MigrationPlan::is_noop`]) returns immediately without
/// touching the simulation, the fabric, or the set — a run containing a
/// no-op migration is timestamp-identical to one without it.
///
/// # Panics
///
/// As [`MigrationRun::begin`] and [`MigrationRun::finish`].
pub fn migrate_shard<M: MigrationHost>(
    sim: &mut Simulation<M>,
    set: &mut ShardSet<GroupClient>,
    plan: &MigrationPlan,
) -> MigrationOutcome {
    if plan.is_noop() {
        assert_eq!(
            plan.epoch,
            set.epoch(plan.shard),
            "stale no-op plan for {}",
            plan.shard
        );
        return MigrationOutcome {
            stats: MigrationStats {
                epoch: set.epoch(plan.shard),
                pause: simcore::SimDuration::ZERO,
                copy_bytes: 0,
                replayed: 0,
            },
            replicas: Vec::new(),
            drained: Vec::new(),
            resumed: Vec::new(),
        };
    }
    MigrationRun::begin(sim, set, plan.clone()).finish(sim, set)
}

/// Byte ranges `(offset, len)` where `got` diverges from `want`, merging
/// ranges separated by fewer than `slack` clean bytes so the replay posts
/// a bounded number of Writes.
fn dirty_ranges(want: &[u8], got: &[u8], slack: usize) -> Vec<(u64, u64)> {
    assert_eq!(want.len(), got.len());
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    let mut i = 0;
    while i < want.len() {
        if want[i] == got[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i + 1;
        let mut clean = 0;
        let mut j = end;
        while j < want.len() && clean < slack {
            if want[j] == got[j] {
                clean += 1;
            } else {
                end = j + 1;
                clean = 0;
            }
            j += 1;
        }
        ranges.push((start as u64, (end - start) as u64));
        i = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_reuses_recovery_vocabulary_in_paper_order() {
        let from = vec![NodeId(1), NodeId(2)];
        let to = vec![NodeId(3), NodeId(4)];
        let p = plan_migration(ShardId(0), 0, &from, &to, 4096);
        assert_eq!(p.epoch, 1);
        assert!(!p.is_noop());
        assert_eq!(p.steps[0], RecoveryStep::PauseWrites);
        assert_eq!(
            p.steps[1],
            RecoveryStep::CopyState {
                from: NodeId(1),
                to: NodeId(3),
                bytes: 4096
            }
        );
        assert_eq!(
            p.steps[2],
            RecoveryStep::CopyState {
                from: NodeId(1),
                to: NodeId(4),
                bytes: 4096
            }
        );
        assert_eq!(p.steps[3], RecoveryStep::RebuildDataPath { epoch: 1 });
        assert_eq!(p.steps[4], RecoveryStep::ResumeWrites);
    }

    #[test]
    fn identical_chains_plan_to_nothing() {
        let chain = vec![NodeId(1), NodeId(2), NodeId(3)];
        let p = plan_migration(ShardId(2), 7, &chain, &chain, 1 << 20);
        assert!(p.is_noop());
        assert_eq!(p.epoch, 7, "a no-op move keeps the current epoch");
    }

    #[test]
    fn overlapping_chains_copy_to_every_target() {
        // Node 2 survives the move; it still gets a CopyState (its new
        // region is fresh even though the node is not).
        let p = plan_migration(
            ShardId(1),
            3,
            &[NodeId(1), NodeId(2)],
            &[NodeId(2), NodeId(5)],
            512,
        );
        let copies: Vec<_> = p
            .steps
            .iter()
            .filter(|s| matches!(s, RecoveryStep::CopyState { .. }))
            .collect();
        assert_eq!(copies.len(), 2);
        assert_eq!(p.epoch, 4);
    }

    #[test]
    #[should_panic(expected = "repeats node")]
    fn duplicate_target_nodes_are_rejected() {
        plan_migration(ShardId(0), 0, &[NodeId(1)], &[NodeId(2), NodeId(2)], 64);
    }

    #[test]
    fn placement_move_resolves_both_layouts() {
        use testbed::placement::ShardPlacement;
        let cur = ShardPlacement::Explicit(vec![vec![NodeId(1), NodeId(2)], vec![NodeId(3)]]);
        let tgt = ShardPlacement::Explicit(vec![vec![NodeId(1), NodeId(2)], vec![NodeId(4)]]);
        let p = plan_placement_move(&cur, &tgt, ShardId(1), 2, NodeId(0), 6, 0, 256);
        assert_eq!(p.from, vec![NodeId(3)]);
        assert_eq!(p.to, vec![NodeId(4)]);
        assert_eq!(p.epoch, 1);
        // Shard 0's chain is unchanged under the new placement.
        let p0 = plan_placement_move(&cur, &tgt, ShardId(0), 2, NodeId(0), 6, 0, 256);
        assert!(p0.is_noop());
    }

    #[test]
    fn dirty_ranges_merge_nearby_damage() {
        let want = vec![7u8; 1024];
        let mut got = want.clone();
        got[10] = 0;
        got[20] = 0; // within slack of the first — one range
        got[900] = 0; // far away — its own range
        let r = dirty_ranges(&want, &got, 64);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], (10, 11));
        assert_eq!(r[1], (900, 1));
        assert!(dirty_ranges(&want, &want, 64).is_empty());
    }
}
